package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chromeTrace is the slice of a Chrome trace-event document these
// tests assert on.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	} `json:"traceEvents"`
}

func readTrace(t *testing.T, path string) chromeTrace {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc
}

// TestKernelTraceWritesChromeJSON: a -trace -kernel run emits a valid
// Chrome trace-event document with round, phase, and pass spans.
func TestKernelTraceWritesChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, stdout, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "16", "-trace", path)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+path) {
		t.Errorf("stdout lacks trace confirmation: %q", stdout)
	}
	doc := readTrace(t, path)
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			counts[ev.Cat]++
		}
	}
	for _, cat := range []string{"round", "phase", "pass"} {
		if counts[cat] == 0 {
			t.Errorf("no %q spans in trace: %v", cat, counts)
		}
	}
}

// TestClusterTraceMergesRanks: a 2-rank loopback run merges both
// ranks' spans into one file with distinct process lanes.
func TestClusterTraceMergesRanks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "16",
		"-transport", "socket-unix", "-ranks", "2", "-trace", path)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}
	doc := readTrace(t, path)
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
		}
	}
	if !pids[0] || !pids[1] || len(pids) != 2 {
		t.Errorf("span pids = %v, want exactly {0, 1}", pids)
	}
}

// TestTraceRequiresKernel: -trace outside a -kernel run is a flag
// error like its checkpoint siblings.
func TestTraceRequiresKernel(t *testing.T) {
	code, _, stderr := runCC(t, "-trace", "out.json")
	if code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "-trace require") {
		t.Errorf("missing diagnostic: %q", stderr)
	}
}

// TestProfilesWritten: -cpuprofile and -memprofile produce non-empty
// pprof files for any invocation (here a tiny kernel run).
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.pprof"), filepath.Join(dir, "mem.pprof")
	code, _, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "16",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile missing: %v", err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestBadProfilePathExitsNonZero: an uncreatable -cpuprofile path is a
// startup error, not a silent no-op.
func TestBadProfilePathExitsNonZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-kernel", "bfs", "-kernel-n", "8",
		"-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-cpuprofile") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}
