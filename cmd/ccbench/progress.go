package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// progressMeter is the -progress live view of a -kernel run: a
// clique.WithRoundHook tap that repaints one status line in place
// (carriage return, no scrollback spam) with the cumulative round
// count, routed words, and the rounds/sec rate since the run started.
// The engine invokes round hooks synchronously, so the repaint is
// throttled to at most one write per refresh interval; finish prints
// the final totals and a newline so the stats table that follows
// starts on a clean line.
type progressMeter struct {
	w     io.Writer
	start time.Time
	every time.Duration

	mu     sync.Mutex
	label  string
	rounds int
	words  uint64
	last   time.Time
}

// setLabel prefixes subsequent repaints with a stage label — the
// hopset workload names its current configuration and stage here
// ("hopset n=256 approx-sssp") so the 13-minute bench shows where it
// is, not just that it is moving.
func (p *progressMeter) setLabel(label string) {
	p.mu.Lock()
	p.label = label
	p.mu.Unlock()
}

// newProgressMeter returns a meter repainting to w at most every
// refresh interval (<= 0 selects 100ms).
func newProgressMeter(w io.Writer, refresh time.Duration) *progressMeter {
	if refresh <= 0 {
		refresh = 100 * time.Millisecond
	}
	now := time.Now()
	return &progressMeter{w: w, start: now, every: refresh, last: now}
}

// hook is the engine round tap; install with clique.WithRoundHook.
func (p *progressMeter) hook(rs engine.RoundStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rounds++
	p.words += rs.Msgs // one budgeted word per routed message
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return
	}
	p.last = now
	p.paint(now, "")
}

// finish repaints the final totals and terminates the line.
func (p *progressMeter) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.paint(time.Now(), "\n")
}

// paint writes one status line; callers hold p.mu.
func (p *progressMeter) paint(now time.Time, end string) {
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.rounds) / elapsed
	}
	prefix := ""
	if p.label != "" {
		prefix = p.label + "  "
	}
	fmt.Fprintf(p.w, "\r\x1b[K%sround %-8d %12d words  %10.0f rounds/s%s",
		prefix, p.rounds, p.words, rate, end)
}

// isTerminal reports whether w is a character device — the -progress
// auto-disable check, so redirected or piped stderr never receives
// control characters.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	info, err := f.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
