package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// TestProgressMeterPaints feeds rounds through the hook and checks the
// repainted line carries cumulative rounds, words, and a rate, using
// in-place repaint control characters.
func TestProgressMeterPaints(t *testing.T) {
	var buf bytes.Buffer
	m := newProgressMeter(&buf, time.Nanosecond) // repaint on every round
	for i := 0; i < 5; i++ {
		m.hook(engine.RoundStats{Msgs: 10, Bytes: 80})
	}
	m.finish()
	out := buf.String()
	if !strings.Contains(out, "round 5") {
		t.Errorf("output lacks final round count: %q", out)
	}
	if !strings.Contains(out, "50 words") {
		t.Errorf("output lacks cumulative words: %q", out)
	}
	if !strings.Contains(out, "rounds/s") {
		t.Errorf("output lacks a rate: %q", out)
	}
	if !strings.Contains(out, "\r") {
		t.Errorf("output never repaints in place: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("finish did not terminate the line: %q", out)
	}
}

// TestProgressMeterThrottles checks a long refresh interval suppresses
// intermediate repaints: only finish writes.
func TestProgressMeterThrottles(t *testing.T) {
	var buf bytes.Buffer
	m := newProgressMeter(&buf, time.Hour)
	for i := 0; i < 100; i++ {
		m.hook(engine.RoundStats{Msgs: 1})
	}
	m.finish()
	if got := strings.Count(buf.String(), "\r"); got != 1 {
		t.Errorf("repaints = %d, want 1 (finish only)", got)
	}
}

// TestProgressAutoDisablesOffTTY runs a real -kernel invocation with
// -progress into a buffer stderr (not a terminal): the run must
// succeed, print the auto-disable note, and keep stderr free of
// control characters.
func TestProgressAutoDisablesOffTTY(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-kernel", "bfs", "-kernel-n", "8", "-progress"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-progress disabled") {
		t.Errorf("missing auto-disable note on non-TTY stderr: %q", stderr.String())
	}
	if strings.ContainsAny(stderr.String(), "\r\x1b") {
		t.Errorf("control characters leaked to non-TTY stderr: %q", stderr.String())
	}
}

// TestProgressRequiresWorkload checks the flag is rejected when
// neither -kernel nor a -hopset-sizes workload would consume it.
func TestProgressRequiresWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-progress", "-sizes", "", "-matmul-sizes", "", "-hopset-sizes", ""}
	if code := run(args, &stdout, &stderr); code != 2 {
		t.Fatalf("run exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-progress requires") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}

// TestProgressHopsetAutoDisablesOffTTY: -progress is accepted for the
// hopset workload (the long bench) and auto-disables off a terminal.
func TestProgressHopsetAutoDisablesOffTTY(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{"-progress", "-sizes", "", "-matmul-sizes", "",
		"-hopset-sizes", "16", "-hopset-o", dir + "/h.json"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-progress disabled") {
		t.Errorf("missing auto-disable note on non-TTY stderr: %q", stderr.String())
	}
	if strings.ContainsAny(stderr.String(), "\r\x1b") {
		t.Errorf("control characters leaked to non-TTY stderr: %q", stderr.String())
	}
}

// TestProgressMeterLabel: a stage label set via setLabel prefixes the
// repainted line — the hopset workload names its current stage there.
func TestProgressMeterLabel(t *testing.T) {
	var buf bytes.Buffer
	m := newProgressMeter(&buf, time.Nanosecond)
	m.setLabel("hopset n=64 approx-sssp")
	m.hook(engine.RoundStats{Msgs: 3})
	m.finish()
	if !strings.Contains(buf.String(), "hopset n=64 approx-sssp  round") {
		t.Errorf("label missing from repaint: %q", buf.String())
	}
}
