package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/paper-repo-growth/doryp20/internal/trace"
)

// startCPUProfile begins a -cpuprofile capture and returns the stop
// function that finishes the profile and closes the file.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ccbench: -cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("ccbench: -cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile snapshots the heap to the -memprofile path, after a
// GC so the profile reflects live retention rather than garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ccbench: -memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("ccbench: -memprofile: %w", err)
	}
	return nil
}

// writeTraceFile exports the recorders' spans as one merged Chrome
// trace-event JSON file (multiple recorders = one lane per rank).
func writeTraceFile(path string, recs ...*trace.Recorder) error {
	if err := trace.WriteChromeFile(path, recs...); err != nil {
		return fmt.Errorf("ccbench: -trace: %w", err)
	}
	return nil
}
