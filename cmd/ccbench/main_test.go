package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCC(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUnknownFlagExitsNonZero is the regression test for the silent-
// defaults bug: an unknown flag must exit 2 with a usage message, not
// run the benchmark.
func TestUnknownFlagExitsNonZero(t *testing.T) {
	code, _, stderr := runCC(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag provided") {
		t.Fatalf("stderr lacks usage/diagnostic:\n%s", stderr)
	}
}

// TestHelpExitsZero: -h is a successful help request, not an error.
func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCC(t, "-h")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

// TestStrayArgumentsExitNonZero: positional arguments were previously
// ignored; they must now be rejected.
func TestStrayArgumentsExitNonZero(t *testing.T) {
	code, _, stderr := runCC(t, "bogus-positional")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected arguments: bogus-positional") {
		t.Fatalf("stderr lacks the stray-argument diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

func TestBadSizeExitsNonZero(t *testing.T) {
	for _, args := range [][]string{
		{"-sizes", "64,potato"},
		{"-sizes", "1"},
		{"-matmul-sizes", "0"},
		{"-matmul-p", "1.5"},
		{"-matmul-p", "NaN"},
	} {
		code, _, stderr := runCC(t, args...)
		if code != 2 {
			t.Fatalf("args %v: exit code = %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}

// TestShortRunWritesBothReports runs the full smoke path end to end and
// checks both artifacts land where pointed.
func TestShortRunWritesBothReports(t *testing.T) {
	dir := t.TempDir()
	engPath := filepath.Join(dir, "eng.json")
	mmPath := filepath.Join(dir, "mm.json")
	code, stdout, stderr := runCC(t,
		"-short", "-sizes", "16,32", "-o", engPath, "-matmul-o", mmPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	for _, p := range []string{engPath, mmPath} {
		if !strings.Contains(stdout, "wrote "+p) {
			t.Errorf("stdout does not report writing %s:\n%s", p, stdout)
		}
	}
}

// TestShortRespectsExplicitFlags: -short shrinks only the knobs the
// user left at their defaults; an explicit -matmul-sizes wins.
func TestShortRespectsExplicitFlags(t *testing.T) {
	dir := t.TempDir()
	mmPath := filepath.Join(dir, "mm.json")
	code, _, stderr := runCC(t,
		"-short", "-sizes", "16", "-matmul-sizes", "24",
		"-o", filepath.Join(dir, "eng.json"), "-matmul-o", mmPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(mmPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			N int `json:"n"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].N != 24 {
		t.Fatalf("explicit -matmul-sizes 24 ignored under -short: %+v", rep.Results)
	}
}

// TestEmptySizesSkipsWorkload: an empty size list means "skip that
// workload" — here the flood runs alone and no matmul report is
// written (so a tracked baseline cannot be clobbered by accident).
func TestEmptySizesSkipsWorkload(t *testing.T) {
	dir := t.TempDir()
	engPath := filepath.Join(dir, "eng.json")
	mmPath := filepath.Join(dir, "mm.json")
	code, stdout, stderr := runCC(t,
		"-short", "-sizes", "16", "-matmul-sizes", "", "-o", engPath, "-matmul-o", mmPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+engPath) {
		t.Fatalf("flood report not written:\n%s", stdout)
	}
	if _, err := os.Stat(mmPath); !os.IsNotExist(err) {
		t.Fatalf("matmul report written despite empty -matmul-sizes (err=%v)", err)
	}
}

func TestUnwritableOutputExitsOne(t *testing.T) {
	code, _, stderr := runCC(t, "-short", "-sizes", "16",
		"-o", filepath.Join(t.TempDir(), "no", "such", "dir.json"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
}
