package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func runCC(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUnknownFlagExitsNonZero is the regression test for the silent-
// defaults bug: an unknown flag must exit 2 with a usage message, not
// run the benchmark.
func TestUnknownFlagExitsNonZero(t *testing.T) {
	code, _, stderr := runCC(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag provided") {
		t.Fatalf("stderr lacks usage/diagnostic:\n%s", stderr)
	}
}

// TestHelpExitsZero: -h is a successful help request, not an error.
func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCC(t, "-h")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

// TestStrayArgumentsExitNonZero: positional arguments were previously
// ignored; they must now be rejected.
func TestStrayArgumentsExitNonZero(t *testing.T) {
	code, _, stderr := runCC(t, "bogus-positional")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected arguments: bogus-positional") {
		t.Fatalf("stderr lacks the stray-argument diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Fatalf("stderr lacks usage:\n%s", stderr)
	}
}

func TestBadSizeExitsNonZero(t *testing.T) {
	for _, args := range [][]string{
		{"-sizes", "64,potato"},
		{"-sizes", "1"},
		{"-matmul-sizes", "0"},
		{"-matmul-p", "1.5"},
		{"-matmul-p", "NaN"},
		{"-hopset-sizes", "1"},
		{"-hopset-p", "0"},
		{"-hopset-p", "NaN"},
		{"-kernels-sizes", "1"},
		{"-kernels-sizes", "64,potato"},
	} {
		code, _, stderr := runCC(t, args...)
		if code != 2 {
			t.Fatalf("args %v: exit code = %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}

// TestShortRunWritesAllReports runs the full smoke path end to end and
// checks all three artifacts land where pointed.
func TestShortRunWritesAllReports(t *testing.T) {
	dir := t.TempDir()
	engPath := filepath.Join(dir, "eng.json")
	mmPath := filepath.Join(dir, "mm.json")
	hsPath := filepath.Join(dir, "hs.json")
	code, stdout, stderr := runCC(t,
		"-short", "-sizes", "16,32", "-o", engPath, "-matmul-o", mmPath, "-hopset-o", hsPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	for _, p := range []string{engPath, mmPath, hsPath} {
		if !strings.Contains(stdout, "wrote "+p) {
			t.Errorf("stdout does not report writing %s:\n%s", p, stdout)
		}
	}
}

// TestHopsetReportBeatsExactRounds: the hopset workload's core claim —
// approximate SSSP spends strictly fewer engine rounds than exact
// APSP — must hold in the emitted report for every measured size.
func TestHopsetReportBeatsExactRounds(t *testing.T) {
	dir := t.TempDir()
	hsPath := filepath.Join(dir, "hs.json")
	code, _, stderr := runCC(t,
		"-sizes", "", "-matmul-sizes", "", "-hopset-sizes", "48,96", "-hopset-o", hsPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(hsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			N            int `json:"n"`
			ExactRounds  int `json:"exact_rounds"`
			ApproxRounds int `json:"approx_rounds"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %+v, want 2 entries", rep.Results)
	}
	for _, r := range rep.Results {
		if r.ApproxRounds >= r.ExactRounds {
			t.Errorf("n=%d: approx %d rounds >= exact %d — hopset must win",
				r.N, r.ApproxRounds, r.ExactRounds)
		}
	}
}

// TestShortRespectsExplicitFlags: -short shrinks only the knobs the
// user left at their defaults; an explicit -matmul-sizes wins.
func TestShortRespectsExplicitFlags(t *testing.T) {
	dir := t.TempDir()
	mmPath := filepath.Join(dir, "mm.json")
	code, _, stderr := runCC(t,
		"-short", "-sizes", "16", "-matmul-sizes", "24", "-hopset-sizes", "",
		"-o", filepath.Join(dir, "eng.json"), "-matmul-o", mmPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(mmPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Results []struct {
			N int `json:"n"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].N != 24 {
		t.Fatalf("explicit -matmul-sizes 24 ignored under -short: %+v", rep.Results)
	}
}

// TestEmptySizesSkipsWorkload: an empty size list means "skip that
// workload" — here the flood runs alone and no matmul report is
// written (so a tracked baseline cannot be clobbered by accident).
func TestEmptySizesSkipsWorkload(t *testing.T) {
	dir := t.TempDir()
	engPath := filepath.Join(dir, "eng.json")
	mmPath := filepath.Join(dir, "mm.json")
	hsPath := filepath.Join(dir, "hs.json")
	code, stdout, stderr := runCC(t,
		"-short", "-sizes", "16", "-matmul-sizes", "", "-hopset-sizes", "",
		"-o", engPath, "-matmul-o", mmPath, "-hopset-o", hsPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+engPath) {
		t.Fatalf("flood report not written:\n%s", stdout)
	}
	if _, err := os.Stat(mmPath); !os.IsNotExist(err) {
		t.Fatalf("matmul report written despite empty -matmul-sizes (err=%v)", err)
	}
	if _, err := os.Stat(hsPath); !os.IsNotExist(err) {
		t.Fatalf("hopset report written despite empty -hopset-sizes (err=%v)", err)
	}
}

// TestListPrintsRegisteredKernels: -list must print every registered
// kernel (one per line, sorted) and exit 0 without running benchmarks.
func TestListPrintsRegisteredKernels(t *testing.T) {
	code, stdout, stderr := runCC(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	for _, want := range []string{"bfs", "bellman-ford", "apsp", "hop-limited", "ksource", "matmul-square",
		"widest", "widest-ksource", "closure", "mst", "diameter-est", "diameter-est-approx"} {
		if !strings.Contains(stdout, want+"\n") {
			t.Errorf("-list output lacks %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "wrote") {
		t.Errorf("-list ran a benchmark workload:\n%s", stdout)
	}
}

// TestKernelRunsByName: -kernel runs one registered kernel through the
// session API and reports its stats.
func TestKernelRunsByName(t *testing.T) {
	code, stdout, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "16")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "bfs") || !strings.Contains(stdout, "rounds") {
		t.Fatalf("-kernel output lacks the stats table:\n%s", stdout)
	}
	// A multi-pass pipeline kernel also runs end to end.
	code, stdout, _ = runCC(t, "-kernel", "ksource", "-kernel-n", "12")
	if code != 0 || !strings.Contains(stdout, "ksource") {
		t.Fatalf("-kernel ksource: code=%d stdout:\n%s", code, stdout)
	}
	// The semiring-generalization kernels are runnable by name too.
	for _, name := range []string{"widest", "closure", "mst", "diameter-est"} {
		code, stdout, stderr = runCC(t, "-kernel", name, "-kernel-n", "12")
		if code != 0 || !strings.Contains(stdout, name) {
			t.Fatalf("-kernel %s: code=%d stdout:\n%s\nstderr:\n%s", name, code, stdout, stderr)
		}
	}
}

// TestKernelsReportWritten drives the opt-in registered-kernels
// workload: one report entry per measured kernel per size, under the
// kernels schema, with sane accounting.
func TestKernelsReportWritten(t *testing.T) {
	dir := t.TempDir()
	kPath := filepath.Join(dir, "kernels.json")
	code, stdout, stderr := runCC(t,
		"-sizes", "", "-matmul-sizes", "", "-hopset-sizes", "",
		"-kernels-sizes", "16", "-kernels-o", kPath)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "wrote "+kPath) {
		t.Fatalf("stdout does not report writing %s:\n%s", kPath, stdout)
	}
	data, err := os.ReadFile(kPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name   string `json:"name"`
			N      int    `json:"n"`
			Rounds int    `json:"rounds"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "doryp20/bench-kernels/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		if r.N != 16 || r.Rounds == 0 {
			t.Errorf("implausible entry %+v", r)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"widest", "widest-ksource", "closure", "mst", "diameter-est", "diameter-est-approx"} {
		if !seen[want] {
			t.Errorf("report lacks kernel %q (got %v)", want, seen)
		}
	}
}

// TestUnknownKernelExitsTwo: an unregistered kernel name is a usage
// error, exit 2, like other flag errors.
func TestUnknownKernelExitsTwo(t *testing.T) {
	code, _, stderr := runCC(t, "-kernel", "definitely-not-registered")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "unknown kernel") {
		t.Fatalf("stderr lacks the unknown-kernel diagnostic:\n%s", stderr)
	}
	if code, _, _ := runCC(t, "-kernel", "bfs", "-kernel-n", "0"); code != 2 {
		t.Fatalf("-kernel-n 0 exit code = %d, want 2", code)
	}
}

func TestUnwritableOutputExitsOne(t *testing.T) {
	code, _, stderr := runCC(t, "-short", "-sizes", "16",
		"-o", filepath.Join(t.TempDir(), "no", "such", "dir.json"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
}

// TestKernelCheckpointAndResume drives the -checkpoint / -resume /
// -kernel-o surface: a checkpointing run leaves a checkpoint file and
// a JSON report behind, and a -resume from that file completes
// successfully.
func TestKernelCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	rep := filepath.Join(dir, "rep.json")
	code, stdout, stderr := runCC(t, "-kernel", "apsp", "-kernel-n", "16",
		"-checkpoint", dir, "-kernel-o", rep)
	if code != 0 {
		t.Fatalf("checkpointing run: code=%d stderr:\n%s", code, stderr)
	}
	ckpt := filepath.Join(dir, "apsp.ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint file after run: %v (stdout:\n%s)", err, stdout)
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("no report: %v", err)
	}
	var r kernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if r.Kernel != "apsp" || r.N != 16 || r.Stopped || r.Stats.Runs < 2 {
		t.Fatalf("implausible report: %+v", r)
	}

	code, _, stderr = runCC(t, "-kernel", "apsp", "-kernel-n", "16", "-resume", ckpt)
	if code != 0 {
		t.Fatalf("-resume: code=%d stderr:\n%s", code, stderr)
	}
}

// TestCheckpointFlagValidation pins the flag-combination errors around
// -checkpoint / -resume.
func TestCheckpointFlagValidation(t *testing.T) {
	if code, _, _ := runCC(t, "-checkpoint", t.TempDir(), "-sizes", ""); code != 2 {
		t.Fatalf("-checkpoint without -kernel: code=%d, want 2", code)
	}
	if code, _, _ := runCC(t, "-kernel", "apsp", "-kernel-n", "8", "-ckpt-every", "0"); code != 2 {
		t.Fatalf("-ckpt-every 0: code=%d, want 2", code)
	}
	// bfs is single-pass and not checkpointable; -resume must refuse it.
	if code, _, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "8", "-resume", "nope.ckpt"); code != 2 ||
		!strings.Contains(stderr, "does not support -resume") {
		t.Fatalf("-resume bfs: code=%d stderr:\n%s", code, stderr)
	}
	// Resuming from a missing file is a runtime failure, exit 1.
	if code, _, _ := runCC(t, "-kernel", "apsp", "-kernel-n", "8", "-resume", "no-such-file.ckpt"); code != 1 {
		t.Fatalf("-resume missing file: code=%d, want 1", code)
	}
}

// TestKernelSigintStopsAtBoundary delivers a real SIGINT to a live
// checkpointing run and requires the documented protocol: stop at the
// next pass boundary, final checkpoint on disk, partial report with
// stopped=true, exit 0 — then a -resume completes the run.
func TestKernelSigintStopsAtBoundary(t *testing.T) {
	dir := t.TempDir()
	rep := filepath.Join(dir, "rep.json")
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-kernel", "apsp", "-kernel-n", "96",
			"-checkpoint", dir, "-kernel-o", rep}, &out, &errb)
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case <-done:
		t.Skip("run completed before the interrupt could be delivered")
	default:
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	code := <-done
	if code != 0 {
		t.Fatalf("interrupted run: code=%d stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("no report after interrupted run: %v", err)
	}
	var r kernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if !r.Stopped {
		// The signal landed after the final pass; nothing left to verify.
		return
	}
	if r.Checkpoint == "" {
		t.Fatalf("stopped report lacks checkpoint path: %+v", r)
	}
	if _, err := os.Stat(r.Checkpoint); err != nil {
		t.Fatalf("stopped run left no checkpoint: %v", err)
	}
	if code, _, stderr := runCC(t, "-kernel", "apsp", "-kernel-n", "96", "-resume", r.Checkpoint); code != 0 {
		t.Fatalf("resume after SIGINT: code=%d stderr:\n%s", code, stderr)
	}
}

// TestKernelTransportCluster: a non-mem -transport runs the kernel as
// an in-process loopback cluster of sessions sharing one logical
// clique, verifies cross-rank digest agreement, and records the
// transport in the report; invalid flag combinations exit 2.
func TestKernelTransportCluster(t *testing.T) {
	rep := filepath.Join(t.TempDir(), "rep.json")
	code, stdout, stderr := runCC(t, "-kernel", "bfs", "-kernel-n", "24",
		"-transport", "socket-unix", "-ranks", "2", "-kernel-o", rep)
	if code != 0 {
		t.Fatalf("cluster run: code=%d stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "ranks agree") {
		t.Fatalf("cluster run output lacks the digest-agreement line:\n%s", stdout)
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("no report after cluster run: %v", err)
	}
	var r kernelReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if r.Transport != "socket-unix" || r.Ranks != 2 || r.Stats.Engine.Rounds == 0 {
		t.Fatalf("report misdescribes the cluster run: %+v", r)
	}

	for _, tc := range [][]string{
		{"-kernel", "bfs", "-transport", "socket-unix", "-checkpoint", t.TempDir()},
		{"-kernel", "bfs", "-transport", "socket-unix", "-resume", "x.ckpt"},
		{"-kernel", "bfs", "-transport", "socket-unix", "-ranks", "1"},
		{"-kernel", "bfs", "-transport", "bogus"},
		{"-kernel", "definitely-not-registered", "-transport", "socket-unix"},
		{"-transport", "socket-unix"},
	} {
		if code, _, stderr := runCC(t, tc...); code != 2 {
			t.Errorf("%v: code=%d, want 2 (stderr: %s)", tc, code, stderr)
		}
	}
}
