// ccbench runs the Congested Clique engine's flood benchmark across a
// set of clique sizes and writes a machine-readable BENCH_engine.json,
// the perf baseline tracked across PRs.
//
// Usage:
//
//	ccbench [-o BENCH_engine.json] [-sizes 64,256,1024] [-rounds 32] [-fanout 64] [-short]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/paper-repo-growth/doryp20/internal/bench"
)

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid clique size %q", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func main() {
	out := flag.String("o", "BENCH_engine.json", "output JSON path")
	sizesFlag := flag.String("sizes", "64,256,1024", "comma-separated clique sizes")
	rounds := flag.Int("rounds", 32, "send-rounds per configuration")
	fanout := flag.Int("fanout", 64, "messages per node per round (clamped to n-1)")
	short := flag.Bool("short", false, "smoke mode: tiny rounds/fanout for CI")
	flag.Parse()

	if *short {
		*rounds = 4
		*fanout = 8
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(2)
	}

	rep, err := bench.Run(sizes, *rounds, *fanout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-8s %-8s %-14s %-14s %-10s\n",
		"n", "fanout", "rounds", "rounds/s", "msgs/s", "ns/msg")
	for _, r := range rep.Results {
		fmt.Printf("%-8d %-8d %-8d %-14.0f %-14.0f %-10.2f\n",
			r.N, r.Fanout, r.Rounds, r.RoundsPerSec, r.MsgsPerSec, r.NsPerMsg)
	}
	fmt.Println("wrote", *out)
}
