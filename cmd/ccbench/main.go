// ccbench runs the Congested Clique benchmark suite — the engine flood
// workload, the matmul distance-product workload, the hopset workload
// (exact APSP versus hopset-based approximate SSSP), and the
// registered-kernels workload (the semiring-generalization kernels:
// widest paths, transitive closure, MST, diameter estimation) — and
// writes the machine-readable perf baselines tracked across PRs
// (BENCH_engine.json, BENCH_matmul.json, BENCH_hopset.json,
// BENCH_kernels.json; the kernels workload is opt-in via
// -kernels-sizes). It also
// fronts the clique kernel registry: -list prints every registered
// kernel and -kernel runs one by name on a deterministic G(n,p)
// instance through the session API.
//
// Usage:
//
//	ccbench [-o BENCH_engine.json] [-sizes 64,256,1024] [-rounds 32] [-fanout 64]
//	        [-matmul-o BENCH_matmul.json] [-matmul-sizes 64,256] [-matmul-p 0.1]
//	        [-hopset-o BENCH_hopset.json] [-hopset-sizes 64,256,1024] [-hopset-p 0.05]
//	        [-kernels-o BENCH_kernels.json] [-kernels-sizes 64,256]
//	        [-short]
//	ccbench -list
//	ccbench -kernel <name> [-kernel-n 64] [-kernel-o report.json]
//	        [-checkpoint dir] [-ckpt-every k] [-resume file.ckpt]
//	        [-transport mem|socket-tcp|socket-unix] [-ranks k]
//	        [-progress] [-trace trace.json]
//	ccbench [-cpuprofile cpu.pprof] [-memprofile mem.pprof] ...
//
// -trace writes a Chrome trace-event JSON timeline of the -kernel run
// (per-round and per-phase spans plus kernel-pass spans; one process
// lane per rank for a loopback cluster) for Perfetto or the tracestat
// summarizer. -cpuprofile/-memprofile capture pprof profiles of any
// invocation. -progress paints a live round/words/rate line on a
// terminal stderr during -kernel runs and the -hopset-sizes workload.
//
// With a non-mem -transport, the -kernel run executes as a k-rank
// loopback cluster of the selected socket transport — every rank its
// own session sharing one logical clique — and fails unless all ranks
// produce bit-identical replay digest chains. -checkpoint/-resume
// require the mem transport.
//
// With -checkpoint, a checkpointable kernel run persists its state
// under dir at pass boundaries, and the first SIGINT stops the run
// cleanly at the next boundary (after a final checkpoint), writes the
// partial -kernel-o report, and exits 0; a second SIGINT cancels hard.
// -resume continues a run from a checkpoint file written that way.
//
// Unknown flags, stray positional arguments, and unknown kernel names
// are an error: ccbench exits with status 2 and a diagnostic rather
// than silently running defaults.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/bench"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/trace"

	// Register the algorithm kernels with the clique registry (the
	// matmul kernels arrive through the bench import chain).
	_ "github.com/paper-repo-growth/doryp20/internal/algo"
)

// parseSizes parses a comma-separated clique size list. An empty (or
// all-whitespace) list is valid and returns nil: it means "skip this
// workload".
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid clique size %q", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// kernelOpts carries the checkpoint/resume configuration of a -kernel
// invocation.
type kernelOpts struct {
	// ckptDir and ckptEvery configure clique.WithCheckpoint; empty
	// ckptDir disables checkpointing.
	ckptDir   string
	ckptEvery int
	// resume, when non-empty, continues the run from that checkpoint
	// file instead of starting fresh.
	resume string
	// out, when non-empty, is the machine-readable report path —
	// written for completed and SIGINT-stopped runs alike.
	out string
	// signals enables the SIGINT protocol (stop at the next pass
	// boundary, cancel hard on the second signal); off in tests.
	signals bool
	// transport and ranks select a registered transport for the run;
	// a non-mem transport runs ranks in-process loopback legs of one
	// logical clique (see cmd/ccnode for true multi-process meshes).
	transport string
	ranks     int
	// progress enables the live round/words/rate line on stderr,
	// auto-disabled when stderr is not a terminal.
	progress bool
	// trace, when non-empty, writes a Chrome trace-event JSON timeline
	// of the run there — for a loopback cluster, all ranks merged into
	// one file with one process lane per rank.
	trace string
}

// kernelReport is the -kernel-o JSON document. Stats uses the
// repository's one stable session-accounting encoding (see
// clique.Stats.MarshalJSON), shared with ccnode reports and ccserve's
// /stats responses.
type kernelReport struct {
	Kernel     string       `json:"kernel"`
	N          int          `json:"n"`
	Transport  string       `json:"transport,omitempty"`
	Ranks      int          `json:"ranks,omitempty"`
	Stats      clique.Stats `json:"stats"`
	Stopped    bool         `json:"stopped"`
	Checkpoint string       `json:"checkpoint,omitempty"`
}

// runKernel executes one registered kernel on a deterministic weighted
// G(n, p=0.15) instance through the session API and prints its
// cumulative stats. Unknown kernel names exit 2 like other flag
// errors. A run stopped by SIGINT at a pass boundary (see kernelOpts)
// is a success: the final checkpoint and the partial report are on
// disk for a later -resume.
func runKernel(name string, n int, opt kernelOpts, stdout, stderr io.Writer) int {
	if opt.transport != "" && opt.transport != "mem" {
		return runKernelCluster(name, n, opt, stdout, stderr)
	}
	g := graph.RandomGNP(n, 0.15, 1).WithUniformRandomWeights(2, 16)
	k, err := clique.NewKernel(name, g)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	sessOpts := []clique.Option{clique.WithDigests()}
	if opt.ckptDir != "" {
		sessOpts = append(sessOpts, clique.WithCheckpoint(opt.ckptDir, opt.ckptEvery))
	}
	var rec *trace.Recorder
	if opt.trace != "" {
		rec = trace.NewRecorder(0)
		sessOpts = append(sessOpts, clique.WithTrace(rec))
	}
	var meter *progressMeter
	if opt.progress {
		if isTerminal(stderr) {
			meter = newProgressMeter(stderr, 0)
			sessOpts = append(sessOpts, clique.WithRoundHook(meter.hook))
		} else {
			fmt.Fprintln(stderr, "ccbench: -progress disabled (stderr is not a terminal)")
		}
	}
	s, err := clique.New(g, sessOpts...)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 1
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if opt.signals {
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt)
		defer signal.Stop(sigc)
		go func() {
			<-sigc
			fmt.Fprintln(stderr, "ccbench: interrupt — stopping at the next pass boundary (^C again to abort)")
			s.RequestStop()
			<-sigc
			cancel()
		}()
	}

	if opt.resume != "" {
		ck, ok := k.(clique.Checkpointable)
		if !ok {
			fmt.Fprintf(stderr, "ccbench: kernel %q does not support -resume\n", name)
			return 2
		}
		err = s.Resume(ctx, ck, opt.resume)
	} else {
		err = s.Run(ctx, k)
	}
	if meter != nil {
		meter.finish()
	}
	stopped := errors.Is(err, clique.ErrStopped)
	if err != nil && !stopped {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 1
	}

	st := s.Stats()
	fmt.Fprintf(stdout, "%-16s %-8s %-8s %-8s %-10s %-12s %-12s\n",
		"kernel", "n", "passes", "rounds", "msgs", "bytes", "wall")
	fmt.Fprintf(stdout, "%-16s %-8d %-8d %-8d %-10d %-12d %-12s\n",
		name, n, st.Runs, st.Engine.Rounds, st.Engine.TotalMsgs,
		st.Engine.TotalBytes, st.Engine.Wall)
	rep := kernelReport{Kernel: name, N: n, Stats: st, Stopped: stopped}
	if stopped {
		if _, ok := k.(clique.Checkpointable); ok && opt.ckptDir != "" {
			rep.Checkpoint = clique.CheckpointPath(opt.ckptDir, name)
			fmt.Fprintln(stdout, "stopped; checkpoint at", rep.Checkpoint)
		} else {
			fmt.Fprintln(stdout, "stopped at a pass boundary (no checkpoint configured)")
		}
	}
	if opt.out != "" {
		if err := bench.WriteJSON(opt.out, rep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", opt.out)
	}
	if rec != nil {
		if err := writeTraceFile(opt.trace, rec); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", opt.trace)
	}
	return 0
}

// runKernelCluster executes one registered kernel on every rank of an
// in-process loopback cluster of the named transport — each rank its
// own session over its own transport leg, all ranks one logical clique
// — requires the ranks' replay digest chains to agree bit for bit, and
// reports the (cluster-global) stats. True multi-process meshes are
// cmd/ccnode's job; this path proves transport interchangeability from
// the bench CLI.
func runKernelCluster(name string, n int, opt kernelOpts, stdout, stderr io.Writer) int {
	if !clique.Registered(name) {
		fmt.Fprintf(stderr, "ccbench: unknown kernel %q\n", name)
		return 2
	}
	if opt.progress {
		fmt.Fprintln(stderr, "ccbench: -progress disabled (loopback cluster ranks would interleave)")
	}
	trs, err := engine.NewTransportCluster(opt.transport, opt.ranks)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	g := graph.RandomGNP(n, 0.15, 1).WithUniformRandomWeights(2, 16)
	stats := make([]clique.Stats, len(trs))
	digests := make([][]uint64, len(trs))
	errs := make([]error, len(trs))
	// One recorder per rank, created together so the ranks share a
	// timeline epoch; the export merges them into one file with a
	// process lane per rank.
	var recs []*trace.Recorder
	if opt.trace != "" {
		recs = make([]*trace.Recorder, len(trs))
		for i := range recs {
			recs[i] = trace.NewRecorder(0)
			recs[i].SetRank(i)
		}
	}
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				k, err := clique.NewKernel(name, g)
				if err != nil {
					trs[rank].Close()
					return err
				}
				sessOpts := []clique.Option{clique.WithDigests(), clique.WithTransport(trs[rank])}
				if recs != nil {
					sessOpts = append(sessOpts, clique.WithTrace(recs[rank]))
				}
				s, err := clique.New(g, sessOpts...)
				if err != nil {
					trs[rank].Close()
					return err
				}
				defer s.Close()
				if err := s.Run(context.Background(), k); err != nil {
					return err
				}
				stats[rank] = s.Stats()
				digests[rank] = s.Digests()
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "ccbench: rank %d: %v\n", rank, err)
			return 1
		}
	}
	for rank := 1; rank < len(digests); rank++ {
		if !slices.Equal(digests[rank], digests[0]) {
			fmt.Fprintf(stderr, "ccbench: rank %d digest chain diverges from rank 0\n", rank)
			return 1
		}
	}

	st := stats[0]
	fmt.Fprintf(stdout, "%-16s %-8s %-12s %-8s %-8s %-10s %-12s %-12s\n",
		"kernel", "n", "transport", "passes", "rounds", "msgs", "bytes", "wall")
	fmt.Fprintf(stdout, "%-16s %-8d %-12s %-8d %-8d %-10d %-12d %-12s\n",
		name, n, fmt.Sprintf("%s/%d", opt.transport, opt.ranks), st.Runs,
		st.Engine.Rounds, st.Engine.TotalMsgs, st.Engine.TotalBytes, st.Engine.Wall)
	fmt.Fprintf(stdout, "all %d ranks agree on %d replay digests\n", len(trs), len(digests[0]))
	if opt.out != "" {
		rep := kernelReport{
			Kernel: name, N: n, Transport: opt.transport, Ranks: opt.ranks,
			Stats: st,
		}
		if err := bench.WriteJSON(opt.out, rep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", opt.out)
	}
	if recs != nil {
		if err := writeTraceFile(opt.trace, recs...); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", opt.trace)
	}
	return 0
}

// run is the testable body of main: it parses args, runs both
// workloads, and writes both reports, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_engine.json", "engine report output path")
	sizesFlag := fs.String("sizes", "64,256,1024", "comma-separated clique sizes for the flood workload (empty skips it)")
	rounds := fs.Int("rounds", 32, "send-rounds per flood configuration")
	fanout := fs.Int("fanout", 64, "messages per node per round (clamped to n-1)")
	matmulOut := fs.String("matmul-o", "BENCH_matmul.json", "matmul report output path")
	matmulSizes := fs.String("matmul-sizes", "64,256", "comma-separated clique sizes for the distance-product workload (empty skips it)")
	matmulP := fs.Float64("matmul-p", 0.1, "G(n,p) edge probability for the distance-product workload")
	hopsetOut := fs.String("hopset-o", "BENCH_hopset.json", "hopset report output path")
	hopsetSizes := fs.String("hopset-sizes", "64,256,1024", "comma-separated clique sizes for the hopset workload (empty skips it)")
	hopsetP := fs.Float64("hopset-p", 0.05, "G(n,p) edge probability for the hopset workload")
	kernelsOut := fs.String("kernels-o", "BENCH_kernels.json", "kernels report output path")
	kernelsSizes := fs.String("kernels-sizes", "", "comma-separated clique sizes for the registered-kernels workload (empty skips it)")
	short := fs.Bool("short", false, "smoke mode: tiny workloads for CI")
	list := fs.Bool("list", false, "print the registered clique kernels and exit")
	kernel := fs.String("kernel", "", "run one registered kernel by name through the session API and exit")
	kernelN := fs.Int("kernel-n", 64, "clique size for -kernel")
	kernelOut := fs.String("kernel-o", "", "machine-readable report path for -kernel (empty skips it)")
	ckptDir := fs.String("checkpoint", "", "checkpoint directory for -kernel runs (empty disables checkpointing)")
	ckptEvery := fs.Int("ckpt-every", 1, "minimum engine rounds between -checkpoint writes")
	resume := fs.String("resume", "", "resume the -kernel run from this checkpoint file")
	transport := fs.String("transport", "mem", "transport for the -kernel run: mem, socket-tcp, or socket-unix (loopback cluster)")
	ranks := fs.Int("ranks", 2, "rank count for a non-mem -transport")
	progress := fs.Bool("progress", false, "live rounds/words/rate line on stderr during -kernel and -hopset-sizes runs (TTY only)")
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON timeline of the -kernel run (load in Perfetto or summarize with tracestat)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile at exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h / -help is a successful help request
		}
		// flag has already printed the error and usage to stderr.
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccbench: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}

	if *list {
		for _, name := range clique.Kernels() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	// Profiling covers every mode — the -kernel session path and the
	// workload benches alike (ROADMAP: profile the (min,+) inner loops).
	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer stop()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}
	if *kernel != "" {
		if *kernelN < 1 {
			fmt.Fprintf(stderr, "ccbench: -kernel-n %d must be >= 1\n", *kernelN)
			return 2
		}
		if *ckptEvery < 1 {
			fmt.Fprintf(stderr, "ccbench: -ckpt-every %d must be >= 1\n", *ckptEvery)
			return 2
		}
		if *transport != "mem" {
			// Checkpoints are written at engine round barriers of the
			// local process; resuming a sharded cluster is ccnode-level
			// snapshot territory, not the bench CLI's.
			if *ckptDir != "" || *resume != "" {
				fmt.Fprintln(stderr, "ccbench: -checkpoint/-resume require -transport mem")
				return 2
			}
			if *ranks < 2 {
				fmt.Fprintf(stderr, "ccbench: -ranks %d must be >= 2 for -transport %s\n", *ranks, *transport)
				return 2
			}
		}
		opt := kernelOpts{
			ckptDir: *ckptDir, ckptEvery: *ckptEvery,
			resume: *resume, out: *kernelOut, signals: true,
			transport: *transport, ranks: *ranks, progress: *progress,
			trace: *traceOut,
		}
		return runKernel(*kernel, *kernelN, opt, stdout, stderr)
	}
	if *ckptDir != "" || *resume != "" || *kernelOut != "" || *traceOut != "" {
		fmt.Fprintln(stderr, "ccbench: -checkpoint/-resume/-kernel-o/-trace require -kernel")
		return 2
	}
	if *transport != "mem" {
		fmt.Fprintln(stderr, "ccbench: -transport requires -kernel")
		return 2
	}

	if *short {
		// Shrink only the knobs the user did not set explicitly.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["rounds"] {
			*rounds = 4
		}
		if !set["fanout"] {
			*fanout = 8
		}
		if !set["matmul-sizes"] {
			*matmulSizes = "32,64"
		}
		if !set["hopset-sizes"] {
			*hopsetSizes = "32,64"
		}
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	msizes, err := parseSizes(*matmulSizes)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	if !(*matmulP > 0 && *matmulP <= 1) { // negated form also rejects NaN
		fmt.Fprintf(stderr, "ccbench: -matmul-p %v outside (0, 1]\n", *matmulP)
		return 2
	}
	hsizes, err := parseSizes(*hopsetSizes)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	if !(*hopsetP > 0 && *hopsetP <= 1) { // negated form also rejects NaN
		fmt.Fprintf(stderr, "ccbench: -hopset-p %v outside (0, 1]\n", *hopsetP)
		return 2
	}
	ksizes, err := parseSizes(*kernelsSizes)
	if err != nil {
		fmt.Fprintln(stderr, "ccbench:", err)
		return 2
	}
	if *progress && len(hsizes) == 0 {
		fmt.Fprintln(stderr, "ccbench: -progress requires -kernel or a -hopset-sizes workload")
		return 2
	}

	if len(sizes) > 0 {
		rep, err := bench.Run(sizes, *rounds, *fanout)
		if err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		if err := bench.WriteJSON(*out, rep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-8s %-8s %-8s %-14s %-14s %-10s\n",
			"n", "fanout", "rounds", "rounds/s", "msgs/s", "ns/msg")
		for _, r := range rep.Results {
			fmt.Fprintf(stdout, "%-8d %-8d %-8d %-14.0f %-14.0f %-10.2f\n",
				r.N, r.Fanout, r.Rounds, r.RoundsPerSec, r.MsgsPerSec, r.NsPerMsg)
		}
		fmt.Fprintln(stdout, "wrote", *out)
	}

	if len(msizes) > 0 {
		mrep, err := bench.RunMatmul(msizes, *matmulP, 1)
		if err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		if err := bench.WriteJSON(*matmulOut, mrep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-8s %-8s %-10s %-10s %-8s %-12s %-10s\n",
			"n", "p", "nnz_in", "nnz_out", "rounds", "msgs", "ns/msg")
		for _, r := range mrep.Results {
			fmt.Fprintf(stdout, "%-8d %-8.2f %-10d %-10d %-8d %-12d %-10.2f\n",
				r.N, r.P, r.NNZIn, r.NNZOut, r.Rounds, r.Messages, r.NsPerMsg)
		}
		fmt.Fprintln(stdout, "wrote", *matmulOut)
	}

	if len(hsizes) > 0 {
		// The hopset bench is the 13-minute one: -progress rides the
		// per-round observer with a label naming the current stage.
		var obs bench.HopsetObserver
		var meter *progressMeter
		if *progress {
			if isTerminal(stderr) {
				meter = newProgressMeter(stderr, 0)
				obs = func(stage string, n int, rs engine.RoundStats) {
					meter.setLabel(fmt.Sprintf("hopset n=%d %s", n, stage))
					meter.hook(rs)
				}
			} else {
				fmt.Fprintln(stderr, "ccbench: -progress disabled (stderr is not a terminal)")
			}
		}
		hrep, err := bench.RunHopsetObserved(hsizes, *hopsetP, 1, obs)
		if meter != nil {
			meter.finish()
		}
		if err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		if err := bench.WriteJSON(*hopsetOut, hrep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-8s %-6s %-6s %-8s %-14s %-14s %-8s\n",
			"n", "beta", "hubs", "eps", "exact_rounds", "approx_rounds", "ratio")
		for _, r := range hrep.Results {
			fmt.Fprintf(stdout, "%-8d %-6d %-6d %-8.2f %-14d %-14d %-8.3f\n",
				r.N, r.Beta, r.Hubs, r.Eps, r.ExactRounds, r.ApproxRounds, r.RoundsRatio)
		}
		fmt.Fprintln(stdout, "wrote", *hopsetOut)
	}

	if len(ksizes) > 0 {
		krep, err := bench.RunKernels(ksizes)
		if err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		if err := bench.WriteJSON(*kernelsOut, krep); err != nil {
			fmt.Fprintln(stderr, "ccbench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-22s %-8s %-8s %-8s %-10s %-10s\n",
			"kernel", "n", "passes", "rounds", "msgs", "ns/msg")
		for _, r := range krep.Results {
			fmt.Fprintf(stdout, "%-22s %-8d %-8d %-8d %-10d %-10.2f\n",
				r.Name, r.N, r.Passes, r.Rounds, r.Messages, r.NsPerMsg)
		}
		fmt.Fprintln(stdout, "wrote", *kernelsOut)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
