package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// readReport decodes one report written by run.
func readReport(t *testing.T, path string) report {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestMultiProcessEquivalence runs the headline kernel as a two-rank
// unix-socket cluster (both ranks in this process, each through the
// full CLI body) and as the single-address memory reference, and
// requires every observable in the reports — shard-independent stats,
// digest chain, result fingerprint, distance vector — to agree.
func TestMultiProcessEquivalence(t *testing.T) {
	dir := t.TempDir()
	workload := []string{"-kernel", "approx-sssp", "-n", "48", "-p", "0.15", "-seed", "1"}

	refOut := filepath.Join(dir, "ref.json")
	var stdout, stderr bytes.Buffer
	args := append([]string{"-rank", "0", "-addrs", "local", "-o", refOut}, workload...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("mem reference: exit %d\nstderr:\n%s", code, stderr.String())
	}
	ref := readReport(t, refOut)
	if ref.Transport != "mem" || ref.Ranks != 1 || ref.Lo != 0 || ref.Hi != 48 {
		t.Fatalf("reference report misdescribes its run: %+v", ref)
	}
	if len(ref.Digests) == 0 || ref.Dist == nil || ref.ResultFNV == "" {
		t.Fatalf("reference report is missing observables: %+v", ref)
	}

	addrs := strings.Join([]string{
		filepath.Join(dir, "rank0.sock"),
		filepath.Join(dir, "rank1.sock"),
	}, ",")
	outs := [2]string{filepath.Join(dir, "r0.json"), filepath.Join(dir, "r1.json")}
	codes := [2]int{}
	stderrs := [2]bytes.Buffer{}
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var out bytes.Buffer
			args := append([]string{
				"-rank", fmt.Sprint(rank), "-addrs", addrs,
				"-network", "unix", "-timeout", "10s", "-o", outs[rank],
			}, workload...)
			codes[rank] = run(args, &out, &stderrs[rank])
		}(rank)
	}
	wg.Wait()
	for rank, code := range codes {
		if code != 0 {
			t.Fatalf("rank %d: exit %d\nstderr:\n%s", rank, code, stderrs[rank].String())
		}
	}

	for rank := 0; rank < 2; rank++ {
		rep := readReport(t, outs[rank])
		if rep.Transport != "socket-unix" || rep.Ranks != 2 || rep.Rank != rank {
			t.Errorf("rank %d report misdescribes its run: %+v", rank, rep)
		}
		if rep.Lo >= rep.Hi || rep.Hi > 48 {
			t.Errorf("rank %d claims shard [%d, %d)", rank, rep.Lo, rep.Hi)
		}
		for name, pair := range map[string][2]any{
			"passes":     {rep.Stats.Runs, ref.Stats.Runs},
			"rounds":     {rep.Stats.Engine.Rounds, ref.Stats.Engine.Rounds},
			"msgs":       {rep.Stats.Engine.TotalMsgs, ref.Stats.Engine.TotalMsgs},
			"digests":    {rep.Digests, ref.Digests},
			"result_fnv": {rep.ResultFNV, ref.ResultFNV},
			"dist":       {rep.Dist, ref.Dist},
		} {
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Errorf("rank %d %s diverges from the mem reference", rank, name)
			}
		}
	}
}

// TestUsageErrors pins the exit-2 diagnostics.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no addrs", []string{"-rank", "0"}},
		{"rank out of range", []string{"-rank", "2", "-addrs", "a,b"}},
		{"bad kernel", []string{"-rank", "0", "-addrs", "local", "-kernel", "nope"}},
		{"bad n", []string{"-rank", "0", "-addrs", "local", "-n", "0"}},
		{"bad p", []string{"-rank", "0", "-addrs", "local", "-p", "2"}},
		{"bad network", []string{"-rank", "0", "-addrs", "a,b", "-network", "carrier-pigeon"}},
		{"stray args", []string{"-rank", "0", "-addrs", "local", "stray"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Errorf("exit %d, want 2\nstderr:\n%s", code, stderr.String())
			}
		})
	}
}
