package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestTracePerRankFiles runs a two-rank unix-socket cluster with
// -trace and checks each rank writes its own rank-tagged Chrome
// trace-event file — the inputs tracestat merges into one timeline.
func TestTracePerRankFiles(t *testing.T) {
	dir := t.TempDir()
	addrs := strings.Join([]string{
		filepath.Join(dir, "rank0.sock"),
		filepath.Join(dir, "rank1.sock"),
	}, ",")
	traces := [2]string{filepath.Join(dir, "t0.json"), filepath.Join(dir, "t1.json")}
	codes := [2]int{}
	stderrs := [2]bytes.Buffer{}
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var out bytes.Buffer
			codes[rank] = run([]string{
				"-rank", fmt.Sprint(rank), "-addrs", addrs,
				"-network", "unix", "-timeout", "10s",
				"-kernel", "bfs", "-n", "32", "-trace", traces[rank],
			}, &out, &stderrs[rank])
		}(rank)
	}
	wg.Wait()
	for rank, code := range codes {
		if code != 0 {
			t.Fatalf("rank %d: exit %d\nstderr:\n%s", rank, code, stderrs[rank].String())
		}
	}

	for rank, path := range traces {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("rank %d trace: %v", rank, err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph  string `json:"ph"`
				Cat string `json:"cat"`
				Pid int    `json:"pid"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("rank %d trace is not valid JSON: %v", rank, err)
		}
		rounds := 0
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			if ev.Pid != rank {
				t.Fatalf("rank %d trace carries pid %d span", rank, ev.Pid)
			}
			if ev.Cat == "round" {
				rounds++
			}
		}
		if rounds == 0 {
			t.Errorf("rank %d trace has no round spans", rank)
		}
	}
}
