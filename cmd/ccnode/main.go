// ccnode runs ONE rank of a multi-process Congested Clique: k ccnode
// processes, each owning a contiguous node shard of the same logical
// clique, connected by the socket transport into one deterministic
// computation. Every process runs the same registered kernel on the
// same deterministic G(n, p) instance; the transport's full-broadcast
// exchange keeps every rank's inbox bank, stats, and replay digest
// chain bit-identical to the single-process run, which is exactly what
// the report lets you verify.
//
// Usage:
//
//	ccnode -rank 0 -addrs host0:9000,host1:9000,host2:9000 [-network tcp]
//	       [-kernel approx-sssp] [-n 256] [-p 0.15] [-seed 1]
//	       [-timeout 30s] [-o report.json] [-trace trace-rank0.json]
//
// -trace writes this rank's Chrome trace-event timeline (rank-tagged
// process lane). Give each rank its own path; tools/tracestat merges
// the per-rank files into one cluster summary.
//
// Every rank must be started with the SAME -addrs list (it defines the
// cluster), the same workload flags, and its own -rank index. A single
// -addrs entry runs the in-process reference configuration on the
// memory transport — the ground truth a socket cluster's reports are
// compared against:
//
//	ccnode -rank 0 -addrs local -kernel approx-sssp -n 256 -o ref.json
//
// The JSON report carries the per-round replay digest chain and a
// result fingerprint as hex strings (digests are 64-bit values; JSON
// numbers would round them through float64), so equivalence across
// ranks and against the reference is a plain string comparison — see
// the multi-process job in .github/workflows/ci.yml.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strings"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/bench"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/trace"

	// Register the algorithm and matmul kernels with the clique registry.
	_ "github.com/paper-repo-growth/doryp20/internal/algo"
	_ "github.com/paper-repo-growth/doryp20/internal/matmul"
)

// report is the machine-readable outcome of one rank's run. Wall time
// is per-rank; every other field must be identical across the ranks of
// one cluster and identical to the single-process reference.
type report struct {
	Kernel    string  `json:"kernel"`
	N         int     `json:"n"`
	P         float64 `json:"p"`
	Seed      int64   `json:"seed"`
	Rank      int     `json:"rank"`
	Ranks     int     `json:"ranks"`
	Transport string  `json:"transport"`
	// Lo and Hi are this rank's node shard [lo, hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Stats is the session's cumulative accounting in the repository's
	// one stable encoding (see clique.Stats.MarshalJSON); wall time is
	// per-rank, everything else must agree across ranks.
	Stats clique.Stats `json:"stats"`
	// Digests is the replay digest chain, one 16-hex-digit string per
	// round.
	Digests []string `json:"digests"`
	// ResultFNV fingerprints the kernel result (FNV-1a over its JSON
	// encoding) so arbitrary result types compare as one string.
	ResultFNV string `json:"result_fnv"`
	// Dist is included verbatim when the kernel's result is a distance
	// vector, the common case for the shortest-path kernels.
	Dist []int64 `json:"dist,omitempty"`
}

// run is the testable body of main: parse flags, run this rank's leg
// of the clique, write the report. Exit codes follow ccbench: 0 ok,
// 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ccnode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rank := fs.Int("rank", 0, "this process's index into -addrs")
	addrsFlag := fs.String("addrs", "", "comma-separated listen address per rank; a single entry selects the in-process memory transport")
	network := fs.String("network", "tcp", `socket network: "tcp" or "unix"`)
	kernel := fs.String("kernel", "approx-sssp", "registered kernel to run (see ccbench -list)")
	n := fs.Int("n", 256, "clique size")
	p := fs.Float64("p", 0.15, "G(n,p) edge probability")
	seed := fs.Int64("seed", 1, "graph seed")
	timeout := fs.Duration("timeout", 30*time.Second, "bound on each socket operation (dial, handshake, one frame)")
	out := fs.String("o", "", "report output path (empty prints the report to stdout)")
	traceOut := fs.String("trace", "", "write this rank's Chrome trace-event JSON timeline here (give each rank its own path; tracestat merges them)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ccnode: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		fs.Usage()
		return 2
	}
	addrs := strings.Split(*addrsFlag, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *addrsFlag == "" || len(addrs) == 0 {
		fmt.Fprintln(stderr, "ccnode: -addrs is required (one address per rank)")
		return 2
	}
	if *rank < 0 || *rank >= len(addrs) {
		fmt.Fprintf(stderr, "ccnode: -rank %d outside [0, %d)\n", *rank, len(addrs))
		return 2
	}
	if *n < 1 {
		fmt.Fprintf(stderr, "ccnode: -n %d must be >= 1\n", *n)
		return 2
	}
	if !(*p > 0 && *p <= 1) {
		fmt.Fprintf(stderr, "ccnode: -p %v outside (0, 1]\n", *p)
		return 2
	}

	g := graph.RandomGNP(*n, *p, *seed).WithUniformRandomWeights(*seed+1, 16)
	k, err := clique.NewKernel(*kernel, g)
	if err != nil {
		fmt.Fprintln(stderr, "ccnode:", err)
		return 2
	}

	opts := []clique.Option{clique.WithDigests()}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(0)
		rec.SetRank(*rank)
		opts = append(opts, clique.WithTrace(rec))
	}
	transportName := "mem"
	if len(addrs) > 1 {
		tr, err := engine.NewSocketTransport(engine.SocketConfig{
			Network: *network,
			Addrs:   addrs,
			Rank:    *rank,
			Timeout: *timeout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "ccnode:", err)
			return 2
		}
		transportName = tr.Name()
		opts = append(opts, clique.WithTransport(tr))
	}

	s, err := clique.New(g, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "ccnode:", err)
		return 1
	}
	defer s.Close()
	if err := s.Run(context.Background(), k); err != nil {
		fmt.Fprintln(stderr, "ccnode:", err)
		return 1
	}

	rep, err := buildReport(s, k, *kernel, *n, *p, *seed, *rank, len(addrs), transportName)
	if err != nil {
		fmt.Fprintln(stderr, "ccnode:", err)
		return 1
	}
	if rec != nil {
		if err := trace.WriteChromeFile(*traceOut, rec); err != nil {
			fmt.Fprintln(stderr, "ccnode:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", *traceOut)
	}
	fmt.Fprintf(stdout, "rank %d/%d nodes [%d, %d): %s on n=%d done in %d passes, %d rounds, %d msgs\n",
		rep.Rank, rep.Ranks, rep.Lo, rep.Hi, rep.Kernel, rep.N,
		rep.Stats.Runs, rep.Stats.Engine.Rounds, rep.Stats.Engine.TotalMsgs)
	if *out != "" {
		if err := bench.WriteJSON(*out, rep); err != nil {
			fmt.Fprintln(stderr, "ccnode:", err)
			return 1
		}
		fmt.Fprintln(stdout, "wrote", *out)
	} else {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "ccnode:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
	}
	return 0
}

// buildReport assembles the rank report from the finished session.
func buildReport(s *clique.Session, k clique.Kernel, kernel string, n int, p float64, seed int64, rank, ranks int, transportName string) (*report, error) {
	st := s.Stats()
	lo, hi := s.Partition()
	rep := &report{
		Kernel: kernel, N: n, P: p, Seed: seed,
		Rank: rank, Ranks: ranks, Transport: transportName,
		Lo: lo, Hi: hi,
		Stats: st,
	}
	for _, d := range s.Digests() {
		rep.Digests = append(rep.Digests, fmt.Sprintf("%016x", d))
	}
	res := k.Result()
	if res == nil {
		return nil, fmt.Errorf("kernel %q completed without a result", kernel)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("encoding kernel result: %w", err)
	}
	h := fnv.New64a()
	h.Write(enc)
	rep.ResultFNV = fmt.Sprintf("%016x", h.Sum64())
	if dist, ok := res.([]int64); ok {
		rep.Dist = dist
	}
	return rep, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
