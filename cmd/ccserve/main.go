// ccserve is the query-serving daemon over the Congested Clique
// shortest-path pipeline: it loads graphs over HTTP, keeps one warm
// clique session per graph, coalesces concurrent approximate queries
// into batched kernel runs, caches hopset-augmented adjacencies per
// (graph, ε), and exposes Prometheus-text metrics. The HTTP API is
// documented in pkg/api; pkg/client is the Go client.
//
// Usage:
//
//	ccserve [-addr 127.0.0.1:7470] [-workers 0] [-max-batch 16]
//	        [-coalesce-wait 2ms] [-max-upload 67108864]
//
// A quickstart against a running daemon:
//
//	curl -s --data-binary @graph.el 'localhost:7470/graphs?name=g'
//	curl -s -X POST -d '{"source":0}' localhost:7470/graphs/g/sssp
//	curl -s -X POST -d '{"source":0,"eps":0.25}' localhost:7470/graphs/g/approx-sssp
//	curl -s localhost:7470/metrics
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight queries (bounded by -drain-timeout), closes every pooled
// session, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/paper-repo-growth/doryp20/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ccserve:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until ctx is done, then drains and shuts
// down. It prints "ccserve listening on ADDR" once the listener is
// bound, so callers (and the smoke harness) can wait for readiness and
// learn the port when -addr ends in :0.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ccserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7470", "listen address")
	workers := fs.Int("workers", 0, "engine workers per session (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 16, "max coalesced queries per batched kernel run")
	wait := fs.Duration("coalesce-wait", 2*time.Millisecond, "admission window for query coalescing")
	maxUpload := fs.Int64("max-upload", 64<<20, "graph upload size cap in bytes")
	drain := fs.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight queries")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Options{
		Workers:        *workers,
		MaxBatch:       *maxBatch,
		CoalesceWait:   *wait,
		MaxUploadBytes: *maxUpload,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ccserve listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting, wait out in-flight queries, then release
	// the pooled sessions (the deferred Close).
	fmt.Fprintln(out, "ccserve draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "ccserve stopped")
	return nil
}
