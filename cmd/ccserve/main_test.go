package main

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/pkg/client"
)

// lineWaiter is an io.Writer that signals when a full line arrives, so
// the test can wait for the daemon's readiness line and parse the
// bound address out of it.
type lineWaiter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines chan string
}

func newLineWaiter() *lineWaiter { return &lineWaiter{lines: make(chan string, 16)} }

func (w *lineWaiter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, _ := w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			// Partial line: put it back and wait for more bytes.
			w.buf.WriteString(line)
			break
		}
		w.lines <- strings.TrimSuffix(line, "\n")
	}
	return n, nil
}

func (w *lineWaiter) wait(t *testing.T, prefix string) string {
	t.Helper()
	for {
		select {
		case line := <-w.lines:
			if strings.HasPrefix(line, prefix) {
				return line
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q line", prefix)
		}
	}
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, runs a
// query round-trip through pkg/client, then cancels the context (the
// SIGTERM path) and checks run drains and returns nil — the exit-0
// contract.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := newLineWaiter()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-coalesce-wait", "1ms"}, out)
	}()

	line := out.wait(t, "ccserve listening on ")
	addr := strings.TrimPrefix(line, "ccserve listening on ")
	c := client.New("http://" + addr)

	g := graph.RandomGNPWeighted(16, 0.3, 9, 2)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	info, err := c.LoadGraph(ctx, "boot", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.SSSP(ctx, info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := algo.BellmanFordRef(g, core.NodeID(0))
	for v, d := range resp.Dist {
		if d != want[v] {
			t.Fatalf("vertex %d: daemon %d, oracle %d", v, d, want[v])
		}
	}

	cancel()
	out.wait(t, "ccserve draining")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

// TestRunBadFlags checks flag errors surface instead of serving.
func TestRunBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-addr"}, io.Discard)
	if err == nil {
		t.Fatal("run accepted a flag missing its value")
	}
}
