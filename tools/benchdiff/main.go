// benchdiff is the perf-regression gate: it compares freshly measured
// BENCH_*.json reports against committed baselines and exits non-zero
// when a tracked metric regresses beyond tolerance.
//
// Usage:
//
//	benchdiff [-tolerance 0.20] [-ns-tolerance t] [-min-matches 1] base.json:current.json ...
//
// Each positional argument is one baseline/current report pair joined
// on result identity — the benchmark name plus every configuration
// field present (n, fanout, procs, p, eps, beta). Metrics fall into
// two classes with separate tolerances:
//
//   - deterministic volume metrics (messages, rounds, exact/approx
//     counterparts): identical workloads must produce identical counts,
//     so any drift is an algorithmic change, gated by -tolerance;
//   - wall-clock metrics (ns_per_msg, ns_per_entry, wall_ns,
//     exact/approx_wall_ns): host-dependent and noisy, gated by
//     -ns-tolerance, which defaults to -tolerance and can be loosened
//     for cross-machine CI or disabled entirely with a negative value
//     (still reported, never gated).
//
// The gate is a per-metric geometric mean of current/baseline ratios
// across all matched results, so a single noisy configuration cannot
// fail the build but a systematic slowdown cannot hide behind one fast
// outlier. Exit status: 0 clean, 1 regression, 2 usage or input error
// (including fewer joined results than -min-matches — an empty join
// must read as a broken gate, not a passing one).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// volumeMetrics are deterministic for a fixed workload: message and
// round counts must reproduce exactly, so they are gated at the strict
// tolerance on every host.
var volumeMetrics = []string{
	"messages", "rounds",
	"exact_msgs", "exact_rounds",
	"approx_msgs", "approx_rounds",
}

// nsMetrics are wall-clock derived and host-dependent; they are gated
// at the (typically looser) -ns-tolerance.
var nsMetrics = []string{
	"ns_per_msg", "ns_per_entry",
	"wall_ns", "exact_wall_ns", "approx_wall_ns",
}

// identityFields are the configuration knobs that define which
// baseline result a current result is compared against; absent fields
// simply contribute nothing to the key.
var identityFields = []string{"n", "fanout", "procs", "p", "eps", "beta"}

// report is the generic shape of every BENCH_*.json artifact: a schema
// tag plus a list of flat result objects whose numeric fields we read
// dynamically so one tool covers the engine, matmul, and hopset
// reports alike (and future reports for free).
type report struct {
	Schema  string                       `json:"schema"`
	Results []map[string]json.RawMessage `json:"results"`
}

// loadReport reads and decodes one report file, rejecting files with
// no schema or no results — an empty gate input is a configuration
// error, not a clean pass.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema == "" {
		return nil, fmt.Errorf("%s: missing schema field", path)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &rep, nil
}

// field decodes one numeric field of a result; ok is false when the
// field is absent or not a number.
func field(res map[string]json.RawMessage, name string) (float64, bool) {
	raw, present := res[name]
	if !present {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

// identity builds the join key of one result from its name and every
// configuration field it carries.
func identity(res map[string]json.RawMessage) string {
	var name string
	if raw, ok := res["name"]; ok {
		_ = json.Unmarshal(raw, &name)
	}
	var b strings.Builder
	b.WriteString(name)
	for _, f := range identityFields {
		if v, ok := field(res, f); ok {
			fmt.Fprintf(&b, "|%s=%g", f, v)
		}
	}
	return b.String()
}

// ratioSet accumulates current/baseline ratios for one metric.
type ratioSet struct {
	logSum float64
	count  int
	// worstKey and worstRatio identify the single most regressed
	// configuration, for the diagnostic on failure.
	worstKey   string
	worstRatio float64
}

func (rs *ratioSet) add(key string, ratio float64) {
	rs.logSum += math.Log(ratio)
	rs.count++
	if ratio > rs.worstRatio {
		rs.worstRatio = ratio
		rs.worstKey = key
	}
}

// geomean returns the geometric mean ratio, or 1 when no pairs matched.
func (rs *ratioSet) geomean() float64 {
	if rs.count == 0 {
		return 1
	}
	return math.Exp(rs.logSum / float64(rs.count))
}

// diffPair joins one baseline/current report pair and feeds every
// shared metric of every matched result into ratios, returning the
// number of matched results.
func diffPair(base, cur *report, ratios map[string]*ratioSet, stderr io.Writer) (int, error) {
	if base.Schema != cur.Schema {
		return 0, fmt.Errorf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)
	}
	baseByKey := make(map[string]map[string]json.RawMessage, len(base.Results))
	for _, res := range base.Results {
		baseByKey[identity(res)] = res
	}
	matched := 0
	for _, res := range cur.Results {
		key := identity(res)
		b, ok := baseByKey[key]
		if !ok {
			fmt.Fprintf(stderr, "benchdiff: note: %s has no baseline entry (new configuration?)\n", key)
			continue
		}
		matched++
		for _, metric := range append(append([]string{}, volumeMetrics...), nsMetrics...) {
			cv, cok := field(res, metric)
			bv, bok := field(b, metric)
			if !cok || !bok || bv <= 0 || cv <= 0 {
				continue // metric absent from this report shape, or degenerate
			}
			rs, ok := ratios[metric]
			if !ok {
				rs = &ratioSet{}
				ratios[metric] = rs
			}
			rs.add(key, cv/bv)
		}
	}
	return matched, nil
}

// metricClass returns the tolerance bucket a metric belongs to.
func metricClass(metric string) string {
	for _, m := range nsMetrics {
		if m == metric {
			return "ns"
		}
	}
	return "volume"
}

// run is the testable body of main; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 0.20, "maximum allowed geomean regression for deterministic volume metrics (0.20 = +20%)")
	nsTolerance := fs.Float64("ns-tolerance", math.NaN(), "maximum allowed geomean regression for wall-clock metrics (defaults to -tolerance; negative disables the gate for them)")
	minMatches := fs.Int("min-matches", 1, "fail unless at least this many results joined across all pairs")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "benchdiff: no base.json:current.json pairs given")
		fs.Usage()
		return 2
	}
	if *tolerance < 0 {
		fmt.Fprintln(stderr, "benchdiff: -tolerance must be >= 0")
		return 2
	}
	if math.IsNaN(*nsTolerance) {
		*nsTolerance = *tolerance
	}

	ratios := map[string]*ratioSet{}
	totalMatched := 0
	for _, pair := range fs.Args() {
		basePath, curPath, ok := strings.Cut(pair, ":")
		if !ok || basePath == "" || curPath == "" {
			fmt.Fprintf(stderr, "benchdiff: argument %q is not a base.json:current.json pair\n", pair)
			return 2
		}
		base, err := loadReport(basePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		cur, err := loadReport(curPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		matched, err := diffPair(base, cur, ratios, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %s: %v\n", pair, err)
			return 2
		}
		totalMatched += matched
	}
	if totalMatched < *minMatches {
		fmt.Fprintf(stderr, "benchdiff: only %d results joined, need %d — the gate is not measuring anything\n",
			totalMatched, *minMatches)
		return 2
	}

	metrics := make([]string, 0, len(ratios))
	for m := range ratios {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)

	fmt.Fprintf(stdout, "%-16s %-8s %-8s %-10s %-10s %s\n",
		"metric", "class", "pairs", "geomean", "limit", "status")
	failed := false
	for _, m := range metrics {
		rs := ratios[m]
		class := metricClass(m)
		tol := *tolerance
		if class == "ns" {
			tol = *nsTolerance
		}
		gm := rs.geomean()
		status := "ok"
		limit := fmt.Sprintf("%.3f", 1+tol)
		switch {
		case class == "ns" && tol < 0:
			status = "ungated"
			limit = "-"
		case gm > 1+tol:
			status = "REGRESSED"
			failed = true
		}
		fmt.Fprintf(stdout, "%-16s %-8s %-8d %-10.3f %-10s %s\n",
			m, class, rs.count, gm, limit, status)
		if status == "REGRESSED" {
			fmt.Fprintf(stderr, "benchdiff: %s regressed: geomean ratio %.3f exceeds %.3f (worst: %s at %.3f)\n",
				m, gm, 1+tol, rs.worstKey, rs.worstRatio)
		}
	}
	fmt.Fprintf(stdout, "%d results joined\n", totalMatched)
	if failed {
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
