package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// res is a synthetic benchmark result for fixture building.
type res map[string]any

// writeReport writes a synthetic report fixture and returns its path.
func writeReport(t *testing.T, dir, name, schema string, results []res) string {
	t.Helper()
	doc := map[string]any{"schema": schema, "results": results}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// engineRes builds a plausible engine flood result.
func engineRes(n int, nsPerMsg float64, msgs uint64) res {
	return res{
		"name": "engine_flood", "n": n, "fanout": 64, "rounds": 33,
		"messages": msgs, "wall_ns": int64(nsPerMsg * float64(msgs)),
		"ns_per_msg": nsPerMsg,
	}
}

// runDiff invokes run and returns exit code plus captured output.
func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestIdenticalReportsPass(t *testing.T) {
	dir := t.TempDir()
	results := []res{engineRes(64, 17.2, 129024), engineRes(256, 18.3, 524288)}
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1", results)
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1", results)
	code, stdout, stderr := runDiff(t, base+":"+cur)
	if code != 0 {
		t.Fatalf("identical reports: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "2 results joined") {
		t.Errorf("expected 2 joined results, got:\n%s", stdout)
	}
}

// TestInjectedRegressionFails is the gate's core property: a x2
// ns_per_msg regression on every configuration must fail the build.
func TestInjectedRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17.2, 129024), engineRes(256, 18.3, 524288)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 34.4, 129024), engineRes(256, 36.6, 524288)})
	code, stdout, stderr := runDiff(t, base+":"+cur)
	if code != 1 {
		t.Fatalf("x2 regression: exit %d, want 1\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stderr, "ns_per_msg regressed") {
		t.Errorf("stderr should name the regressed metric:\n%s", stderr)
	}
	if !strings.Contains(stdout, "REGRESSED") {
		t.Errorf("stdout should flag the regression:\n%s", stdout)
	}
}

// TestVolumeRegressionFails covers the deterministic class: doubled
// message counts are an algorithmic regression even when timing is
// ungated.
func TestVolumeRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17.2, 129024)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17.2, 258048)})
	code, _, stderr := runDiff(t, "-ns-tolerance=-1", base+":"+cur)
	if code != 1 {
		t.Fatalf("doubled messages with ns gate off: exit %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "messages regressed") {
		t.Errorf("stderr should name messages:\n%s", stderr)
	}
}

// TestNsToleranceDisablesTimingGate checks a negative -ns-tolerance
// reports timing drift without gating on it — the cross-machine CI
// mode.
func TestNsToleranceDisablesTimingGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17.2, 129024)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 172.0, 129024)})
	code, stdout, _ := runDiff(t, "-ns-tolerance=-1", base+":"+cur)
	if code != 0 {
		t.Fatalf("x10 timing with ns gate off: exit %d, want 0\nstdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "ungated") {
		t.Errorf("stdout should mark timing metrics ungated:\n%s", stdout)
	}
}

// TestImprovementPasses: a 2x speedup must not trip the gate (the
// ratio test is one-sided).
func TestImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17.2, 129024)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 8.6, 129024)})
	if code, stdout, _ := runDiff(t, base+":"+cur); code != 0 {
		t.Fatalf("improvement: exit %d, want 0\nstdout:\n%s", code, stdout)
	}
}

// TestGeomeanAveragesAcrossConfigs: one config regresses x1.5, another
// improves x0.67 — the geomean sits near 1 and passes, so a single
// noisy configuration cannot fail the build alone.
func TestGeomeanAveragesAcrossConfigs(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{engineRes(64, 10, 129024), engineRes(256, 10, 524288)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 15, 129024), engineRes(256, 6.7, 524288)})
	if code, stdout, stderr := runDiff(t, base+":"+cur); code != 0 {
		t.Fatalf("balanced drift: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestPerProcEntriesJoinOnProcs: entries differing only in procs must
// not cross-join — a regression at procs=4 must be caught even when
// procs=1 improved.
func TestPerProcEntriesJoinOnProcs(t *testing.T) {
	dir := t.TempDir()
	procRes := func(procs int, ns float64) res {
		r := engineRes(256, ns, 524288)
		r["name"] = "engine_flood_procs"
		r["procs"] = procs
		return r
	}
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1",
		[]res{procRes(1, 20), procRes(4, 10)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{procRes(1, 20), procRes(4, 25)})
	code, _, stderr := runDiff(t, base+":"+cur)
	if code != 1 {
		t.Fatalf("procs=4 regression: exit %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "procs=4") {
		t.Errorf("worst-config diagnostic should name procs=4:\n%s", stderr)
	}
}

// TestHopsetSchemaMetrics: the hopset report's exact/approx metric
// pairs are gated too, joined on (n, p, eps, beta).
func TestHopsetSchemaMetrics(t *testing.T) {
	dir := t.TempDir()
	hopRes := func(approxRounds int) res {
		return res{
			"name": "hopset_approx_sssp_vs_exact_apsp", "n": 64, "p": 0.05,
			"beta": 16, "eps": 0.5, "hubs": 11,
			"exact_rounds": 290, "exact_msgs": 100000, "exact_wall_ns": 9000000,
			"approx_rounds": approxRounds, "approx_msgs": 9000, "approx_wall_ns": 2500000,
		}
	}
	base := writeReport(t, dir, "base.json", "doryp20/bench-hopset/v1", []res{hopRes(100)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench-hopset/v1", []res{hopRes(160)})
	code, _, stderr := runDiff(t, base+":"+cur)
	if code != 1 {
		t.Fatalf("approx_rounds +60%%: exit %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "approx_rounds regressed") {
		t.Errorf("stderr should name approx_rounds:\n%s", stderr)
	}
}

func TestMultiplePairs(t *testing.T) {
	dir := t.TempDir()
	ebase := writeReport(t, dir, "ebase.json", "doryp20/bench/v1", []res{engineRes(64, 17, 129024)})
	ecur := writeReport(t, dir, "ecur.json", "doryp20/bench/v1", []res{engineRes(64, 17, 129024)})
	mres := []res{{
		"name": "matmul_minplus_square", "n": 32, "p": 0.1,
		"rounds": 10, "messages": 760, "wall_ns": 285505,
		"ns_per_msg": 375.66, "ns_per_entry": 617.98,
	}}
	mbase := writeReport(t, dir, "mbase.json", "doryp20/bench-matmul/v1", mres)
	mcur := writeReport(t, dir, "mcur.json", "doryp20/bench-matmul/v1", mres)
	code, stdout, stderr := runDiff(t, "-min-matches=2", ebase+":"+ecur, mbase+":"+mcur)
	if code != 0 {
		t.Fatalf("two clean pairs: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "2 results joined") {
		t.Errorf("expected 2 joined results across pairs:\n%s", stdout)
	}
}

// Usage and input errors are exit 2, distinct from regressions.
func TestErrorExits(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", "doryp20/bench/v1", []res{engineRes(64, 17, 100)})
	other := writeReport(t, dir, "other.json", "doryp20/bench-matmul/v1", []res{engineRes(64, 17, 100)})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"s","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
	}{
		{"no pairs", nil},
		{"malformed pair", []string{"solo.json"}},
		{"missing file", []string{good + ":" + filepath.Join(dir, "nope.json")}},
		{"empty results", []string{good + ":" + empty}},
		{"schema mismatch", []string{good + ":" + other}},
		{"min-matches unmet", []string{"-min-matches=5", good + ":" + good}},
		{"negative tolerance", []string{"-tolerance=-1", good + ":" + good}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code, stdout, _ := runDiff(t, tc.args...); code != 2 {
				t.Errorf("exit %d, want 2\nstdout:\n%s", code, stdout)
			}
		})
	}
}

// TestUnmatchedEntriesAreNotedNotFatal: a new configuration in the
// current report (no baseline yet) warns but does not fail.
func TestUnmatchedEntriesAreNotedNotFatal(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", "doryp20/bench/v1", []res{engineRes(64, 17, 100)})
	cur := writeReport(t, dir, "cur.json", "doryp20/bench/v1",
		[]res{engineRes(64, 17, 100), engineRes(512, 17, 100)})
	code, _, stderr := runDiff(t, base+":"+cur)
	if code != 0 {
		t.Fatalf("new config: exit %d, want 0\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "no baseline entry") {
		t.Errorf("stderr should note the unmatched configuration:\n%s", stderr)
	}
}

// TestRealBaselinesSelfCompare runs the tool over the repo's committed
// baselines compared against themselves — the committed artifacts must
// always be valid gate inputs.
func TestRealBaselinesSelfCompare(t *testing.T) {
	for _, f := range []string{"BENCH_engine.json", "BENCH_matmul.json", "BENCH_hopset.json"} {
		path := filepath.Join("..", "..", f)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("committed baseline missing: %v", err)
		}
		if code, stdout, stderr := runDiff(t, path+":"+path); code != 0 {
			t.Errorf("%s self-compare: exit %d\nstdout:\n%s\nstderr:\n%s", f, code, stdout, stderr)
		}
	}
}
