// ccservesmoke is the CI end-to-end smoke harness for the ccserve
// daemon: it execs a built ccserve binary on an ephemeral port, drives
// it through pkg/client — upload a seeded G(n, p) graph, exact sssp
// diffed against the sequential Bellman-Ford oracle, two approximate
// queries proving the hopset cache hits on the second, two
// reachability queries proving the closure cache hits, a /metrics
// scrape checked for the serving series — then sends SIGTERM and
// asserts the daemon drains and exits 0.
//
// Usage:
//
//	go build -o /tmp/ccserve ./cmd/ccserve
//	go run ./tools/ccservesmoke -bin /tmp/ccserve
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/pkg/client"
)

func main() {
	bin := flag.String("bin", "ccserve", "path to the ccserve binary")
	n := flag.Int("n", 64, "graph size")
	p := flag.Float64("p", 0.2, "edge probability")
	seed := flag.Int64("seed", 1, "graph seed")
	eps := flag.Float64("eps", 0.25, "approximation slack")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := smoke(ctx, *bin, *n, *p, *seed, *eps); err != nil {
		fmt.Fprintln(os.Stderr, "ccservesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("ccserve smoke OK")
}

// smoke runs the whole scenario against one daemon process.
func smoke(ctx context.Context, bin string, n int, p float64, seed int64, eps float64) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-coalesce-wait", "1ms")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	defer cmd.Process.Kill() // no-op once Wait has reaped a clean exit

	// The daemon prints its bound address once the listener is up.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("[ccserve]", line)
			if rest, ok := strings.CutPrefix(line, "ccserve listening on "); ok {
				addrCh <- rest
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-ctx.Done():
		return fmt.Errorf("daemon never reported a listen address: %w", ctx.Err())
	}
	c := client.New("http://" + addr)
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Upload a seeded weighted G(n, p) graph.
	g := graph.RandomGNPWeighted(n, p, 9, seed)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		return err
	}
	info, err := c.LoadGraph(ctx, "smoke", &buf)
	if err != nil {
		return fmt.Errorf("upload: %w", err)
	}
	fmt.Printf("loaded %s: n=%d edges=%d\n", info.ID, info.N, info.Edges)

	// Exact sssp must equal the sequential oracle.
	want := algo.BellmanFordRef(g, core.NodeID(0))
	sssp, err := c.SSSP(ctx, info.ID, 0)
	if err != nil {
		return fmt.Errorf("sssp: %w", err)
	}
	for v, d := range sssp.Dist {
		if d != want[v] {
			return fmt.Errorf("sssp vertex %d: daemon %d, oracle %d", v, d, want[v])
		}
	}
	fmt.Println("sssp matches BellmanFordRef")

	// Two approx queries: the second must be served from the hopset
	// cache, bit-identical, and both must respect the (1+eps) bound.
	first, err := c.ApproxSSSP(ctx, info.ID, 0, eps)
	if err != nil {
		return fmt.Errorf("approx-sssp #1: %w", err)
	}
	if first.CacheHit {
		return fmt.Errorf("first approx query claims a cache hit")
	}
	second, err := c.ApproxSSSP(ctx, info.ID, 0, eps)
	if err != nil {
		return fmt.Errorf("approx-sssp #2: %w", err)
	}
	if !second.CacheHit {
		return fmt.Errorf("second approx query missed the hopset cache")
	}
	for v := range first.Dist {
		if first.Dist[v] != second.Dist[v] {
			return fmt.Errorf("approx vertex %d: cached %d != full %d", v, second.Dist[v], first.Dist[v])
		}
		exact := want[v]
		d := first.Dist[v]
		if (exact < 0) != (d < 0) {
			return fmt.Errorf("approx vertex %d: reachability disagrees with oracle", v)
		}
		if exact >= 0 && (d < exact || float64(d) > (1+eps)*float64(exact)+1e-9) {
			return fmt.Errorf("approx vertex %d: %d outside [%d, (1+eps)*%d]", v, d, exact, exact)
		}
	}
	fmt.Printf("approx-sssp within (1+%g), cache hit on query 2 (passes %d -> %d)\n",
		eps, first.Passes, second.Passes)

	// Two reachability queries: the first runs the transitive-closure
	// kernel, the second answers from the cached closure with zero
	// rounds; both must agree with the oracle's reachability bits.
	r1, err := c.Reachable(ctx, info.ID, 0)
	if err != nil {
		return fmt.Errorf("reachable #1: %w", err)
	}
	if r1.CacheHit {
		return fmt.Errorf("first reachable query claims a cache hit")
	}
	r2, err := c.Reachable(ctx, info.ID, 0)
	if err != nil {
		return fmt.Errorf("reachable #2: %w", err)
	}
	if !r2.CacheHit || r2.Rounds != 0 {
		return fmt.Errorf("second reachable query not cached (hit=%v rounds=%d)", r2.CacheHit, r2.Rounds)
	}
	for v, r := range r1.Reachable {
		if want := want[v] >= 0; r != want || r2.Reachable[v] != want {
			return fmt.Errorf("reachable vertex %d: daemon %v/%v, oracle %v", v, r, r2.Reachable[v], want)
		}
	}
	fmt.Println("reachability matches oracle, closure cache hit on query 2")

	// The metrics surface must expose the serving series.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range []string{
		"ccserve_engine_rounds_total",
		"ccserve_queries_total{kind=\"sssp\"} 1",
		"ccserve_queries_total{kind=\"approx-sssp\"} 2",
		"ccserve_queries_total{kind=\"reachable\"} 2",
		"ccserve_hopset_cache_hits_total 1",
		"ccserve_sessions_active 1",
		"ccserve_graphs_loaded 1",
		// The latency histograms: one exact sssp observation, and a
		// closing +Inf bucket proving the exposition is complete.
		"ccserve_query_duration_seconds_count{kind=\"sssp\"} 1",
		"ccserve_query_duration_seconds_bucket{kind=\"sssp\",le=\"+Inf\"} 1",
		"ccserve_query_duration_seconds_count{kind=\"approx-sssp\"} 2",
		"ccserve_kernel_wall_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("/metrics missing %q", series)
		}
	}
	fmt.Println("/metrics reports serving series and latency histograms")

	// Clean shutdown: SIGTERM, drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling daemon: %w", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			return fmt.Errorf("daemon exit after SIGTERM: %w", err)
		}
	case <-ctx.Done():
		return fmt.Errorf("daemon did not exit after SIGTERM: %w", ctx.Err())
	}
	fmt.Println("daemon drained and exited 0")
	return nil
}
