// tracestat summarizes the Chrome trace-event timelines written by
// ccbench -trace and ccnode -trace: where did the wall clock go —
// compute, barrier wait, or transport exchange — and which rounds and
// kernel passes were the slowest. It is the terminal-side companion to
// loading the same file in Perfetto, and the CI assertion that a trace
// is well-formed.
//
// Usage:
//
//	tracestat [-top 5] trace.json [more-traces.json ...]
//
// Multiple files merge into one summary: pass the per-rank files of a
// ccnode cluster to see the whole clique's timeline at once (ranks are
// distinguished by the pid each recorder was tagged with, so same-rank
// spans from different files stay attributed).
//
// The share table decomposes total round wall time using the span
// arithmetic of internal/trace: the compute phase's span covers phase
// A from round start to the worker barrier, of which the recorded
// barrier_wait_ns arg is the mean worker idle; transport is the phase
// B exchange span; the remainder (scatter accounting, stats, hooks) is
// "other". Exit status: 0 ok, 1 unreadable/empty trace (a trace with
// no round spans reads as broken, not quiet), 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// event is the slice of a Chrome trace event tracestat consumes. Args
// stays loosely typed because metadata ("ph":"M") events carry string
// args; the numeric args of "X" spans go through num.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// num reads a numeric arg, 0 when absent or non-numeric.
func (e event) num(key string) float64 {
	v, _ := e.Args[key].(float64)
	return v
}

// traceDoc is the Chrome trace-event JSON object format.
type traceDoc struct {
	TraceEvents []event `json:"traceEvents"`
	OtherData   struct {
		Dropped uint64 `json:"dropped"`
	} `json:"otherData"`
}

// slowSpan is one row of a top-k table.
type slowSpan struct {
	rank  int
	index int64   // round or pass ordinal
	name  string  // kernel name for passes
	durUs float64 // microseconds
	arg   uint64  // msgs for rounds, rounds for passes
}

// summary accumulates the merged statistics of all input files.
type summary struct {
	files   int
	spans   int
	dropped uint64
	ranks   map[int]bool

	rounds      int
	roundDurUs  float64
	msgs        uint64
	computeUs   float64 // compute span time, barrier wait included
	barrierUs   float64 // mean worker idle at the phase A barrier
	transportUs float64 // phase B exchange span time

	slowRounds []slowSpan
	slowPasses []slowSpan
}

// addFile folds one parsed trace document into the summary.
func (s *summary) addFile(doc *traceDoc) {
	s.files++
	s.dropped += doc.OtherData.Dropped
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s.spans++
		s.ranks[ev.Pid] = true
		switch {
		case ev.Cat == "round":
			s.rounds++
			s.roundDurUs += ev.Dur
			s.msgs += uint64(ev.num("msgs"))
			s.slowRounds = append(s.slowRounds, slowSpan{
				rank: ev.Pid, index: int64(ev.num("round")),
				durUs: ev.Dur, arg: uint64(ev.num("msgs")),
			})
		case ev.Cat == "phase" && ev.Name == "compute":
			s.computeUs += ev.Dur
			s.barrierUs += ev.num("barrier_wait_ns") / 1e3
		case ev.Cat == "phase" && ev.Name == "exchange":
			s.transportUs += ev.Dur
		case ev.Cat == "pass":
			s.slowPasses = append(s.slowPasses, slowSpan{
				rank: ev.Pid, index: int64(ev.num("pass")), name: ev.Name,
				durUs: ev.Dur, arg: uint64(ev.num("rounds")),
			})
		}
	}
}

// topK returns the k slowest spans, slowest first, ties broken by
// (rank, index) so the output is deterministic.
func topK(spans []slowSpan, k int) []slowSpan {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.durUs != b.durUs {
			return a.durUs > b.durUs
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.index < b.index
	})
	if len(spans) > k {
		spans = spans[:k]
	}
	return spans
}

// pct renders part/total as a percentage, 0 when total is 0.
func pct(part, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * part / total
}

// ms renders microseconds as milliseconds.
func ms(us float64) float64 { return us / 1e3 }

// report writes the human summary.
func (s *summary) report(w io.Writer, k int) {
	fmt.Fprintf(w, "files %d  spans %d  ranks %d  dropped %d\n",
		s.files, s.spans, len(s.ranks), s.dropped)
	fmt.Fprintf(w, "rounds %d  msgs %d  total %.3fms\n", s.rounds, s.msgs, ms(s.roundDurUs))

	compute := s.computeUs - s.barrierUs
	other := s.roundDurUs - s.computeUs - s.transportUs
	fmt.Fprintf(w, "%-14s %8.3fms %6.1f%%\n", "compute", ms(compute), pct(compute, s.roundDurUs))
	fmt.Fprintf(w, "%-14s %8.3fms %6.1f%%\n", "barrier wait", ms(s.barrierUs), pct(s.barrierUs, s.roundDurUs))
	fmt.Fprintf(w, "%-14s %8.3fms %6.1f%%\n", "transport", ms(s.transportUs), pct(s.transportUs, s.roundDurUs))
	fmt.Fprintf(w, "%-14s %8.3fms %6.1f%%\n", "other", ms(other), pct(other, s.roundDurUs))

	fmt.Fprintf(w, "top %d slowest rounds:\n", min(k, len(s.slowRounds)))
	fmt.Fprintf(w, "  %-6s %-8s %12s %12s\n", "rank", "round", "dur", "msgs")
	for _, r := range topK(s.slowRounds, k) {
		fmt.Fprintf(w, "  %-6d %-8d %10.3fms %12d\n", r.rank, r.index, ms(r.durUs), r.arg)
	}
	if len(s.slowPasses) > 0 {
		fmt.Fprintf(w, "top %d slowest passes:\n", min(k, len(s.slowPasses)))
		fmt.Fprintf(w, "  %-6s %-6s %-16s %12s %12s\n", "rank", "pass", "kernel", "dur", "rounds")
		for _, p := range topK(s.slowPasses, k) {
			fmt.Fprintf(w, "  %-6d %-6d %-16s %10.3fms %12d\n", p.rank, p.index, p.name, ms(p.durUs), p.arg)
		}
	}
}

// run is the testable body of main.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 5, "rows in the slowest-rounds and slowest-passes tables")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "tracestat: no trace files given")
		fs.Usage()
		return 2
	}
	if *top < 1 {
		fmt.Fprintf(stderr, "tracestat: -top %d must be >= 1\n", *top)
		return 2
	}

	sum := &summary{ranks: map[int]bool{}}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "tracestat:", err)
			return 1
		}
		var doc traceDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			fmt.Fprintf(stderr, "tracestat: %s: %v\n", path, err)
			return 1
		}
		sum.addFile(&doc)
	}
	if sum.rounds == 0 {
		fmt.Fprintln(stderr, "tracestat: no round spans in input — not an engine trace?")
		return 1
	}
	sum.report(stdout, *top)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
