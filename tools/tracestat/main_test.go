package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/trace"
)

func runTS(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeDoc writes a handcrafted Chrome trace document.
func writeDoc(t *testing.T, name, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// oneRoundDoc is a single round of 1000µs: compute span 600µs with
// 200µs (200000ns) mean barrier wait, exchange span 300µs, leaving
// 100µs "other" — shares 40/20/30/10.
const oneRoundDoc = `{"otherData":{"dropped":3},"traceEvents":[
{"ph":"X","pid":0,"tid":0,"name":"round","cat":"round","ts":0,"dur":1000,"args":{"round":1,"msgs":42}},
{"ph":"X","pid":0,"tid":1,"name":"compute","cat":"phase","ts":0,"dur":600,"args":{"round":1,"barrier_wait_ns":200000}},
{"ph":"X","pid":0,"tid":1,"name":"exchange","cat":"phase","ts":700,"dur":300,"args":{"round":1}},
{"ph":"X","pid":0,"tid":2,"name":"bfs","cat":"pass","ts":0,"dur":1000,"args":{"pass":1,"rounds":1}}
]}`

// TestShareArithmetic pins the decomposition: compute excludes the
// barrier wait, transport is the exchange span, other is the
// remainder.
func TestShareArithmetic(t *testing.T) {
	path := writeDoc(t, "one.json", oneRoundDoc)
	code, stdout, stderr := runTS(t, path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"rounds 1  msgs 42  total 1.000ms",
		"compute           0.400ms   40.0%",
		"barrier wait      0.200ms   20.0%",
		"transport         0.300ms   30.0%",
		"other             0.100ms   10.0%",
		"dropped 3",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}
}

// TestMergeAndTopK merges two rank files and checks the top-k table is
// sorted slowest-first across both ranks.
func TestMergeAndTopK(t *testing.T) {
	r0 := writeDoc(t, "r0.json", `{"traceEvents":[
{"ph":"X","pid":0,"tid":0,"name":"round","cat":"round","ts":0,"dur":100,"args":{"round":1,"msgs":5}},
{"ph":"X","pid":0,"tid":0,"name":"round","cat":"round","ts":200,"dur":900,"args":{"round":2,"msgs":7}}
]}`)
	r1 := writeDoc(t, "r1.json", `{"traceEvents":[
{"ph":"X","pid":1,"tid":0,"name":"round","cat":"round","ts":0,"dur":500,"args":{"round":1,"msgs":6}}
]}`)
	code, stdout, stderr := runTS(t, "-top", "2", r0, r1)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "files 2  spans 3  ranks 2") {
		t.Errorf("merge header wrong:\n%s", stdout)
	}
	if !strings.Contains(stdout, "rounds 3  msgs 18") {
		t.Errorf("merged totals wrong:\n%s", stdout)
	}
	// Slowest first: rank 0 round 2 (900µs), then rank 1 round 1 (500µs).
	i, j := strings.Index(stdout, "0      2             0.900ms"), strings.Index(stdout, "1      1             0.500ms")
	if i < 0 || j < 0 || i > j {
		t.Errorf("top-k order wrong (i=%d, j=%d):\n%s", i, j, stdout)
	}
	if strings.Contains(stdout, "0.100ms") {
		t.Errorf("-top 2 leaked a third row:\n%s", stdout)
	}
}

// TestEndToEndWithRecorder drives a real recorder through the export
// path and summarizes the file — the same pipeline ccbench -trace uses.
func TestEndToEndWithRecorder(t *testing.T) {
	rec := trace.NewRecorder(0)
	rec.SetRank(3)
	rec.Record(trace.Span{Name: trace.NameRound, Cat: trace.CatRound, Lane: trace.LaneRounds, Start: 0, Dur: 2_000_000, Round: 1, Arg: 11})
	rec.Record(trace.Span{Name: trace.NameCompute, Cat: trace.CatPhase, Lane: trace.LanePhases, Start: 0, Dur: 1_500_000, Round: 1, Arg: 500_000})
	rec.Record(trace.Span{Name: trace.NameExchange, Cat: trace.CatPhase, Lane: trace.LanePhases, Start: 1_500_000, Dur: 400_000, Round: 1})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trace.WriteChromeFile(path, rec); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runTS(t, path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"ranks 1",
		"rounds 1  msgs 11  total 2.000ms",
		"compute           1.000ms   50.0%",
		"barrier wait      0.500ms   25.0%",
		"transport         0.400ms   20.0%",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}
}

// TestErrors pins the exit codes: 2 for usage, 1 for unreadable or
// empty traces.
func TestErrors(t *testing.T) {
	if code, _, _ := runTS(t); code != 2 {
		t.Errorf("no files: exit %d, want 2", code)
	}
	if code, _, _ := runTS(t, "-top", "0", writeDoc(t, "x.json", oneRoundDoc)); code != 2 {
		t.Errorf("-top 0: exit %d, want 2", code)
	}
	if code, _, _ := runTS(t, filepath.Join(t.TempDir(), "missing.json")); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code, _, _ := runTS(t, writeDoc(t, "bad.json", "{")); code != 1 {
		t.Errorf("bad JSON: exit %d, want 1", code)
	}
	noRounds := writeDoc(t, "empty.json", `{"traceEvents":[]}`)
	code, _, stderr := runTS(t, noRounds)
	if code != 1 {
		t.Errorf("no round spans: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "no round spans") {
		t.Errorf("missing diagnostic: %q", stderr)
	}
}
