// doccheck is the repository's godoc coverage gate: it parses every
// package under clique/, internal/, server/, and pkg/ (and cmd/, and
// itself) with go/ast and fails
// if a package lacks a package-level doc comment or any exported
// top-level identifier lacks a doc comment. CI runs it in the docs job
// so `go doc` output stays self-explanatory as the codebase grows.
//
// Usage:
//
//	go run ./tools/doccheck [root...]
//
// With no arguments it checks ./clique, ./internal, ./cmd, ./tools,
// ./server, and ./pkg relative to the working directory. Exit status 1 lists every
// violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// violation is one missing-doc finding, with a stable position for
// sorting and clickable file:line output.
type violation struct {
	pos  token.Position
	what string
}

// checkDir parses one directory's non-test Go files and reports
// missing package docs and undocumented exported declarations.
func checkDir(fset *token.FileSet, dir string) ([]violation, error) {
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []violation
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
			out = append(out, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			// Anchor the finding to the lexicographically smallest
			// filename so the report is stable across runs (map
			// iteration order is randomized).
			var anchor *ast.File
			anchorName := ""
			for name, f := range pkg.Files {
				if anchor == nil || name < anchorName {
					anchor, anchorName = f, name
				}
			}
			out = append(out, violation{
				pos:  fset.Position(anchor.Package),
				what: fmt.Sprintf("package %s has no package-level doc comment", pkg.Name),
			})
		}
	}
	return out, nil
}

// checkFile reports exported top-level declarations without docs.
func checkFile(fset *token.FileSet, f *ast.File) []violation {
	var out []violation
	undocumented := func(doc *ast.CommentGroup, pos token.Pos, kind, name string) {
		if doc == nil || strings.TrimSpace(doc.Text()) == "" {
			out = append(out, violation{
				pos:  fset.Position(pos),
				what: fmt.Sprintf("exported %s %s has no doc comment", kind, name),
			})
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue // method on an unexported type
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			undocumented(d.Doc, d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					// A doc comment on either the type spec or the
					// enclosing gen decl counts.
					doc := s.Doc
					if doc == nil {
						doc = d.Doc
					}
					undocumented(doc, s.Pos(), "type", s.Name.Name)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						doc := s.Doc
						if doc == nil {
							doc = d.Doc
						}
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						undocumented(doc, name.Pos(), kind, name.Name)
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"clique", "internal", "cmd", "tools", "server", "pkg"}
	}
	fset := token.NewFileSet()
	var all []violation
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			hasGo, globErr := filepath.Glob(filepath.Join(path, "*.go"))
			if globErr != nil {
				return globErr
			}
			if len(hasGo) == 0 {
				return nil
			}
			vs, err := checkDir(fset, path)
			if err != nil {
				return err
			}
			all = append(all, vs...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
	}
	if len(all) == 0 {
		fmt.Println("doccheck: all exported identifiers documented")
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Line < all[j].pos.Line
	})
	for _, v := range all {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", v.pos.Filename, v.pos.Line, v.what)
	}
	fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", len(all))
	os.Exit(1)
}
