// Package client is the Go client for the ccserve HTTP API. It speaks
// the pkg/api wire types to a running daemon and round-trips every
// endpoint: graph management (LoadGraph/ListGraphs/GetGraph/
// DeleteGraph), the query kinds (SSSP, KSource, ApproxSSSP,
// Reachable), and
// the observability surface (Stats, Metrics, Healthz). Non-2xx
// responses are surfaced as *APIError carrying the daemon's diagnostic.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/paper-repo-growth/doryp20/pkg/api"
)

// APIError is a non-2xx daemon response: the HTTP status code and the
// error text from the api.Error body.
type APIError struct {
	Status  int
	Message string
}

// Error formats the status and daemon diagnostic.
func (e *APIError) Error() string {
	return fmt.Sprintf("ccserve: status %d: %s", e.Status, e.Message)
}

// Client talks to one ccserve daemon. The zero value is not usable;
// construct with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client at New.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). nil keeps http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New returns a Client for the daemon at base, e.g.
// "http://127.0.0.1:7470". A trailing slash on base is tolerated.
func New(base string, opts ...Option) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	c := &Client{base: base, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request and decodes a JSON body into out (skipped when
// out is nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("ccserve: building %s %s: %w", method, path, err)
	}
	if body != nil && method != http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("ccserve: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr api.Error
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("ccserve: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// postJSON marshals req and POSTs it to path, decoding into out.
func (c *Client) postJSON(ctx context.Context, path string, reqBody, out any) error {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("ccserve: encoding request for %s: %w", path, err)
	}
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(buf), out)
}

// LoadGraph uploads an edge-list graph (the internal/graph format:
// optional "p n m" header, "u v [w]" lines) under the given name; an
// empty name lets the daemon assign one. Returns the registered
// graph's info.
func (c *Client) LoadGraph(ctx context.Context, name string, r io.Reader) (api.GraphInfo, error) {
	path := "/graphs"
	if name != "" {
		path += "?name=" + url.QueryEscape(name)
	}
	var info api.GraphInfo
	err := c.do(ctx, http.MethodPost, path, r, &info)
	return info, err
}

// ListGraphs returns every loaded graph, sorted by ID.
func (c *Client) ListGraphs(ctx context.Context) (api.GraphList, error) {
	var list api.GraphList
	err := c.do(ctx, http.MethodGet, "/graphs", nil, &list)
	return list, err
}

// GetGraph returns one loaded graph's info.
func (c *Client) GetGraph(ctx context.Context, id string) (api.GraphInfo, error) {
	var info api.GraphInfo
	err := c.do(ctx, http.MethodGet, "/graphs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// DeleteGraph unloads a graph and closes its warm serving session.
func (c *Client) DeleteGraph(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/graphs/"+url.PathEscape(id), nil, nil)
}

// SSSP runs an exact single-source shortest-path query.
func (c *Client) SSSP(ctx context.Context, id string, source int64) (api.SSSPResponse, error) {
	var resp api.SSSPResponse
	err := c.postJSON(ctx, "/graphs/"+url.PathEscape(id)+"/sssp", api.SSSPRequest{Source: source}, &resp)
	return resp, err
}

// KSource runs an exact k-source query through the batched two-stage
// pipeline; h is the stage-1 hop horizon (0 selects the server
// default).
func (c *Client) KSource(ctx context.Context, id string, sources []int64, h int) (api.KSourceResponse, error) {
	var resp api.KSourceResponse
	err := c.postJSON(ctx, "/graphs/"+url.PathEscape(id)+"/ksource", api.KSourceRequest{Sources: sources, H: h}, &resp)
	return resp, err
}

// ApproxSSSP runs a (1+eps)-approximate single-source query (eps 0
// selects the server default). Concurrent calls at the same (graph,
// eps) may be coalesced server-side into one batched kernel run; the
// response telemetry reports the batch size and hopset-cache outcome.
func (c *Client) ApproxSSSP(ctx context.Context, id string, source int64, eps float64) (api.ApproxSSSPResponse, error) {
	var resp api.ApproxSSSPResponse
	err := c.postJSON(ctx, "/graphs/"+url.PathEscape(id)+"/approx-sssp", api.ApproxSSSPRequest{Source: source, Eps: eps}, &resp)
	return resp, err
}

// Reachable reports which vertices the source can reach. The daemon
// answers the first query on a graph with a transitive-closure kernel
// run and every later query from its cached closure (CacheHit true,
// zero rounds).
func (c *Client) Reachable(ctx context.Context, id string, source int64) (api.ReachableResponse, error) {
	var resp api.ReachableResponse
	err := c.postJSON(ctx, "/graphs/"+url.PathEscape(id)+"/reachable", api.ReachableRequest{Source: source}, &resp)
	return resp, err
}

// Stats returns per-graph session accounting and daemon query totals.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &resp)
	return resp, err
}

// Metrics returns the raw Prometheus text exposition of /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("ccserve: building GET /metrics: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("ccserve: GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("ccserve: reading /metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(body)}
	}
	return string(body), nil
}

// Healthz probes the daemon's liveness endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("ccserve: building GET /healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("ccserve: GET /healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &APIError{Status: resp.StatusCode, Message: resp.Status}
	}
	return nil
}
