// Package api defines the JSON wire types of the ccserve HTTP API —
// the contract between server/ (the daemon's handlers) and pkg/client
// (the Go client library). Distances use the pipeline's Unreached
// sentinel (-1) for vertices the query's source cannot reach.
//
// Endpoints (all request/response bodies are JSON unless noted):
//
//	GET    /healthz                  -> "ok" (text)
//	GET    /metrics                  -> Prometheus text exposition
//	GET    /stats                    -> StatsResponse
//	POST   /graphs?name=ID           <- edge-list text, -> GraphInfo
//	GET    /graphs                   -> GraphList
//	GET    /graphs/{id}              -> GraphInfo
//	DELETE /graphs/{id}              -> 204
//	POST   /graphs/{id}/sssp         <- SSSPRequest, -> SSSPResponse
//	POST   /graphs/{id}/ksource      <- KSourceRequest, -> KSourceResponse
//	POST   /graphs/{id}/approx-sssp  <- ApproxSSSPRequest, -> ApproxSSSPResponse
//	POST   /graphs/{id}/reachable    <- ReachableRequest, -> ReachableResponse
//
// Errors are returned with a 4xx/5xx status and an Error body.
package api

import "github.com/paper-repo-growth/doryp20/clique"

// Unreached is the distance sentinel for unreachable vertices,
// mirroring the pipeline's internal sentinel.
const Unreached = int64(-1)

// GraphInfo describes one loaded graph. Version is the daemon-global
// monotonic load counter — the key of the serving session pool — so
// reloading a graph under the same name yields a distinct version.
type GraphInfo struct {
	ID       string `json:"id"`
	Version  uint64 `json:"version"`
	N        int    `json:"n"`
	Edges    int    `json:"edges"`
	Weighted bool   `json:"weighted"`
}

// GraphList is the GET /graphs response, sorted by ID.
type GraphList struct {
	Graphs []GraphInfo `json:"graphs"`
}

// SSSPRequest asks for exact single-source shortest-path distances.
type SSSPRequest struct {
	Source int64 `json:"source"`
}

// SSSPResponse carries exact distances from Source to every vertex,
// plus the query's cost telemetry: the engine rounds the run took and
// its engine wall time in nanoseconds.
type SSSPResponse struct {
	Source    int64   `json:"source"`
	Dist      []int64 `json:"dist"`
	Rounds    int     `json:"rounds"`
	WallNanos int64   `json:"wall_nanos"`
}

// KSourceRequest asks for exact distances from several sources in one
// batched two-stage pipeline run. H is the per-product hop horizon of
// stage 1; 0 selects the server default (the hopset regime's
// ceil(sqrt(n-1))+1).
type KSourceRequest struct {
	Sources []int64 `json:"sources"`
	H       int     `json:"h,omitempty"`
}

// KSourceResponse carries one distance row per requested source, plus
// the run's rounds/wall cost telemetry.
type KSourceResponse struct {
	Sources   []int64   `json:"sources"`
	H         int       `json:"h"`
	Dist      [][]int64 `json:"dist"`
	Rounds    int       `json:"rounds"`
	WallNanos int64     `json:"wall_nanos"`
}

// ApproxSSSPRequest asks for (1+ε)-approximate single-source
// distances. Eps is the approximation slack; 0 selects the server
// default. Queries with the same (graph, eps) are candidates for
// coalescing into one batched kernel run and share the daemon's
// hopset-augmented adjacency cache.
type ApproxSSSPRequest struct {
	Source int64   `json:"source"`
	Eps    float64 `json:"eps,omitempty"`
}

// ApproxSSSPResponse carries (1+ε)-approximate distances plus the
// serving telemetry the admission layer recorded for this query: the
// size of the coalesced batch it rode in, whether the batch hit the
// hopset cache (zero stage-1 rounds), and the engine passes/rounds the
// batch cost — shared across its BatchSize queries.
type ApproxSSSPResponse struct {
	Source    int64   `json:"source"`
	Eps       float64 `json:"eps"`
	Beta      int     `json:"beta"`
	Dist      []int64 `json:"dist"`
	BatchSize int     `json:"batch_size"`
	CacheHit  bool    `json:"cache_hit"`
	Passes    int     `json:"passes"`
	Rounds    int     `json:"rounds"`
	// WallNanos is the batch's engine wall time, shared across its
	// BatchSize queries (zero when another leader's cached batch
	// answered this query).
	WallNanos int64 `json:"wall_nanos"`
}

// ReachableRequest asks which vertices the source can reach.
type ReachableRequest struct {
	Source int64 `json:"source"`
}

// ReachableResponse carries one reachability bit per vertex. The first
// query on a graph runs the transitive-closure kernel and caches the
// full closure; later queries on the same graph answer from the cache
// (CacheHit true, zero rounds).
type ReachableResponse struct {
	Source    int64  `json:"source"`
	Reachable []bool `json:"reachable"`
	Rounds    int    `json:"rounds"`
	WallNanos int64  `json:"wall_nanos"`
	CacheHit  bool   `json:"cache_hit"`
}

// GraphStats pairs a loaded graph with its serving session's
// cumulative accounting, in the repository's one stable Stats
// encoding (clique.Stats.MarshalJSON).
type GraphStats struct {
	GraphInfo
	Stats clique.Stats `json:"stats"`
}

// StatsResponse is the GET /stats document: per-graph session
// accounting plus daemon-level query totals.
type StatsResponse struct {
	Graphs []GraphStats `json:"graphs"`
	// Queries counts admitted queries by kind ("sssp", "ksource",
	// "approx-sssp", "reachable").
	Queries map[string]uint64 `json:"queries"`
	// KernelRuns counts engine kernel executions; under coalescing it
	// trails the approx-sssp query count.
	KernelRuns uint64 `json:"kernel_runs"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}
