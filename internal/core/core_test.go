package core

import "testing"

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{8, 3}, {9, 4}, {1023, 10}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestDefaultBudget(t *testing.T) {
	for _, n := range []int{2, 64, 256, 1024} {
		b := DefaultBudget(n)
		if b.MsgsPerLink() != 1 {
			t.Errorf("DefaultBudget(%d).MsgsPerLink() = %d, want 1", n, b.MsgsPerLink())
		}
		if b.BitsPerLink != WordBits {
			t.Errorf("DefaultBudget(%d).BitsPerLink = %d, want %d", n, b.BitsPerLink, WordBits)
		}
	}
}

func TestBudgetMsgsPerLink(t *testing.T) {
	if got := (Budget{BitsPerLink: 256, MsgBits: 64}).MsgsPerLink(); got != 4 {
		t.Errorf("256/64 budget: got %d msgs per link, want 4", got)
	}
	// A degenerate budget still admits one message rather than zero.
	if got := (Budget{BitsPerLink: 8, MsgBits: 64}).MsgsPerLink(); got != 1 {
		t.Errorf("sub-message budget: got %d, want 1", got)
	}
	if got := (Budget{}).MsgsPerLink(); got != 1 {
		t.Errorf("zero budget: got %d, want 1", got)
	}
}
