package core
