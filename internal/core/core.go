// Package core defines the shared model vocabulary for the Congested
// Clique simulator that reproduces Dory & Parter (PODC 2020): node
// identifiers, round counters, and the per-link bandwidth budget
// B = O(log n) bits that the model imposes on every directed link in
// every synchronous round.
//
// The Congested Clique is a fully connected synchronous message-passing
// network of n nodes. In each round every ordered pair of nodes may
// exchange at most B = O(log n) bits. All higher layers (the round
// engine in internal/engine, the matrix subsystem in internal/matmul,
// and the algorithms in internal/algo) speak in terms of these types so
// that the bandwidth accounting is uniform.
//
// The package also defines the Semiring vocabulary (semiring.go): the
// (min,+) distance product and the boolean (or,and) reachability
// product that parameterize the sparse matrix machinery of the
// Dory-Parter pipeline.
package core

import "math/bits"

// NodeID identifies a node in the clique. IDs are dense in [0, n).
type NodeID int32

// Round is a zero-based synchronous round counter.
type Round int32

// WordBits is the payload width of a single simulator message. A 64-bit
// machine word is Theta(log n) bits for every feasible n (n <= 2^64),
// so "one word per link per round" is the standard concrete reading of
// the O(log n)-bits-per-link Congested Clique budget.
const WordBits = 64

// Budget describes the per-link, per-round bandwidth allowance of the
// model. BitsPerLink is B; MsgBits is the number of bits charged for a
// single message (payload word plus addressing is folded into the same
// Theta(log n) word in this accounting).
type Budget struct {
	// BitsPerLink is the total number of bits a single directed link
	// may carry in one round (the model's B).
	BitsPerLink int
	// MsgBits is the number of bits charged per message.
	MsgBits int
}

// DefaultBudget returns the canonical Congested Clique budget for an
// n-node instance: one Theta(log n)-bit word per directed link per
// round, i.e. a link capacity of exactly one message.
func DefaultBudget(n int) Budget {
	_ = n // the 64-bit word dominates ceil(log2 n) for all feasible n
	return Budget{BitsPerLink: WordBits, MsgBits: WordBits}
}

// MsgsPerLink converts the bit budget into a whole-message link
// capacity. It is always at least 1: a budget too small to carry one
// message would make the model vacuous, so we round up rather than
// silently forbidding all communication.
func (b Budget) MsgsPerLink() int {
	if b.MsgBits <= 0 || b.BitsPerLink <= 0 {
		return 1
	}
	m := b.BitsPerLink / b.MsgBits
	if m < 1 {
		m = 1
	}
	return m
}

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1. It is
// the bit length of n-1, which is the number of bits needed to address
// one of n distinct values — the unit in which Congested Clique
// bandwidth budgets are stated. Algorithm layers that pack node IDs
// into message words (e.g. the Dory-Parter sparse matrix routing
// stages) size their bit fields with it.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
