package core

import (
	"fmt"
	"math"
)

// InfWeight is the +infinity sentinel for path weights: the additive
// identity ("no entry") of the (min,+) semiring. It is set to
// math.MaxInt64/4 rather than MaxInt64 so that the sum of two finite
// weights, or Inf plus a finite weight computed before saturation is
// applied, can never overflow int64.
const InfWeight int64 = math.MaxInt64 / 4

// InfWidth is the +infinity sentinel for bottleneck widths: the
// multiplicative identity of the (max,min) semiring (the width of the
// empty path is unbounded). Unlike InfWeight it must fit in the wire
// value field of a packed (column, value) word — idxBits is at most 23
// for any graph this package targets, leaving 41 value bits — so it is
// 2^40 rather than MaxInt64/4. Edge widths must lie in [1, InfWidth).
const InfWidth int64 = 1 << 40

// Semiring is a commutative semiring over int64 entries, the algebraic
// parameter of the sparse matrix subsystem (internal/matmul). A matrix
// product over (Add, Mul) is C[i][j] = Add_k Mul(A[i][k], B[k][j]);
// instantiating Add=min, Mul=+ yields the distance product at the heart
// of the Dory-Parter shortest-path pipeline, and Add=or, Mul=and yields
// boolean reachability.
//
// Zero is the additive identity and doubles as the "absent entry"
// sentinel: sparse matrices never store Zero entries, and Add(Zero, x)
// must equal x. One is the multiplicative identity, used for the
// diagonal of reflexive (identity-including) matrices.
type Semiring struct {
	// Name identifies the semiring in reports and error messages.
	Name string
	// Zero is the additive identity / absent-entry sentinel.
	Zero int64
	// One is the multiplicative identity.
	One int64

	add func(a, b int64) int64
	mul func(a, b int64) int64
	// edgeValue maps one graph arc to its matrix entry; see EdgeValue.
	edgeValue func(w int64, weighted bool) int64
}

// EdgeValue returns the matrix entry that represents one graph arc in
// this semiring: over (min,+) the arc weight, or 1 per hop when the
// graph is unweighted (One = 0 would make every edge free); over the
// boolean semiring always One ("true"), ignoring weights entirely.
// Adjacency-matrix constructors (matmul.FromGraph) consult this so the
// per-semiring semantics live with the semiring, not in string
// comparisons at the call site.
func (s Semiring) EdgeValue(w int64, weighted bool) int64 { return s.edgeValue(w, weighted) }

// Add applies the semiring's additive operation (min for MinPlus,
// logical-or for BoolOrAnd). It is commutative and associative with
// identity Zero, so accumulation order never affects results.
func (s Semiring) Add(a, b int64) int64 { return s.add(a, b) }

// Mul applies the semiring's multiplicative operation (+ for MinPlus,
// logical-and for BoolOrAnd). Mul(x, Zero) = Zero for both provided
// semirings, which is what lets sparse products skip absent entries.
func (s Semiring) Mul(a, b int64) int64 { return s.mul(a, b) }

// MinPlus returns the tropical (min,+) semiring over non-negative path
// weights: Add is min, Mul is saturating addition, Zero is InfWeight
// (an absent entry means "no path"), One is 0 (the empty path). Matrix
// powers over MinPlus compute hop-limited shortest-path distances,
// which is the algebraic engine of Dory-Parter's APSP and hopset
// constructions.
func MinPlus() Semiring {
	return Semiring{
		Name: "minplus",
		Zero: InfWeight,
		One:  0,
		add: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		mul: func(a, b int64) int64 {
			if a >= InfWeight || b >= InfWeight {
				return InfWeight
			}
			if s := a + b; s < InfWeight {
				return s
			}
			return InfWeight
		},
		edgeValue: func(w int64, weighted bool) int64 {
			if weighted {
				return w
			}
			return 1
		},
	}
}

// SemiringByName resolves a semiring from its Name field — the inverse
// direction serialized matrix state needs: checkpoints store only the
// name (the function fields cannot be serialized) and rebuild the
// semiring on restore.
func SemiringByName(name string) (Semiring, error) {
	switch name {
	case "minplus":
		return MinPlus(), nil
	case "booland":
		return BoolOrAnd(), nil
	case "maxmin":
		return MaxMin(), nil
	}
	return Semiring{}, fmt.Errorf("core: unknown semiring %q (known: minplus, booland, maxmin)", name)
}

// AllSemirings returns every semiring this package defines, one
// instance each. Generic property tests (semiring axioms, serialization
// round-trips) iterate this list so a newly added semiring is covered
// by construction; keep it in sync with SemiringByName.
func AllSemirings() []Semiring {
	return []Semiring{MinPlus(), BoolOrAnd(), MaxMin()}
}

// MaxMin returns the bottleneck (max,min) semiring over widths in
// [0, InfWidth]: Add is max, Mul is min, Zero is 0 (an absent entry
// means "no path", width zero), One is InfWidth (the empty path has
// unbounded width). Matrix powers over MaxMin compute hop-limited
// widest-path (maximum-bottleneck) values: the product entry
// max_k min(A[i][k], B[k][j]) is the best bottleneck over one more hop.
// Because Zero doubles as the absent-entry sentinel, edge widths must
// be strictly positive; adjacency constructors for this semiring
// enforce w >= 1.
func MaxMin() Semiring {
	return Semiring{
		Name: "maxmin",
		Zero: 0,
		One:  InfWidth,
		add: func(a, b int64) int64 {
			if a > b {
				return a
			}
			return b
		},
		mul: func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		},
		edgeValue: func(w int64, weighted bool) int64 {
			if weighted {
				return w
			}
			return 1
		},
	}
}

// BoolOrAnd returns the boolean (or,and) semiring over {0, 1}: Zero is
// 0 (false), One is 1 (true). Matrix powers over BoolOrAnd compute
// hop-limited reachability, the unweighted shadow of the distance
// product (useful for spanner and connectivity subroutines).
func BoolOrAnd() Semiring {
	return Semiring{
		Name:      "booland",
		Zero:      0,
		One:       1,
		add:       func(a, b int64) int64 { return a | b },
		mul:       func(a, b int64) int64 { return a & b },
		edgeValue: func(int64, bool) int64 { return 1 },
	}
}
