package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestSigBitsFor pins the eps → significant-bits mapping and its
// guarantee direction.
func TestSigBitsFor(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{0, 0}, {-1, 0}, {math.NaN(), 0},
		{2, 1}, {1, 1}, {0.5, 2}, {0.25, 3}, {0.1, 5}, {0.01, 8},
	}
	for _, c := range cases {
		if got := SigBitsFor(c.eps); got != c.want {
			t.Errorf("SigBitsFor(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
}

// TestRoundUpSigProperties: for random weights and epsilons, rounding
// never decreases a weight, inflates it by at most (1+eps), yields a
// value with at most sigBits significant bits, and is idempotent.
func TestRoundUpSigProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, eps := range []float64{1, 0.5, 0.1, 0.01} {
		s := SigBitsFor(eps)
		for i := 0; i < 2000; i++ {
			w := int64(1 + rng.Intn(1<<30))
			r := RoundUpSig(w, s)
			if r < w {
				t.Fatalf("eps=%v: RoundUpSig(%d) = %d decreased", eps, w, r)
			}
			if float64(r) > (1+eps)*float64(w) {
				t.Fatalf("eps=%v: RoundUpSig(%d) = %d exceeds (1+eps) bound", eps, w, r)
			}
			if r2 := RoundUpSig(r, s); r2 != r {
				t.Fatalf("eps=%v: not idempotent: %d -> %d -> %d", eps, w, r, r2)
			}
			// At most s significant bits: the trailing zeros plus s must
			// cover the bit length.
			if v := uint64(r); v>>uint(trailingZeros(v))>>uint(s) != 0 {
				t.Fatalf("eps=%v: RoundUpSig(%d) = %d uses more than %d significant bits", eps, w, r, s)
			}
		}
	}
}

// trailingZeros is a tiny local helper to keep the test dependency-free.
func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 && v != 0 {
		v >>= 1
		n++
	}
	return n
}

// TestRoundUpSigEdges: sentinels and degenerate inputs pass through
// unchanged, and finite weights can never round into InfWeight.
func TestRoundUpSigEdges(t *testing.T) {
	if got := RoundUpSig(0, 2); got != 0 {
		t.Errorf("RoundUpSig(0) = %d", got)
	}
	if got := RoundUpSig(-5, 2); got != -5 {
		t.Errorf("RoundUpSig(-5) = %d", got)
	}
	if got := RoundUpSig(InfWeight, 2); got != InfWeight {
		t.Errorf("RoundUpSig(Inf) = %d", got)
	}
	if got := RoundUpSig(12345, 0); got != 12345 {
		t.Errorf("sigBits=0 must be exact, got %d", got)
	}
	if got := RoundUpSig(InfWeight-1, 1); got >= InfWeight {
		t.Errorf("RoundUpSig(Inf-1) = %d rounded into the sentinel", got)
	}
	if got := RoundUpSig(3, 2); got != 3 {
		t.Errorf("RoundUpSig(3, 2) = %d, want 3 (already fits)", got)
	}
	if got := RoundUpSig(5, 2); got != 6 {
		t.Errorf("RoundUpSig(5, 2) = %d, want 6", got)
	}
}
