package core

import (
	"math"
	"math/bits"
)

// This file holds the weight rounding/scaling helpers behind the
// (1+ε) approximation guarantee of the Dory-Parter pipeline. The
// paper compresses distance values so they fit in o(log n)-bit message
// fields; the concrete mechanism is rounding weights up to a fixed
// number of significant bits — a floating-point-style grid. Rounding
// *up* preserves the lower bound (no path ever gets cheaper), and
// keeping s significant bits bounds the inflation of any single weight
// by a factor 1 + 2^(1-s); since path weights are sums of edge
// weights, every path — and therefore every shortest-path distance —
// inflates by at most that same factor.

// SigBitsFor returns the number of significant bits s such that
// rounding every weight up to s significant bits (RoundUpSig) inflates
// each weight, and hence each path weight, by at most a (1+eps)
// factor: s = 1 + ceil(log2(1/eps)), clamped to at least 1. eps = 0.5
// gives 2 bits, eps = 0.1 gives 5. eps <= 0 returns 0, the "no
// rounding, exact" sentinel accepted by RoundUpSig.
func SigBitsFor(eps float64) int {
	if eps <= 0 || math.IsNaN(eps) {
		return 0
	}
	s := 1 + int(math.Ceil(math.Log2(1/eps)))
	if s < 1 {
		s = 1
	}
	return s
}

// RoundUpSig rounds w up to the nearest value with at most sigBits
// significant bits: for w of bit length L > sigBits, the low
// L - sigBits bits are rounded away upward, so w <= result <=
// (1 + 2^(1-sigBits)) * w. Weights already fitting sigBits bits, non-
// positive weights, and the InfWeight sentinel are returned unchanged;
// sigBits <= 0 means "no rounding" and also returns w unchanged. The
// result is capped below InfWeight so a finite weight can never round
// into the "no path" sentinel.
func RoundUpSig(w int64, sigBits int) int64 {
	if sigBits <= 0 || w <= 0 {
		return w
	}
	if w >= InfWeight {
		return InfWeight
	}
	l := bits.Len64(uint64(w))
	if l <= sigBits {
		return w
	}
	shift := uint(l - sigBits)
	r := (w + (1 << shift) - 1) >> shift << shift
	if r >= InfWeight {
		// A weight this close to the sentinel cannot be represented on
		// the rounded grid without colliding with "no path"; keep it
		// finite. (Real inputs are orders of magnitude below InfWeight.)
		r = InfWeight - 1
	}
	return r
}
