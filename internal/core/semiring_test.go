package core

import (
	"math"
	"testing"
)

func TestMinPlusIdentities(t *testing.T) {
	sr := MinPlus()
	vals := []int64{0, 1, 7, 1 << 40, InfWeight}
	for _, x := range vals {
		if got := sr.Add(sr.Zero, x); got != x {
			t.Errorf("Add(Zero, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Add(x, sr.Zero); got != x {
			t.Errorf("Add(%d, Zero) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(sr.One, x); got != x {
			t.Errorf("Mul(One, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(x, sr.Zero); got != sr.Zero {
			t.Errorf("Mul(%d, Zero) = %d, want Zero", x, got)
		}
	}
	if got := sr.Add(3, 5); got != 3 {
		t.Errorf("Add(3,5) = %d, want 3", got)
	}
	if got := sr.Mul(3, 5); got != 8 {
		t.Errorf("Mul(3,5) = %d, want 8", got)
	}
}

func TestMinPlusSaturates(t *testing.T) {
	sr := MinPlus()
	big := InfWeight - 1
	if got := sr.Mul(big, big); got != InfWeight {
		t.Errorf("Mul(big, big) = %d, want InfWeight", got)
	}
	if got := sr.Mul(InfWeight, 1); got != InfWeight {
		t.Errorf("Mul(Inf, 1) = %d, want InfWeight", got)
	}
	// The sentinel must leave headroom so a pre-saturation sum of two
	// "infinite" operands cannot wrap around int64.
	if InfWeight > math.MaxInt64/2 {
		t.Fatalf("InfWeight %d leaves no overflow headroom", InfWeight)
	}
}

func TestMaxMinIdentities(t *testing.T) {
	sr := MaxMin()
	if sr.Zero != 0 || sr.One != InfWidth {
		t.Fatalf("MaxMin identities = (%d,%d), want (0,%d)", sr.Zero, sr.One, InfWidth)
	}
	vals := []int64{0, 1, 7, 1 << 20, InfWidth}
	for _, x := range vals {
		if got := sr.Add(sr.Zero, x); got != x {
			t.Errorf("Add(Zero, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(sr.One, x); got != x {
			t.Errorf("Mul(One, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(x, sr.Zero); got != sr.Zero {
			t.Errorf("Mul(%d, Zero) = %d, want Zero", x, got)
		}
	}
	if got := sr.Add(3, 5); got != 5 {
		t.Errorf("Add(3,5) = %d, want 5", got)
	}
	if got := sr.Mul(3, 5); got != 3 {
		t.Errorf("Mul(3,5) = %d, want 3", got)
	}
	if got := sr.EdgeValue(9, true); got != 9 {
		t.Errorf("EdgeValue(9, weighted) = %d, want 9", got)
	}
	if got := sr.EdgeValue(9, false); got != 1 {
		t.Errorf("EdgeValue(9, unweighted) = %d, want 1", got)
	}
}

// semiringSamples returns a representative value set for each semiring,
// drawn from its valid domain (non-negative finite weights for minplus,
// {0,1} for booland, [0, InfWidth] for maxmin). The axiom test below
// checks every law over all triples from this set.
func semiringSamples(name string) []int64 {
	switch name {
	case "minplus":
		return []int64{0, 1, 2, 7, 1 << 40, InfWeight - 1, InfWeight}
	case "booland":
		return []int64{0, 1}
	case "maxmin":
		return []int64{0, 1, 2, 7, 1 << 20, InfWidth - 1, InfWidth}
	}
	return nil
}

// TestSemiringAxioms property-tests the semiring laws — associativity
// and commutativity of Add, identity/annihilator behavior of Zero,
// associativity and identity of Mul, and distributivity of Mul over
// Add — over sampled values for every registered semiring, so any
// future instance is checked by construction the moment it joins
// AllSemirings.
func TestSemiringAxioms(t *testing.T) {
	for _, sr := range AllSemirings() {
		sr := sr
		t.Run(sr.Name, func(t *testing.T) {
			vals := semiringSamples(sr.Name)
			if len(vals) == 0 {
				t.Fatalf("no sample domain for semiring %q: extend semiringSamples", sr.Name)
			}
			if _, err := SemiringByName(sr.Name); err != nil {
				t.Fatalf("SemiringByName(%q): %v", sr.Name, err)
			}
			for _, a := range vals {
				if got := sr.Add(sr.Zero, a); got != a {
					t.Errorf("Add(Zero, %d) = %d, want %d", a, got, a)
				}
				if got := sr.Mul(sr.One, a); got != a {
					t.Errorf("Mul(One, %d) = %d, want %d", a, got, a)
				}
				if got := sr.Mul(a, sr.One); got != a {
					t.Errorf("Mul(%d, One) = %d, want %d", a, got, a)
				}
				if got := sr.Mul(sr.Zero, a); got != sr.Zero {
					t.Errorf("Mul(Zero, %d) = %d, want Zero", a, got)
				}
				if got := sr.Mul(a, sr.Zero); got != sr.Zero {
					t.Errorf("Mul(%d, Zero) = %d, want Zero", a, got)
				}
				for _, b := range vals {
					if sr.Add(a, b) != sr.Add(b, a) {
						t.Errorf("Add not commutative on (%d,%d)", a, b)
					}
					for _, c := range vals {
						if sr.Add(sr.Add(a, b), c) != sr.Add(a, sr.Add(b, c)) {
							t.Errorf("Add not associative on (%d,%d,%d)", a, b, c)
						}
						if sr.Mul(sr.Mul(a, b), c) != sr.Mul(a, sr.Mul(b, c)) {
							t.Errorf("Mul not associative on (%d,%d,%d)", a, b, c)
						}
						left := sr.Mul(a, sr.Add(b, c))
						right := sr.Add(sr.Mul(a, b), sr.Mul(a, c))
						if left != right {
							t.Errorf("left distributivity fails on (%d,%d,%d): %d != %d", a, b, c, left, right)
						}
						left = sr.Mul(sr.Add(b, c), a)
						right = sr.Add(sr.Mul(b, a), sr.Mul(c, a))
						if left != right {
							t.Errorf("right distributivity fails on (%d,%d,%d): %d != %d", a, b, c, left, right)
						}
					}
				}
			}
		})
	}
}

func TestBoolOrAnd(t *testing.T) {
	sr := BoolOrAnd()
	cases := []struct{ a, b, or, and int64 }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := sr.Add(c.a, c.b); got != c.or {
			t.Errorf("Add(%d,%d) = %d, want %d", c.a, c.b, got, c.or)
		}
		if got := sr.Mul(c.a, c.b); got != c.and {
			t.Errorf("Mul(%d,%d) = %d, want %d", c.a, c.b, got, c.and)
		}
	}
	if sr.Zero != 0 || sr.One != 1 {
		t.Errorf("BoolOrAnd identities = (%d,%d), want (0,1)", sr.Zero, sr.One)
	}
}
