package core

import (
	"math"
	"testing"
)

func TestMinPlusIdentities(t *testing.T) {
	sr := MinPlus()
	vals := []int64{0, 1, 7, 1 << 40, InfWeight}
	for _, x := range vals {
		if got := sr.Add(sr.Zero, x); got != x {
			t.Errorf("Add(Zero, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Add(x, sr.Zero); got != x {
			t.Errorf("Add(%d, Zero) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(sr.One, x); got != x {
			t.Errorf("Mul(One, %d) = %d, want %d", x, got, x)
		}
		if got := sr.Mul(x, sr.Zero); got != sr.Zero {
			t.Errorf("Mul(%d, Zero) = %d, want Zero", x, got)
		}
	}
	if got := sr.Add(3, 5); got != 3 {
		t.Errorf("Add(3,5) = %d, want 3", got)
	}
	if got := sr.Mul(3, 5); got != 8 {
		t.Errorf("Mul(3,5) = %d, want 8", got)
	}
}

func TestMinPlusSaturates(t *testing.T) {
	sr := MinPlus()
	big := InfWeight - 1
	if got := sr.Mul(big, big); got != InfWeight {
		t.Errorf("Mul(big, big) = %d, want InfWeight", got)
	}
	if got := sr.Mul(InfWeight, 1); got != InfWeight {
		t.Errorf("Mul(Inf, 1) = %d, want InfWeight", got)
	}
	// The sentinel must leave headroom so a pre-saturation sum of two
	// "infinite" operands cannot wrap around int64.
	if InfWeight > math.MaxInt64/2 {
		t.Fatalf("InfWeight %d leaves no overflow headroom", InfWeight)
	}
}

func TestBoolOrAnd(t *testing.T) {
	sr := BoolOrAnd()
	cases := []struct{ a, b, or, and int64 }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := sr.Add(c.a, c.b); got != c.or {
			t.Errorf("Add(%d,%d) = %d, want %d", c.a, c.b, got, c.or)
		}
		if got := sr.Mul(c.a, c.b); got != c.and {
			t.Errorf("Mul(%d,%d) = %d, want %d", c.a, c.b, got, c.and)
		}
	}
	if sr.Zero != 0 || sr.One != 1 {
		t.Errorf("BoolOrAnd identities = (%d,%d), want (0,1)", sr.Zero, sr.One)
	}
}
