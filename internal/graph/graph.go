// Package graph provides an immutable CSR (compressed sparse row)
// representation of undirected graphs together with deterministic
// generators used by the Congested Clique engine and its benchmarks.
//
// A CSR stores, for each vertex v, a contiguous sorted slice of
// neighbor IDs (and optionally per-arc weights). Undirected edges are
// stored as two directed arcs, so len(Targets) == 2|E|. The layout is
// cache-friendly for the scan-all-neighbors access pattern of BFS and
// Bellman-Ford and is never mutated after construction, which makes it
// safe to share across the engine's worker goroutines without locks.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// CSR is an immutable compressed-sparse-row undirected graph.
type CSR struct {
	// N is the number of vertices; IDs are dense in [0, N).
	N int
	// Offsets has length N+1; the arcs of vertex v occupy
	// Targets[Offsets[v]:Offsets[v+1]], sorted by target ID.
	Offsets []int32
	// Targets holds the arc heads. len(Targets) == 2|E|.
	Targets []core.NodeID
	// Weights is nil for unweighted graphs; otherwise it parallels
	// Targets and is symmetric: weight(u,v) == weight(v,u).
	Weights []int64
}

// NumArcs returns the number of directed arcs (2|E| for an undirected
// graph).
func (g *CSR) NumArcs() int { return len(g.Targets) }

// NumEdges returns the number of undirected edges |E|.
func (g *CSR) NumEdges() int { return len(g.Targets) / 2 }

// Degree returns the number of neighbors of v.
func (g *CSR) Degree(v core.NodeID) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the sorted neighbor slice of v. The returned slice
// aliases the CSR's internal storage and must not be modified.
func (g *CSR) Neighbors(v core.NodeID) []core.NodeID {
	return g.Targets[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v).
// It panics if the graph is unweighted.
func (g *CSR) NeighborWeights(v core.NodeID) []int64 {
	if g.Weights == nil {
		panic("graph: NeighborWeights on unweighted CSR")
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries arc weights.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// Row is the matrix view of vertex v: the column indices (sorted
// neighbor IDs) and values (arc weights, or nil when unweighted) of row
// v of the graph's adjacency matrix. Both slices alias the CSR's
// internal storage and must not be modified. internal/matmul builds its
// semiring matrices from this view without copying the index structure.
func (g *CSR) Row(v core.NodeID) (cols []core.NodeID, vals []int64) {
	lo, hi := g.Offsets[v], g.Offsets[v+1]
	if g.Weights == nil {
		return g.Targets[lo:hi], nil
	}
	return g.Targets[lo:hi], g.Weights[lo:hi]
}

// Validate checks the CSR structural invariants. It is intended for
// tests and generator debugging, not hot paths.
func (g *CSR) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph: len(Offsets)=%d, want N+1=%d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != len(g.Targets) {
		return fmt.Errorf("graph: offset endpoints [%d,%d] do not span %d targets",
			g.Offsets[0], g.Offsets[g.N], len(g.Targets))
	}
	if g.Weights != nil && len(g.Weights) != len(g.Targets) {
		return fmt.Errorf("graph: len(Weights)=%d, want %d", len(g.Weights), len(g.Targets))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nbrs := g.Neighbors(core.NodeID(v))
		for i, u := range nbrs {
			if u < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: vertex %d has a self-loop", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: vertex %d neighbors not strictly sorted", v)
			}
		}
	}
	return nil
}

// fromUndirectedEdges packs a list of undirected edges {u,v}, u != v,
// no duplicates, into a CSR with both arc directions, neighbors sorted.
func fromUndirectedEdges(n int, edges [][2]core.NodeID) *CSR {
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	targets := make([]core.NodeID, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		targets[cursor[u]] = v
		cursor[u]++
		targets[cursor[v]] = u
		cursor[v]++
	}
	g := &CSR{N: n, Offsets: offsets, Targets: targets}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(core.NodeID(v))
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
	return g
}

// RandomGNP generates a deterministic Erdos-Renyi G(n,p) graph: each of
// the n*(n-1)/2 unordered vertex pairs is an edge independently with
// probability p, drawn from a PRNG seeded with seed. The same
// (n, p, seed) triple always yields the identical graph.
func RandomGNP(n int, p float64, seed int64) *CSR {
	if n < 0 {
		panic("graph: negative n")
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]core.NodeID
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]core.NodeID{core.NodeID(u), core.NodeID(v)})
			}
		}
	}
	return fromUndirectedEdges(n, edges)
}

// RandomGNPWeighted generates a deterministic Erdos-Renyi G(n,p) graph
// carrying symmetric integer weights drawn uniformly from [1, maxW] —
// the canonical random weighted instance for property-testing the
// distance pipelines on non-unit weights. The structure is exactly
// RandomGNP(n, p, seed); the weights are derived from seed as in
// WithUniformRandomWeights, so the same (n, p, maxW, seed) quadruple
// always yields the identical weighted graph.
func RandomGNPWeighted(n int, p float64, maxW int64, seed int64) *CSR {
	// Offset the weight seed so edge structure and weights are drawn
	// from decorrelated streams while staying a pure function of seed.
	return RandomGNP(n, p, seed).WithUniformRandomWeights(seed+0x9e37, maxW)
}

// Path generates the path graph 0-1-2-...-(n-1).
func Path(n int) *CSR {
	edges := make([][2]core.NodeID, 0, max(0, n-1))
	for v := 0; v+1 < n; v++ {
		edges = append(edges, [2]core.NodeID{core.NodeID(v), core.NodeID(v + 1)})
	}
	return fromUndirectedEdges(n, edges)
}

// Clique generates the complete graph K_n.
func Clique(n int) *CSR {
	edges := make([][2]core.NodeID, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]core.NodeID{core.NodeID(u), core.NodeID(v)})
		}
	}
	return fromUndirectedEdges(n, edges)
}

// Grid generates the rows x cols grid graph with vertices numbered in
// row-major order.
func Grid(rows, cols int) *CSR {
	n := rows * cols
	var edges [][2]core.NodeID
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := core.NodeID(r*cols + c)
			if c+1 < cols {
				edges = append(edges, [2]core.NodeID{v, v + 1})
			}
			if r+1 < rows {
				edges = append(edges, [2]core.NodeID{v, v + core.NodeID(cols)})
			}
		}
	}
	return fromUndirectedEdges(n, edges)
}

// WithUnitWeights returns g itself when it already carries weights, or
// a view of g (sharing the index structure) in which every arc weighs
// 1 — the canonical embedding of an unweighted graph into the weighted
// algorithms, under which shortest weighted paths coincide with BFS hop
// distances. Registry-constructed kernels use it so that every
// registered algorithm is runnable on any input graph.
func (g *CSR) WithUnitWeights() *CSR {
	if g.Weights != nil {
		return g
	}
	w := make([]int64, len(g.Targets))
	for i := range w {
		w[i] = 1
	}
	return &CSR{N: g.N, Offsets: g.Offsets, Targets: g.Targets, Weights: w}
}

// WithUniformRandomWeights returns a copy of g carrying deterministic
// symmetric integer weights in [1, maxW]. The weight of edge {u,v} is a
// pure function of (seed, min(u,v), max(u,v)), so both arc directions
// agree and regeneration is reproducible without storing edge order.
func (g *CSR) WithUniformRandomWeights(seed int64, maxW int64) *CSR {
	if maxW < 1 {
		panic("graph: maxW must be >= 1")
	}
	w := make([]int64, len(g.Targets))
	for v := 0; v < g.N; v++ {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for i := lo; i < hi; i++ {
			u := g.Targets[i]
			a, b := core.NodeID(v), u
			if a > b {
				a, b = b, a
			}
			w[i] = 1 + int64(splitmix64(uint64(seed)^(uint64(a)<<32|uint64(uint32(b))))%uint64(maxW))
		}
	}
	return &CSR{N: g.N, Offsets: g.Offsets, Targets: g.Targets, Weights: w}
}

// splitmix64 is the finalizer of the SplitMix64 PRNG, used as a cheap
// deterministic hash for per-edge weight derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
