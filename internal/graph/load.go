package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// LoadEdgeList parses an undirected graph from the repository's
// edge-list / DIMACS-lite text format — the wire format of ccserve's
// POST /graphs endpoint and the loader for real datasets (ROADMAP
// item 3). The format, line by line:
//
//   - Blank lines are ignored. Lines whose first field is "c" or whose
//     first non-space byte is '#' are comments.
//   - An optional header "p <n> [<m>]" (at most one, before any edge)
//     declares the vertex count n — required for graphs with isolated
//     vertices — and optionally the undirected edge count m, which is
//     validated against the edges actually parsed.
//   - Every other line is one undirected edge: "u v" (unweighted) or
//     "u v w" (weighted), with 0-based integer endpoints and a
//     non-negative integer weight. All edges must agree on
//     weightedness.
//
// Self-loops, duplicate edges (in either orientation), negative
// weights, out-of-range endpoints, and malformed tokens are rejected
// with errors naming the offending line. Without a header, the vertex
// count is one past the largest endpoint; an input with neither header
// nor edges is rejected rather than guessed at.
func LoadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)

	var (
		edges      [][2]core.NodeID
		weights    []int64
		seen       = map[[2]core.NodeID]bool{}
		n          = -1 // declared vertex count, -1 when no header
		declaredM  = -1
		haveHeader bool
		weighted   bool
		line       int
	)
	for sc.Scan() {
		line++
		fields, comment := splitEdgeLine(sc.Text())
		if comment || len(fields) == 0 {
			continue
		}
		if fields[0] == "p" {
			if haveHeader {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(edges) > 0 {
				return nil, fmt.Errorf("graph: line %d: header after edges", line)
			}
			hn, hm, err := parseHeader(fields)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
			n, declaredM, haveHeader = hn, hm, true
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\" or \"u v w\", got %d fields", line, len(fields))
		}
		u, err := parseEndpoint(fields[0], n)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := parseEndpoint(fields[1], n)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop at vertex %d", line, u)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]core.NodeID{u, v}] {
			return nil, fmt.Errorf("graph: line %d: duplicate edge {%d,%d}", line, u, v)
		}
		seen[[2]core.NodeID{u, v}] = true
		if len(edges) == 0 {
			weighted = len(fields) == 3
		} else if weighted != (len(fields) == 3) {
			return nil, fmt.Errorf("graph: line %d: mixed weighted and unweighted edges", line)
		}
		if weighted {
			w, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: invalid weight %q", line, fields[2])
			}
			if w < 0 {
				return nil, fmt.Errorf("graph: line %d: negative weight %d", line, w)
			}
			weights = append(weights, w)
		}
		edges = append(edges, [2]core.NodeID{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if declaredM >= 0 && declaredM != len(edges) {
		return nil, fmt.Errorf("graph: header declares %d edges, input has %d", declaredM, len(edges))
	}
	if !haveHeader {
		if len(edges) == 0 {
			return nil, fmt.Errorf("graph: empty input (no header, no edges)")
		}
		for _, e := range edges {
			if int(e[1]) >= n {
				n = int(e[1]) + 1
			}
		}
	}
	g := fromUndirectedEdges(n, edges)
	if weighted {
		wm := make(map[[2]core.NodeID]int64, len(edges))
		for i, e := range edges {
			wm[e] = weights[i]
		}
		w := make([]int64, len(g.Targets))
		for v := 0; v < g.N; v++ {
			lo, hi := g.Offsets[v], g.Offsets[v+1]
			for i := lo; i < hi; i++ {
				a, b := core.NodeID(v), g.Targets[i]
				if a > b {
					a, b = b, a
				}
				w[i] = wm[[2]core.NodeID{a, b}]
			}
		}
		g.Weights = w
	}
	return g, nil
}

// splitEdgeLine tokenizes one line and classifies comments ('#'-leading
// lines and DIMACS "c" lines).
func splitEdgeLine(s string) (fields []string, comment bool) {
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' && s[i] != '\t' && s[i] != '\r' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			fields = append(fields, s[start:i])
			start = -1
		}
	}
	if len(fields) > 0 && (fields[0] == "c" || fields[0][0] == '#') {
		return nil, true
	}
	return fields, false
}

// parseHeader parses "p <n> [<m>]"; m is -1 when absent.
func parseHeader(fields []string) (n, m int, err error) {
	if len(fields) != 2 && len(fields) != 3 {
		return 0, 0, fmt.Errorf("header wants \"p <n> [<m>]\", got %d fields", len(fields))
	}
	n, err = strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("invalid vertex count %q", fields[1])
	}
	m = -1
	if len(fields) == 3 {
		m, err = strconv.Atoi(fields[2])
		if err != nil || m < 0 {
			return 0, 0, fmt.Errorf("invalid edge count %q", fields[2])
		}
	}
	return n, m, nil
}

// parseEndpoint parses a 0-based vertex ID, bounded by the declared
// vertex count when a header was seen (n >= 0).
func parseEndpoint(s string, n int) (core.NodeID, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid vertex %q", s)
	}
	if n >= 0 && int(v) >= n {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", v, n)
	}
	return core.NodeID(v), nil
}

// WriteEdgeList serializes g in the format LoadEdgeList parses: a
// "p <n> <m>" header (so isolated vertices survive the round trip)
// followed by one line per undirected edge, smaller endpoint first,
// with the weight appended when g is weighted. LoadEdgeList of the
// output reproduces g exactly — the round trip pkg/client relies on to
// upload in-memory graphs to ccserve.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p %d %d\n", g.N, g.NumEdges())
	for v := 0; v < g.N; v++ {
		nbrs := g.Neighbors(core.NodeID(v))
		for i, u := range nbrs {
			if int(u) < v {
				continue
			}
			if g.Weighted() {
				fmt.Fprintf(bw, "%d %d %d\n", v, u, g.NeighborWeights(core.NodeID(v))[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}
