package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

func TestLoadEdgeListUnweighted(t *testing.T) {
	in := `
# a comment
c another comment
p 5 3
0 1
1 2
	3   4
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N != 5 || g.NumEdges() != 3 || g.Weighted() {
		t.Fatalf("got N=%d edges=%d weighted=%v, want 5/3/false", g.N, g.NumEdges(), g.Weighted())
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestLoadEdgeListWeighted(t *testing.T) {
	in := "0 1 7\n1 2 0\n"
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N != 3 || !g.Weighted() {
		t.Fatalf("got N=%d weighted=%v, want 3/true", g.N, g.Weighted())
	}
	// Both arc directions carry the symmetric weight.
	for _, pair := range [][3]int64{{0, 1, 7}, {1, 0, 7}, {1, 2, 0}, {2, 1, 0}} {
		cols, vals := g.Row(core.NodeID(pair[0]))
		found := false
		for i, c := range cols {
			if int64(c) == pair[1] {
				found = true
				if vals[i] != pair[2] {
					t.Fatalf("weight(%d,%d) = %d, want %d", pair[0], pair[1], vals[i], pair[2])
				}
			}
		}
		if !found {
			t.Fatalf("arc (%d,%d) missing", pair[0], pair[1])
		}
	}
}

func TestLoadEdgeListHeaderOnlyEmptyGraph(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("p 4\n"))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N != 4 || g.NumEdges() != 0 {
		t.Fatalf("got N=%d edges=%d, want 4/0", g.N, g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty input"},
		{"comment-only", "# nothing\n", "empty input"},
		{"self-loop", "2 2\n", "self-loop"},
		{"duplicate", "0 1\n1 0\n", "duplicate edge"},
		{"mixed", "0 1\n1 2 5\n", "mixed weighted"},
		{"negative-weight", "0 1 -3\n", "negative weight"},
		{"bad-vertex", "0 x\n", "invalid vertex"},
		{"bad-weight", "0 1 1.5\n", "invalid weight"},
		{"too-many-fields", "0 1 2 3\n", "fields"},
		{"out-of-range", "p 2\n0 5\n", "out of range"},
		{"dup-header", "p 2\np 3\n", "duplicate header"},
		{"late-header", "0 1\np 5\n", "header after edges"},
		{"bad-header", "p two\n", "invalid vertex count"},
		{"edge-count-mismatch", "p 3 2\n0 1\n", "declares 2 edges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadEdgeList(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for _, g := range []*CSR{
		RandomGNPWeighted(40, 0.2, 16, 7),
		RandomGNP(33, 0.1, 3),
		Path(1),
		Grid(4, 5),
	} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		got, err := LoadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("LoadEdgeList(round trip): %v", err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("round trip diverged for N=%d graph", g.N)
		}
	}
}
