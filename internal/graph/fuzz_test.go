package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzLoadEdgeList throws arbitrary bytes at the edge-list parser — the
// trust boundary behind ccserve's POST /graphs endpoint. The corpus
// seeds one input per diagnostic the parser can emit, plus valid
// inputs. Properties: the parser never panics; every accepted graph
// passes Validate; and WriteEdgeList of an accepted graph reloads to an
// identical CSR (the round trip pkg/client relies on).
func FuzzLoadEdgeList(f *testing.F) {
	seeds := []string{
		// Valid inputs in every shape the format allows.
		"0 1\n1 2\n",
		"0 1 5\n1 2 9\n",
		"p 4\n0 1\n",
		"p 4 2\n0 1\n2 3\n",
		"p 3\n",
		"c comment\n# comment\n\n  \t \n0 1\n",
		"p 2 1\n1 0 0\n",
		// One seed per rejection diagnostic.
		"p 2\np 2\n0 1\n",        // duplicate header
		"0 1\np 4\n",             // header after edges
		"0 1 2 3\n",              // wrong field count
		"x 1\n",                  // invalid vertex token
		"0 -1\n",                 // negative vertex
		"1 1\n",                  // self-loop
		"0 1\n1 0\n",             // duplicate edge (flipped orientation)
		"0 1\n1 2 5\n",           // mixed weighted and unweighted
		"0 1 x\n",                // invalid weight token
		"0 1 -3\n",               // negative weight
		"p 4 9\n0 1\n",           // header edge count mismatch
		"",                       // empty input, no header
		"p x\n",                  // invalid header vertex count
		"p 4 x\n",                // invalid header edge count
		"p 2\n0 5\n",             // endpoint out of declared range
		"0 99999999999999999999\n", // endpoint overflows int32
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound parse cost; large inputs add no new paths
		}
		g, err := LoadEdgeList(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatalf("non-nil graph alongside error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "graph: ") {
				t.Fatalf("error %q does not carry the package prefix", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		g2, err := LoadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reloading written form: %v\ninput: %q\nwritten: %q", err, data, buf.Bytes())
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("round trip changed the graph:\n loaded: %+v\n reloaded: %+v", g, g2)
		}
	})
}
