package graph

import (
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

func allGraphs() map[string]*CSR {
	return map[string]*CSR{
		"gnp_sparse": RandomGNP(64, 0.05, 1),
		"gnp_dense":  RandomGNP(48, 0.5, 2),
		"path":       Path(33),
		"clique":     Clique(17),
		"grid":       Grid(7, 9),
		"empty":      RandomGNP(10, 0, 3),
		"singleton":  Path(1),
		"null":       Path(0),
	}
}

func TestValidateAll(t *testing.T) {
	for name, g := range allGraphs() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDegreeSum(t *testing.T) {
	for name, g := range allGraphs() {
		sum := 0
		for v := 0; v < g.N; v++ {
			sum += g.Degree(core.NodeID(v))
		}
		if sum != g.NumArcs() {
			t.Errorf("%s: degree sum %d != NumArcs %d", name, sum, g.NumArcs())
		}
		if sum != 2*g.NumEdges() {
			t.Errorf("%s: degree sum %d != 2|E| = %d", name, sum, 2*g.NumEdges())
		}
		if g.NumArcs()%2 != 0 {
			t.Errorf("%s: odd arc count %d for undirected graph", name, g.NumArcs())
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := RandomGNP(100, 0.1, 42)
	b := RandomGNP(100, 0.1, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same (n,p,seed) produced different graphs")
	}
	c := RandomGNP(100, 0.1, 43)
	if reflect.DeepEqual(a.Targets, c.Targets) {
		t.Error("different seeds produced identical edge sets (astronomically unlikely)")
	}
}

// TestRoundTripAdjacency rebuilds an adjacency-list reference directly
// from the generator's edge semantics and checks CSR iteration matches.
func TestRoundTripAdjacency(t *testing.T) {
	g := RandomGNP(80, 0.15, 7)
	// Reference adjacency matrix from CSR arcs.
	adj := make([][]bool, g.N)
	for i := range adj {
		adj[i] = make([]bool, g.N)
	}
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(core.NodeID(v)) {
			adj[v][u] = true
		}
	}
	// Symmetry: u in N(v) iff v in N(u).
	for v := 0; v < g.N; v++ {
		for u := 0; u < g.N; u++ {
			if adj[v][u] != adj[u][v] {
				t.Fatalf("asymmetric adjacency at (%d,%d)", v, u)
			}
		}
	}
	// Neighbor lists are strictly sorted => no duplicate arcs; combined
	// with symmetry and Validate's no-self-loop check, each undirected
	// edge appears exactly twice.
	count := 0
	for v := 0; v < g.N; v++ {
		for u := v + 1; u < g.N; u++ {
			if adj[v][u] {
				count++
			}
		}
	}
	if count != g.NumEdges() {
		t.Errorf("distinct pair count %d != NumEdges %d", count, g.NumEdges())
	}
}

func TestStructuredGenerators(t *testing.T) {
	p := Path(5)
	wantDeg := []int{1, 2, 2, 2, 1}
	for v, w := range wantDeg {
		if d := p.Degree(core.NodeID(v)); d != w {
			t.Errorf("Path(5) degree(%d) = %d, want %d", v, d, w)
		}
	}
	k := Clique(9)
	for v := 0; v < 9; v++ {
		if d := k.Degree(core.NodeID(v)); d != 8 {
			t.Errorf("Clique(9) degree(%d) = %d, want 8", v, d)
		}
	}
	if k.NumEdges() != 36 {
		t.Errorf("Clique(9) edges = %d, want 36", k.NumEdges())
	}
	gr := Grid(3, 4)
	if gr.NumEdges() != 3*3+2*4 { // rows*(cols-1) + (rows-1)*cols
		t.Errorf("Grid(3,4) edges = %d, want 17", gr.NumEdges())
	}
	// Corner vertex 0 has exactly neighbors 1 and 4.
	if got := gr.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("Grid(3,4) neighbors(0) = %v, want [1 4]", got)
	}
}

func TestWeights(t *testing.T) {
	g := RandomGNP(60, 0.2, 11)
	wg := g.WithUniformRandomWeights(99, 1000)
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() || g.Weighted() {
		t.Fatal("Weighted flags wrong")
	}
	// Deterministic.
	wg2 := g.WithUniformRandomWeights(99, 1000)
	if !reflect.DeepEqual(wg.Weights, wg2.Weights) {
		t.Error("same seed produced different weights")
	}
	// Symmetric and in range.
	wOf := func(u, v core.NodeID) int64 {
		nbrs, ws := wg.Neighbors(u), wg.NeighborWeights(u)
		for i, x := range nbrs {
			if x == v {
				return ws[i]
			}
		}
		t.Fatalf("edge (%d,%d) not found", u, v)
		return 0
	}
	for v := 0; v < wg.N; v++ {
		nbrs, ws := wg.Neighbors(core.NodeID(v)), wg.NeighborWeights(core.NodeID(v))
		for i, u := range nbrs {
			if ws[i] < 1 || ws[i] > 1000 {
				t.Fatalf("weight %d out of [1,1000]", ws[i])
			}
			if back := wOf(u, core.NodeID(v)); back != ws[i] {
				t.Fatalf("asymmetric weight (%d,%d): %d vs %d", v, u, ws[i], back)
			}
		}
	}
}

// TestRandomGNPWeightedDeterministic: the weighted generator is a pure
// function of (n, p, maxW, seed): same quadruple, identical graph;
// different seed, different weights; structure identical to RandomGNP
// with the same seed.
func TestRandomGNPWeightedDeterministic(t *testing.T) {
	a := RandomGNPWeighted(60, 0.15, 25, 9)
	b := RandomGNPWeighted(60, 0.15, 25, 9)
	if !reflect.DeepEqual(a, b) {
		t.Error("same (n,p,maxW,seed) produced different weighted graphs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.Weighted() {
		t.Fatal("RandomGNPWeighted produced an unweighted graph")
	}
	plain := RandomGNP(60, 0.15, 9)
	if !reflect.DeepEqual(a.Targets, plain.Targets) || !reflect.DeepEqual(a.Offsets, plain.Offsets) {
		t.Error("structure diverges from RandomGNP with the same seed")
	}
	c := RandomGNPWeighted(60, 0.15, 25, 10)
	if reflect.DeepEqual(a.Weights, c.Weights) && reflect.DeepEqual(a.Targets, c.Targets) {
		t.Error("different seeds produced identical weighted graphs (astronomically unlikely)")
	}
}

// TestRandomGNPWeightedWeightRangeAndSymmetry: every weight lies in
// [1, maxW] and both arc directions of an edge agree.
func TestRandomGNPWeightedWeightRangeAndSymmetry(t *testing.T) {
	const maxW = 7
	g := RandomGNPWeighted(50, 0.2, maxW, 123)
	for v := 0; v < g.N; v++ {
		nbrs := g.Neighbors(core.NodeID(v))
		ws := g.NeighborWeights(core.NodeID(v))
		for i, u := range nbrs {
			if ws[i] < 1 || ws[i] > maxW {
				t.Fatalf("weight(%d,%d) = %d outside [1,%d]", v, u, ws[i], maxW)
			}
			// Find the reverse arc and compare.
			un := g.Neighbors(u)
			uw := g.NeighborWeights(u)
			found := false
			for k, w := range un {
				if w == core.NodeID(v) {
					if uw[k] != ws[i] {
						t.Fatalf("asymmetric weight: w(%d,%d)=%d, w(%d,%d)=%d", v, u, ws[i], u, v, uw[k])
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("missing reverse arc %d->%d", u, v)
			}
		}
	}
}
