package graph_test

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// ExampleRandomGNP shows that the G(n,p) generator is deterministic in
// (n, p, seed) and produces a valid CSR ready for the engine layers.
func ExampleRandomGNP() {
	g := graph.RandomGNP(8, 0.5, 42)
	if err := g.Validate(); err != nil {
		panic(err)
	}
	same := graph.RandomGNP(8, 0.5, 42)
	fmt.Println("vertices:", g.N)
	fmt.Println("edges:", g.NumEdges())
	fmt.Println("deterministic:", g.NumEdges() == same.NumEdges())
	fmt.Println("neighbors of 0:", g.Neighbors(0))
	// Output:
	// vertices: 8
	// edges: 17
	// deterministic: true
	// neighbors of 0: [1 2 4 5 6]
}

// ExampleCSR_WithUniformRandomWeights derives symmetric integer weights
// from a seed: both directions of every edge agree by construction.
func ExampleCSR_WithUniformRandomWeights() {
	g := graph.Path(4).WithUniformRandomWeights(7, 10)
	w01 := g.NeighborWeights(0)[0] // weight of edge {0,1} seen from 0
	w10 := g.NeighborWeights(1)[0] // the same edge seen from 1
	fmt.Println("symmetric:", w01 == w10)
	fmt.Println("in range:", w01 >= 1 && w01 <= 10)
	// Output:
	// symmetric: true
	// in range: true
}
