// Package faults is the fault-injection harness for the Congested
// Clique simulator: a declarative Plan is compiled into the engine's
// test hooks (engine.SetTestHooks), the socket transport's frame hooks
// (engine.SetTransportHooks), and the clique checkpoint writer hook
// (clique.SetCheckpointWriteHook) to stall workers mid-phase, fail
// node handlers at chosen (pass, round, node) coordinates, cancel runs
// at a precise round barrier, drop, duplicate, corrupt, or sever
// socket-transport frames at chosen (src rank, dst rank, kind, seq)
// coordinates, and corrupt or truncate checkpoint writes — all without
// the production code paths carrying any test logic beyond a nil
// pointer check.
//
// The package also hosts the headline robustness property tests:
// crash/resume equivalence (kill a kernel at an injected fault, resume
// from its last checkpoint, and require results and per-round replay
// digests bit-identical to an uninterrupted run) for every registered
// Checkpointable kernel, under the race detector.
//
// Plans are test-only and process-global (the hooks are package-level
// seams); tests must Install exactly one plan at a time and Uninstall
// it before finishing.
package faults

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// ErrInjected is the base error of every handler fault a Plan injects;
// match with errors.Is to distinguish injected faults from organic
// failures.
var ErrInjected = errors.New("faults: injected fault")

// Plan declares where and how faults strike a run. The zero Plan
// injects nothing; each fault kind activates when its fields are set.
// Coordinates are (pass, round): passes count engine passes executed
// while the plan is installed (a round-barrier entering round 0 starts
// a new pass), rounds restart at zero each pass — matching how
// multi-pass kernels see the engine.
type Plan struct {
	// FailNode, FailPass, FailRound inject a handler error (wrapping
	// ErrInjected) in place of FailNode's handler at the given pass and
	// round. Enabled when FailEnabled is set.
	FailEnabled bool
	FailNode    core.NodeID
	FailPass    int
	FailRound   core.Round

	// StallWorker, StallPhase, StallFor put one worker goroutine to
	// sleep for StallFor every time it picks up the given phase
	// (0 = node handlers, 1 = scatter) — the rest of the pool must wait
	// at the phase barrier, which is exactly the point. Enabled when
	// StallFor > 0.
	StallWorker int
	StallPhase  int
	StallFor    time.Duration

	// CancelPass, CancelRound, Cancel call Cancel (typically a
	// context.CancelFunc) at the top of the given round barrier.
	// Enabled when Cancel is non-nil.
	CancelPass  int
	CancelRound core.Round
	Cancel      func()

	// CheckpointWriter, when non-nil, wraps every checkpoint file
	// writer — the seam for WriteFailer's short writes and disk-full
	// errors.
	CheckpointWriter func(io.Writer) io.Writer

	// TransportSrc, TransportDst, TransportKind, TransportSeq, and
	// TransportMode strike one frame of socket-transport traffic: the
	// first frame rank TransportSrc sends to rank TransportDst with the
	// given kind (engine.FrameKindRound, engine.FrameKindGather, ...)
	// and sequence number is dropped, duplicated, bit-flipped, or has
	// its connection killed per TransportMode. Enabled when
	// TransportMode is non-zero; one-shot, like the handler fault.
	// Every mode must surface as a loud transport error on some rank —
	// the socket transport never degrades silently.
	TransportSrc  int
	TransportDst  int
	TransportKind uint64
	TransportSeq  uint64
	TransportMode TransportMode

	// pass tracks engine passes observed via round barriers; fired /
	// tfired make the handler and transport faults one-shot so a
	// resumed run is clean.
	pass   atomic.Int64
	fired  atomic.Bool
	tfired atomic.Bool
}

// TransportMode selects how an armed transport fault mangles the
// selected frame.
type TransportMode int

const (
	// DropFrame swallows the frame: the receiver sees nothing and must
	// fail on its read deadline (or on the sender's later abort).
	DropFrame TransportMode = iota + 1
	// DupFrame sends the frame twice: the second copy arrives with a
	// stale sequence number and must be rejected as replayed traffic.
	DupFrame
	// CorruptFrame flips one bit inside the frame payload: the ckptio
	// integrity trailer must catch it on decode.
	CorruptFrame
	// KillConn closes the sender's connection to the destination rank
	// in place of the write.
	KillConn
)

// Install arms p: the engine's test hooks and the clique checkpoint
// writer hook are pointed at this plan. Exactly one plan can be
// installed at a time; callers must Uninstall before the test ends and
// must not install while any engine is mid-run.
func Install(p *Plan) {
	p.pass.Store(-1)
	engine.SetTestHooks(&engine.TestHooks{
		BarrierEnter: p.barrierEnter,
		NodeError:    p.nodeError,
		WorkerPhase:  p.workerPhase,
	})
	engine.SetTransportHooks(&engine.TransportHooks{
		FrameOut: p.frameOut,
		KillConn: p.killConn,
	})
	clique.SetCheckpointWriteHook(p.CheckpointWriter)
}

// Uninstall removes every hook Install set, restoring zero-fault
// production behavior.
func Uninstall() {
	engine.SetTestHooks(nil)
	engine.SetTransportHooks(nil)
	clique.SetCheckpointWriteHook(nil)
}

// barrierEnter counts passes (round 0 opens a new one) and fires the
// cancellation fault at its configured barrier.
func (p *Plan) barrierEnter(r core.Round) {
	if r == 0 {
		p.pass.Add(1)
	}
	if p.Cancel != nil && int(p.pass.Load()) == p.CancelPass && r == p.CancelRound {
		p.Cancel()
	}
}

// nodeError fires the configured handler fault once.
func (p *Plan) nodeError(id core.NodeID, r core.Round) error {
	if !p.FailEnabled || p.fired.Load() {
		return nil
	}
	if id != p.FailNode || r != p.FailRound || int(p.pass.Load()) != p.FailPass {
		return nil
	}
	if !p.fired.CompareAndSwap(false, true) {
		return nil
	}
	return fmt.Errorf("%w: node %d, pass %d, round %d", ErrInjected, id, p.FailPass, r)
}

// workerPhase stalls the configured worker on the configured phase.
func (p *Plan) workerPhase(worker, phase int) {
	if p.StallFor > 0 && worker == p.StallWorker && phase == p.StallPhase {
		time.Sleep(p.StallFor)
	}
}

// transportMatch reports whether (srcRank, dstRank, kind, seq) is the
// armed transport fault's target and, on the first match, consumes the
// one-shot flag.
func (p *Plan) transportMatch(srcRank, dstRank int, kind, seq uint64) bool {
	if p.TransportMode == 0 ||
		srcRank != p.TransportSrc || dstRank != p.TransportDst ||
		kind != p.TransportKind || seq != p.TransportSeq {
		return false
	}
	return p.tfired.CompareAndSwap(false, true)
}

// killConn is the engine.TransportHooks.KillConn implementation: it
// fires only in KillConn mode so the frame-mangling modes fall through
// to frameOut.
func (p *Plan) killConn(srcRank, dstRank int, kind, seq uint64) bool {
	return p.TransportMode == KillConn && p.transportMatch(srcRank, dstRank, kind, seq)
}

// frameOut is the engine.TransportHooks.FrameOut implementation: the
// targeted frame is dropped, duplicated, or bit-flipped; every other
// frame passes through untouched.
func (p *Plan) frameOut(srcRank, dstRank int, kind, seq uint64, frame []byte) [][]byte {
	if p.TransportMode == KillConn || !p.transportMatch(srcRank, dstRank, kind, seq) {
		return [][]byte{frame}
	}
	switch p.TransportMode {
	case DropFrame:
		return nil
	case DupFrame:
		return [][]byte{frame, frame}
	case CorruptFrame:
		c := append([]byte(nil), frame...)
		c[len(c)-1] ^= 0x01 // inside the integrity trailer
		return [][]byte{c}
	}
	return [][]byte{frame}
}

// WriteFailer wraps an io.Writer and fails after limit bytes with the
// given error — io.ErrShortWrite for torn writes, syscall.ENOSPC (see
// DiskFull) for a full disk. Plumbed under checkpoint writes through
// Plan.CheckpointWriter.
type WriteFailer struct {
	w       io.Writer
	limit   int
	written int
	err     error
}

// NewWriteFailer returns a writer that forwards to w until limit bytes
// have passed, then fails every write with err.
func NewWriteFailer(w io.Writer, limit int, err error) *WriteFailer {
	return &WriteFailer{w: w, limit: limit, err: err}
}

// Write forwards to the underlying writer until the limit, truncating
// the write that crosses it and failing it (and all later writes) with
// the configured error.
func (f *WriteFailer) Write(p []byte) (int, error) {
	if f.written >= f.limit {
		return 0, f.err
	}
	if rem := f.limit - f.written; len(p) > rem {
		n, _ := f.w.Write(p[:rem])
		f.written += n
		return n, f.err
	}
	n, err := f.w.Write(p)
	f.written += n
	return n, err
}

// DiskFull returns a Plan.CheckpointWriter that lets limit bytes
// through and then fails with syscall.ENOSPC, emulating a disk filling
// up mid-checkpoint.
func DiskFull(limit int) func(io.Writer) io.Writer {
	return func(w io.Writer) io.Writer { return NewWriteFailer(w, limit, syscall.ENOSPC) }
}

// ShortWrite returns a Plan.CheckpointWriter that truncates the stream
// at limit bytes with io.ErrShortWrite, emulating a torn write.
func ShortWrite(limit int) func(io.Writer) io.Writer {
	return func(w io.Writer) io.Writer { return NewWriteFailer(w, limit, io.ErrShortWrite) }
}
