package faults_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"reflect"
	"syscall"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	_ "github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/faults"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
	_ "github.com/paper-repo-growth/doryp20/internal/matmul"
)

// testGraph is the shared fixture: dense enough that every registered
// kernel runs multiple passes, small enough that the full sweep stays
// fast under -race.
func testGraph() *graph.CSR {
	return graph.RandomGNPWeighted(14, 0.3, 25, 42)
}

// resultsEqual compares kernel results. Hopsets are compared through
// their canonical serialization (their matrices embed semiring function
// values, which reflect.DeepEqual refuses to compare); everything else
// is plain data and DeepEqual applies.
func resultsEqual(a, b any) bool {
	ha, aok := a.(*hopset.Hopset)
	hb, bok := b.(*hopset.Hopset)
	if aok || bok {
		return aok && bok && bytes.Equal(encodeHopset(ha), encodeHopset(hb))
	}
	return reflect.DeepEqual(a, b)
}

// encodeHopset canonically serializes hs for comparison.
func encodeHopset(hs *hopset.Hopset) []byte {
	var buf bytes.Buffer
	w := ckptio.NewWriter(&buf)
	hopset.WriteHopset(w, hs)
	if w.Err() != nil {
		return nil
	}
	return buf.Bytes()
}

// checkpointableKernels returns the registered kernel names whose
// instances implement clique.Checkpointable.
func checkpointableKernels(t *testing.T, g *graph.CSR) []string {
	t.Helper()
	var names []string
	for _, name := range clique.Kernels() {
		k, err := clique.NewKernel(name, g)
		if err != nil {
			t.Fatalf("NewKernel(%q): %v", name, err)
		}
		if _, ok := k.(clique.Checkpointable); ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		t.Fatal("no registered kernel implements Checkpointable")
	}
	return names
}

// TestCheckpointableCoverage pins the set of kernels the crash/resume
// sweep exercises. A newly registered kernel must either implement
// clique.Checkpointable — in which case the sweep below picks it up
// automatically and this list grows — or be added here deliberately
// with a reason it cannot checkpoint. A mismatch in either direction
// fails: silent shrinkage of fault coverage is exactly the regression
// this test exists to catch.
func TestCheckpointableCoverage(t *testing.T) {
	got := checkpointableKernels(t, testGraph())
	want := []string{"approx-ksource", "approx-sssp", "apsp", "closure",
		"diameter-est", "diameter-est-approx", "hop-limited", "hopset",
		"ksource", "mst", "widest", "widest-ksource"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointable kernels = %v, want %v", got, want)
	}
}

// TestCrashResumeEquivalence is the headline robustness property: for
// every registered Checkpointable kernel, a run killed by an injected
// handler fault and resumed from its last checkpoint must produce
// results and per-round replay digest chains bit-identical to an
// uninterrupted run.
func TestCrashResumeEquivalence(t *testing.T) {
	g := testGraph()
	ctx := context.Background()
	for _, name := range checkpointableKernels(t, g) {
		t.Run(name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref, err := clique.New(g, clique.WithDigests())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			kRef, err := clique.NewKernel(name, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(ctx, kRef); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			refDigests := ref.Digests()
			refStats := ref.Stats()
			passes := refStats.Runs
			if passes < 2 {
				t.Fatalf("kernel %q completed in %d pass(es); crash/resume needs >= 2 — grow the fixture graph", name, passes)
			}

			// Interrupted run: checkpoint at every pass boundary, then
			// kill the final pass with an injected handler fault.
			dir := t.TempDir()
			sess, err := clique.New(g, clique.WithDigests(), clique.WithCheckpoint(dir, 1))
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			kCrash, err := clique.NewKernel(name, g)
			if err != nil {
				t.Fatal(err)
			}
			plan := &faults.Plan{FailEnabled: true, FailNode: 0, FailPass: passes - 1, FailRound: 0}
			faults.Install(plan)
			err = sess.Run(ctx, kCrash)
			faults.Uninstall()
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("crash run error = %v, want injected fault", err)
			}

			// Resume a fresh kernel from the checkpoint on the surviving
			// session and require bit-identical results, digests, and
			// traffic accounting.
			kResume, err := clique.NewKernel(name, g)
			if err != nil {
				t.Fatal(err)
			}
			path := clique.CheckpointPath(dir, name)
			if err := sess.Resume(ctx, kResume.(clique.Checkpointable), path); err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if !resultsEqual(kResume.Result(), kRef.Result()) {
				t.Errorf("resumed result differs from uninterrupted run:\n resumed: %v\n reference: %v", kResume.Result(), kRef.Result())
			}
			if got := sess.Digests(); !reflect.DeepEqual(got, refDigests) {
				t.Errorf("resumed digest chain differs: got %d digests %v, want %d %v", len(got), got, len(refDigests), refDigests)
			}
			st := sess.Stats()
			if st.Runs != refStats.Runs || st.Engine.Rounds != refStats.Engine.Rounds ||
				st.Engine.TotalMsgs != refStats.Engine.TotalMsgs || st.Engine.TotalBytes != refStats.Engine.TotalBytes {
				t.Errorf("resumed accounting differs: got %+v, want %+v", st, refStats)
			}
		})
	}
}

// TestWorkerStallDeterminism stalls one worker goroutine in each phase
// and requires the run to produce the same digest chain as an
// unstalled run — barriers make stragglers invisible to the protocol.
func TestWorkerStallDeterminism(t *testing.T) {
	g := testGraph()
	ctx := context.Background()
	run := func() []uint64 {
		s, err := clique.New(g, clique.WithDigests(), clique.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		k, err := clique.NewKernel("apsp", g)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(ctx, k); err != nil {
			t.Fatal(err)
		}
		return s.Digests()
	}
	want := run()
	for phase := 0; phase <= 1; phase++ {
		faults.Install(&faults.Plan{StallWorker: 0, StallPhase: phase, StallFor: 2 * time.Millisecond})
		got := run()
		faults.Uninstall()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("digests with worker 0 stalled in phase %d differ from unstalled run", phase)
		}
	}
}

// TestCancellationAtBarrier cancels the context at a precise (pass,
// round) barrier and requires a clean context.Canceled from Run with
// the session still usable afterwards.
func TestCancellationAtBarrier(t *testing.T) {
	g := testGraph()
	s, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faults.Install(&faults.Plan{CancelPass: 1, CancelRound: 1, Cancel: cancel})
	k, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(ctx, k)
	faults.Uninstall()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under injected cancellation = %v, want context.Canceled", err)
	}
	// The warm session survives cancellation.
	k2, err := clique.NewKernel("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), k2); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}

// TestCheckpointWriteFailure exercises torn and disk-full checkpoint
// writes: the run fails with the underlying error, the previous
// checkpoint file stays byte-identical, and no temp file is left
// behind.
func TestCheckpointWriteFailure(t *testing.T) {
	g := testGraph()
	ctx := context.Background()
	cases := []struct {
		name string
		hook func(io.Writer) io.Writer
		want error
	}{
		{"disk-full", faults.DiskFull(100), syscall.ENOSPC},
		{"short-write", faults.ShortWrite(100), io.ErrShortWrite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := clique.New(g, clique.WithCheckpoint(dir, 1))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// A clean run first, leaving a good checkpoint behind.
			k, err := clique.NewKernel("apsp", g)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(ctx, k); err != nil {
				t.Fatal(err)
			}
			path := clique.CheckpointPath(dir, "apsp")
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no checkpoint after clean run: %v", err)
			}

			faults.Install(&faults.Plan{CheckpointWriter: tc.hook})
			k2, err := clique.NewKernel("apsp", g)
			if err != nil {
				t.Fatal(err)
			}
			err = s.Run(ctx, k2)
			faults.Uninstall()
			if !errors.Is(err, tc.want) {
				t.Fatalf("run with failing checkpoint writes = %v, want %v", err, tc.want)
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("previous checkpoint gone after failed write: %v", err)
			}
			if !reflect.DeepEqual(good, after) {
				t.Error("previous checkpoint was clobbered by a failed write")
			}
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("temp checkpoint file left behind (stat err %v)", err)
			}
		})
	}
}

// panicRoundNode panics in its round handler at a chosen round.
type panicRoundNode struct {
	id, n core.NodeID
	at    core.Round
}

// Round seeds one message to its successor, forwards it, and panics at
// the configured round on node 1.
func (n *panicRoundNode) Round(ctx *engine.Ctx, r core.Round, inbox []Message) error {
	if r == n.at && n.id == 1 {
		panic("kernel bug")
	}
	if r == 0 {
		return ctx.Send((n.id+1)%n.n, 7)
	}
	if r < n.at+2 && len(inbox) > 0 {
		return ctx.Send((n.id+1)%n.n, inbox[0].Payload+1)
	}
	return nil
}

// Message aliases the engine message type for the local test node.
type Message = engine.Message

// panicKernel is an unregistered kernel whose node handlers panic
// (mode "handler") or whose Nodes call panics (mode "nodes").
type panicKernel struct{ mode string }

// Name identifies the kernel in the error.
func (k *panicKernel) Name() string { return "panicky" }

// Nodes panics in mode "nodes", otherwise returns panicking handlers.
func (k *panicKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.mode == "nodes" {
		panic("factory bug")
	}
	nodes := make([]engine.Node, g.N)
	for i := range nodes {
		nodes[i] = &panicRoundNode{id: core.NodeID(i), n: core.NodeID(g.N), at: 2}
	}
	return nodes, nil
}

// Result is never reached.
func (k *panicKernel) Result() any { return nil }

// TestKernelPanicContained runs deliberately panicking kernels on a
// session and requires a typed *clique.KernelPanicError with the warm
// session intact. It lives here (not in package clique's tests) so the
// panicking kernel never enters the pinned kernel registry.
func TestKernelPanicContained(t *testing.T) {
	g := testGraph()
	s, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	for _, mode := range []string{"handler", "nodes"} {
		err := s.Run(ctx, &panicKernel{mode: mode})
		var kp *clique.KernelPanicError
		if !errors.As(err, &kp) {
			t.Fatalf("mode %s: Run = %v, want *KernelPanicError", mode, err)
		}
		if kp.Kernel != "panicky" {
			t.Errorf("mode %s: panic attributed to kernel %q", mode, kp.Kernel)
		}
		if mode == "handler" && (kp.Node != 1 || kp.Round != 2) {
			t.Errorf("handler panic located at node %d round %d, want node 1 round 2", kp.Node, kp.Round)
		}
		if mode == "nodes" && kp.Node != -1 {
			t.Errorf("nodes panic reported node %d, want -1", kp.Node)
		}
	}

	// The session survives both panics and runs real kernels.
	k, err := clique.NewKernel("bfs", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, k); err != nil {
		t.Fatalf("run after kernel panics: %v", err)
	}
}

// TestStopResumeRoundTrip drives the SIGINT path programmatically:
// RequestStop ends the run with ErrStopped after a final checkpoint,
// and Resume completes it with results identical to an uninterrupted
// run.
func TestStopResumeRoundTrip(t *testing.T) {
	g := testGraph()
	ctx := context.Background()

	ref, err := clique.New(g, clique.WithDigests())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	kRef, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(ctx, kRef); err != nil {
		t.Fatal(err)
	}

	// RequestStop from a round hook — the same shape as a signal
	// handler interrupting a live run; Run itself clears any stop
	// request raised before it starts.
	dir := t.TempDir()
	var s *clique.Session
	stopArmed := true
	s, err = clique.New(g, clique.WithDigests(), clique.WithCheckpoint(dir, 1_000_000),
		clique.WithRoundHook(func(engine.RoundStats) {
			if stopArmed {
				s.RequestStop()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(ctx, k); !errors.Is(err, clique.ErrStopped) {
		t.Fatalf("Run after RequestStop = %v, want ErrStopped", err)
	}

	stopArmed = false
	kResume, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(ctx, kResume.(clique.Checkpointable), clique.CheckpointPath(dir, "apsp")); err != nil {
		t.Fatalf("Resume after stop: %v", err)
	}
	if !reflect.DeepEqual(kResume.Result(), kRef.Result()) {
		t.Error("stop/resume result differs from uninterrupted run")
	}
	if !reflect.DeepEqual(s.Digests(), ref.Digests()) {
		t.Error("stop/resume digest chain differs from uninterrupted run")
	}
}
