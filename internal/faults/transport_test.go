package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// ringNode is the deterministic traffic the transport fault tests run:
// in each round r < rounds, node v sends one word to its ring successor
// with a payload that is a pure function of (v, r), so digests across
// runs and transports are comparable bit for bit.
type ringNode struct {
	n, rounds int
}

func (rn *ringNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	if int(r) >= rn.rounds || rn.n < 2 {
		return nil
	}
	v := uint64(ctx.ID())
	dst := (ctx.ID() + 1) % core.NodeID(rn.n)
	return ctx.Send(dst, v*100003+uint64(r)*31+7)
}

// faultOpts is the engine configuration the transport fault tests run
// under: digests on, a roomy link budget, quick deadlines via the
// transport.
func faultOpts(tr engine.Transport) engine.Options {
	return engine.Options{
		Transport:     tr,
		RecordDigests: true,
		Budget:        core.Budget{BitsPerLink: 4 * core.WordBits, MsgBits: core.WordBits},
	}
}

// runSocketPair drives a 2-rank unix-socket clique of n ringNodes with
// a short frame deadline and returns each rank's Run error. Engines
// are constructed on the per-rank goroutines because multi-rank Bind
// handshakes block until every peer arrives.
func runSocketPair(t *testing.T, n, rounds int, timeout time.Duration) []error {
	t.Helper()
	trs, err := engine.LoopbackCluster(2, "unix", timeout)
	if err != nil {
		t.Fatalf("LoopbackCluster: %v", err)
	}
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			e, err := engine.New(n, faultOpts(trs[rank]))
			if err != nil {
				trs[rank].Close()
				errs[rank] = err
				return
			}
			defer e.Close()
			nodes := make([]engine.Node, n)
			for j := range nodes {
				nodes[j] = &ringNode{n: n, rounds: rounds}
			}
			_, errs[rank] = e.Run(context.Background(), nodes)
		}(i)
	}
	wg.Wait()
	return errs
}

// TestTransportFrameFaults drives each frame-level fault mode against
// a live 2-rank socket clique and requires a loud error on every rank
// — a mangled frame must never degrade into silently wrong traffic.
func TestTransportFrameFaults(t *testing.T) {
	cases := []struct {
		name string
		mode TransportMode
		// want is a substring some rank's error must carry, pinning the
		// failure to the intended detection path; empty means any error.
		want string
	}{
		// The dropped round-2 frame leaves rank 1 waiting while rank 0
		// moves on; rank 1's next read sees a future sequence number.
		{"drop", DropFrame, ""},
		// The duplicate arrives after the genuine frame and fails the
		// sequence check as replayed traffic.
		{"dup", DupFrame, "duplicated or reordered frame"},
		// The flipped bit trips the ckptio integrity trailer.
		{"corrupt", CorruptFrame, "integrity digest mismatch"},
		// The severed connection surfaces on the sender immediately.
		{"kill", KillConn, "fault injection"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{
				TransportSrc:  0,
				TransportDst:  1,
				TransportKind: engine.FrameKindRound,
				TransportSeq:  2,
				TransportMode: tc.mode,
			}
			Install(p)
			defer Uninstall()
			errs := runSocketPair(t, 16, 6, 3*time.Second)
			for rank, err := range errs {
				if err == nil {
					t.Errorf("rank %d completed cleanly under a %s fault", rank, tc.name)
				}
			}
			if tc.want != "" {
				found := false
				for _, err := range errs {
					if err != nil && strings.Contains(err.Error(), tc.want) {
						found = true
					}
				}
				if !found {
					t.Errorf("no rank's error mentions %q: %v", tc.want, errs)
				}
			}
			if !p.tfired.Load() {
				t.Error("the transport fault never fired")
			}
		})
	}
}

// TestTransportCrashResumeEquivalence is the distributed crash/resume
// headline property: a 2-rank socket run snapshots at a round barrier,
// crashes on an injected connection kill, is restored on a fresh
// cluster from the written snapshots, and must finish with every
// rank's replay digest chain bit-identical to an uninterrupted
// single-process run.
func TestTransportCrashResumeEquivalence(t *testing.T) {
	const (
		n      = 16
		rounds = 8
		pause  = 4
	)
	newNodes := func() []engine.Node {
		nodes := make([]engine.Node, n)
		for j := range nodes {
			nodes[j] = &ringNode{n: n, rounds: rounds}
		}
		return nodes
	}

	// Uninterrupted in-process reference digests.
	ref, err := engine.New(n, faultOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background(), newNodes()); err != nil {
		t.Fatal(err)
	}
	wantDigests := append([]uint64(nil), ref.Digests()...)
	ref.Close()
	if len(wantDigests) == 0 {
		t.Fatal("reference run recorded no digests")
	}

	// Phase 1: run to the pause barrier, snapshot, then continue into
	// the armed kill fault at round 6 and crash on every rank.
	p := &Plan{
		TransportSrc:  0,
		TransportDst:  1,
		TransportKind: engine.FrameKindRound,
		TransportSeq:  6,
		TransportMode: KillConn,
	}
	Install(p)
	defer Uninstall()

	trs, err := engine.LoopbackCluster(2, "unix", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([][]byte, len(trs))
	crashErrs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			crashErrs[rank] = func() error {
				e, err := engine.New(n, faultOpts(trs[rank]))
				if err != nil {
					trs[rank].Close()
					return err
				}
				defer e.Close()
				if _, err := e.RunBounded(context.Background(), newNodes(), pause); !errors.Is(err, engine.ErrMaxRounds) {
					return fmt.Errorf("pause run: got %v, want ErrMaxRounds", err)
				}
				snap, err := e.Snapshot()
				if err != nil {
					return fmt.Errorf("snapshot: %w", err)
				}
				var buf bytes.Buffer
				if _, err := snap.WriteTo(&buf); err != nil {
					return fmt.Errorf("snapshot write: %w", err)
				}
				snaps[rank] = buf.Bytes()
				// Continue into the kill fault: this leg must die.
				if _, err := e.RunBounded(context.Background(), newNodes(), 0); err == nil {
					return errors.New("crash leg completed cleanly under a kill fault")
				}
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for rank, err := range crashErrs {
		if err != nil {
			t.Fatalf("rank %d crash phase: %v", rank, err)
		}
	}
	if !p.tfired.Load() {
		t.Fatal("the kill fault never fired")
	}
	Uninstall()

	// Phase 2: restore the snapshots on a fresh fault-free cluster and
	// finish the run.
	trs2, err := engine.LoopbackCluster(2, "unix", 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	digests := make([][]uint64, len(trs2))
	resumeErrs := make([]error, len(trs2))
	for i := range trs2 {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			resumeErrs[rank] = func() error {
				e, err := engine.New(n, faultOpts(trs2[rank]))
				if err != nil {
					trs2[rank].Close()
					return err
				}
				defer e.Close()
				snap, err := engine.ReadSnapshot(bytes.NewReader(snaps[rank]))
				if err != nil {
					return fmt.Errorf("read snapshot: %w", err)
				}
				if err := e.RestoreSnapshot(snap); err != nil {
					return fmt.Errorf("restore: %w", err)
				}
				if _, err := e.RunBounded(context.Background(), newNodes(), 0); err != nil {
					return fmt.Errorf("resumed run: %w", err)
				}
				digests[rank] = append([]uint64(nil), e.Digests()...)
				return nil
			}()
		}(i)
	}
	wg.Wait()
	for rank, err := range resumeErrs {
		if err != nil {
			t.Fatalf("rank %d resume phase: %v", rank, err)
		}
	}
	for rank, got := range digests {
		if len(got) != len(wantDigests) {
			t.Fatalf("rank %d resumed digest chain has %d rounds, want %d", rank, len(got), len(wantDigests))
		}
		for r := range got {
			if got[r] != wantDigests[r] {
				t.Fatalf("rank %d digest diverges at round %d: %#x vs %#x", rank, r, got[r], wantDigests[r])
			}
		}
	}
}
