package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/graph"

	// Register the measured kernels with the clique registry.
	_ "github.com/paper-repo-growth/doryp20/internal/algo"
)

// KernelNames is the fixed set the kernels workload measures: the
// semiring-generalization kernels, one entry per registered name. The
// older distance kernels have their own dedicated workloads
// (BENCH_matmul.json, BENCH_hopset.json); this list tracks the surface
// those don't cover.
var KernelNames = []string{
	"widest", "widest-ksource", "closure", "mst",
	"diameter-est", "diameter-est-approx",
}

// KernelResult is one measured kernel run on a deterministic weighted
// G(n, 0.15) instance through the session API.
type KernelResult struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	Passes     int     `json:"passes"`
	Rounds     int     `json:"rounds"`
	Messages   uint64  `json:"messages"`
	Bytes      uint64  `json:"bytes"`
	WallNs     int64   `json:"wall_ns"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	NsPerMsg   float64 `json:"ns_per_msg"`
}

// KernelsReport is the serialized shape of BENCH_kernels.json.
type KernelsReport struct {
	Schema string `json:"schema"`
	Host
	Results []KernelResult `json:"results"`
}

// KernelRun measures one registered kernel by name on the same
// deterministic instance family ccbench's -kernel mode uses.
func KernelRun(name string, n int) (KernelResult, error) {
	g := graph.RandomGNP(n, 0.15, 1).WithUniformRandomWeights(2, 16)
	k, err := clique.NewKernel(name, g)
	if err != nil {
		return KernelResult{}, fmt.Errorf("bench: kernel %s n=%d: %w", name, n, err)
	}
	s, err := clique.New(g)
	if err != nil {
		return KernelResult{}, fmt.Errorf("bench: kernel %s n=%d: %w", name, n, err)
	}
	defer s.Close()
	if err := s.Run(context.Background(), k); err != nil {
		return KernelResult{}, fmt.Errorf("bench: kernel %s n=%d: %w", name, n, err)
	}
	st := s.Stats()
	secs := st.Engine.Wall.Seconds()
	if secs <= 0 {
		secs = float64(time.Nanosecond) / float64(time.Second)
	}
	res := KernelResult{
		Name:     name,
		N:        n,
		Passes:   st.Runs,
		Rounds:   st.Engine.Rounds,
		Messages: st.Engine.TotalMsgs,
		Bytes:    st.Engine.TotalBytes,
		WallNs:   st.Engine.Wall.Nanoseconds(),
	}
	if st.Engine.TotalMsgs > 0 {
		res.MsgsPerSec = float64(st.Engine.TotalMsgs) / secs
		res.NsPerMsg = float64(st.Engine.Wall.Nanoseconds()) / float64(st.Engine.TotalMsgs)
	}
	return res, nil
}

// RunKernels measures every KernelNames kernel across the given clique
// sizes and assembles the report.
func RunKernels(sizes []int) (*KernelsReport, error) {
	rep := &KernelsReport{
		Schema: "doryp20/bench-kernels/v1",
		Host:   CurrentHost(),
	}
	for _, n := range sizes {
		for _, name := range KernelNames {
			res, err := KernelRun(name, n)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}
