package bench

import (
	"context"
	"fmt"
	"math"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// HopsetObserver streams the hopset workload's progress: it is invoked
// synchronously with every engine round of every stage ("exact-apsp"
// or "approx-sssp") at clique size n — the tap ccbench's -progress
// line rides on during the long bench. A nil observer costs nothing.
type HopsetObserver func(stage string, n int, rs engine.RoundStats)

// HopsetResult is one measured hopset configuration: exact all-pairs
// APSP (distance-product repeated squaring) versus hopset-based
// (1+ε)-approximate SSSP on the same deterministic weighted G(n,p)
// instance, each on its own warm clique session. The headline column
// is the engine round counts: the hopset pipeline must beat exact
// APSP's, which is the whole reason the paper builds hopsets.
type HopsetResult struct {
	Name string `json:"name"`
	// N and P describe the G(n,p) instance.
	N int     `json:"n"`
	P float64 `json:"p"`
	// Beta, Eps, and Hubs record the hopset parameters actually used.
	Beta int     `json:"beta"`
	Eps  float64 `json:"eps"`
	Hubs int     `json:"hubs"`
	// ExactRounds / ExactMsgs / ExactWallNs account the exact APSP run.
	ExactRounds int    `json:"exact_rounds"`
	ExactMsgs   uint64 `json:"exact_msgs"`
	ExactWallNs int64  `json:"exact_wall_ns"`
	// ApproxRounds / ApproxMsgs / ApproxWallNs account the approximate
	// SSSP run (hopset construction plus relaxation, cumulatively).
	ApproxRounds int    `json:"approx_rounds"`
	ApproxMsgs   uint64 `json:"approx_msgs"`
	ApproxWallNs int64  `json:"approx_wall_ns"`
	// RoundsRatio is ApproxRounds / ExactRounds — below 1 means the
	// hopset pipeline wins.
	RoundsRatio float64 `json:"rounds_ratio"`
}

// HopsetReport is the serialized shape of BENCH_hopset.json.
type HopsetReport struct {
	Schema string `json:"schema"`
	Host
	Results []HopsetResult `json:"results"`
}

// hopsetParams picks the benchmark's hopset configuration for an
// n-vertex instance: β = 2·ceil(sqrt(n)) with a hub rate targeting
// ~1.5·sqrt(n) hubs, the sparse-hub regime where construction cost
// β·|hubs| ≈ 3n clearly undercuts exact APSP's ceil(log2 n) full
// squarings. eps = 0.5 exercises the rounding path.
func hopsetParams(n int) hopset.Params {
	rootN := math.Sqrt(float64(n))
	return hopset.Params{
		Beta:    2 * int(math.Ceil(rootN)),
		Eps:     0.5,
		HubRate: math.Min(1, 1.5*rootN/float64(n)),
		Seed:    7,
	}
}

// runKernelOnSession runs one kernel on a fresh session over g (built
// with opts) and returns the session's cumulative stats.
func runKernelOnSession(g *graph.CSR, k clique.Kernel, opts ...clique.Option) (clique.Stats, error) {
	s, err := clique.New(g, opts...)
	if err != nil {
		return clique.Stats{}, err
	}
	defer s.Close()
	if err := s.Run(context.Background(), k); err != nil {
		return clique.Stats{}, err
	}
	return s.Stats(), nil
}

// HopsetCompare measures exact APSP versus hopset-based approximate
// SSSP on one deterministic weighted G(n, p) instance.
func HopsetCompare(n int, p float64, seed int64) (HopsetResult, error) {
	return HopsetCompareObserved(n, p, seed, nil)
}

// HopsetCompareObserved is HopsetCompare with a per-round observer
// (nil is allowed and free).
func HopsetCompareObserved(n int, p float64, seed int64, obs HopsetObserver) (HopsetResult, error) {
	g := graph.RandomGNPWeighted(n, p, 32, seed)
	params := hopsetParams(n)
	stageOpts := func(stage string) []clique.Option {
		if obs == nil {
			return nil
		}
		return []clique.Option{clique.WithRoundHook(func(rs engine.RoundStats) { obs(stage, n, rs) })}
	}

	exact, err := runKernelOnSession(g, algo.NewAPSPKernel(), stageOpts("exact-apsp")...)
	if err != nil {
		return HopsetResult{}, fmt.Errorf("bench: hopset n=%d exact: %w", n, err)
	}
	ak := algo.NewApproxSSSPKernel(0, params)
	approx, err := runKernelOnSession(g, ak, stageOpts("approx-sssp")...)
	if err != nil {
		return HopsetResult{}, fmt.Errorf("bench: hopset n=%d approx: %w", n, err)
	}
	hs := ak.Hopset()

	res := HopsetResult{
		Name:         "hopset_approx_sssp_vs_exact_apsp",
		N:            n,
		P:            p,
		Beta:         hs.Beta,
		Eps:          hs.Eps,
		Hubs:         len(hs.Hubs),
		ExactRounds:  exact.Engine.Rounds,
		ExactMsgs:    exact.Engine.TotalMsgs,
		ExactWallNs:  exact.Engine.Wall.Nanoseconds(),
		ApproxRounds: approx.Engine.Rounds,
		ApproxMsgs:   approx.Engine.TotalMsgs,
		ApproxWallNs: approx.Engine.Wall.Nanoseconds(),
	}
	if exact.Engine.Rounds > 0 {
		res.RoundsRatio = float64(approx.Engine.Rounds) / float64(exact.Engine.Rounds)
	}
	return res, nil
}

// RunHopset measures the hopset workload across the given clique sizes
// and assembles the report.
func RunHopset(sizes []int, p float64, seed int64) (*HopsetReport, error) {
	return RunHopsetObserved(sizes, p, seed, nil)
}

// RunHopsetObserved is RunHopset with a per-round observer (nil is
// allowed and free) — the live-progress tap for the long bench.
func RunHopsetObserved(sizes []int, p float64, seed int64, obs HopsetObserver) (*HopsetReport, error) {
	rep := &HopsetReport{
		Schema: "doryp20/bench-hopset/v1",
		Host:   CurrentHost(),
	}
	for _, n := range sizes {
		res, err := HopsetCompareObserved(n, p, seed, obs)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
