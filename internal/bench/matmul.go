package bench

import (
	"fmt"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// MatmulResult is one measured distance-product configuration: a single
// squaring A ⊗ A of the reflexive (min,+) adjacency matrix of a
// weighted G(n,p) instance, executed through the round engine.
type MatmulResult struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	P          float64 `json:"p"`
	NNZIn      int     `json:"nnz_in"`
	NNZOut     int     `json:"nnz_out"`
	Rounds     int     `json:"rounds"`
	Messages   uint64  `json:"messages"`
	Bytes      uint64  `json:"bytes"`
	WallNs     int64   `json:"wall_ns"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	NsPerMsg   float64 `json:"ns_per_msg"`
	// NsPerEntry normalizes wall time by output entries — the unit a
	// sparsity-aware product must improve as later PRs add Dory-Parter
	// sparsification.
	NsPerEntry float64 `json:"ns_per_entry"`
}

// MatmulReport is the serialized shape of BENCH_matmul.json.
type MatmulReport struct {
	Schema string `json:"schema"`
	Host
	Results []MatmulResult `json:"results"`
}

// MatmulSquare measures one engine-executed distance-product squaring
// on a deterministic weighted G(n, p) instance.
func MatmulSquare(n int, p float64, seed int64) (MatmulResult, error) {
	g := graph.RandomGNP(n, p, seed).WithUniformRandomWeights(seed+1, 32)
	a, err := matmul.FromGraph(g, core.MinPlus(), true)
	if err != nil {
		return MatmulResult{}, fmt.Errorf("bench: matmul n=%d: %w", n, err)
	}
	c, stats, err := matmul.Mul(a, a, matmul.Options{Engine: engine.Options{}})
	if err != nil {
		return MatmulResult{}, fmt.Errorf("bench: matmul n=%d: %w", n, err)
	}
	secs := stats.Wall.Seconds()
	if secs <= 0 {
		secs = float64(time.Nanosecond) / float64(time.Second)
	}
	res := MatmulResult{
		Name:     "matmul_minplus_square",
		N:        n,
		P:        p,
		NNZIn:    a.NNZ(),
		NNZOut:   c.NNZ(),
		Rounds:   stats.Rounds,
		Messages: stats.TotalMsgs,
		Bytes:    stats.TotalBytes,
		WallNs:   stats.Wall.Nanoseconds(),
	}
	if stats.TotalMsgs > 0 {
		res.MsgsPerSec = float64(stats.TotalMsgs) / secs
		res.NsPerMsg = float64(stats.Wall.Nanoseconds()) / float64(stats.TotalMsgs)
	}
	if c.NNZ() > 0 {
		res.NsPerEntry = float64(stats.Wall.Nanoseconds()) / float64(c.NNZ())
	}
	return res, nil
}

// RunMatmul measures the distance-product squaring across the given
// clique sizes and assembles the report.
func RunMatmul(sizes []int, p float64, seed int64) (*MatmulReport, error) {
	rep := &MatmulReport{
		Schema: "doryp20/bench-matmul/v1",
		Host:   CurrentHost(),
	}
	for _, n := range sizes {
		res, err := MatmulSquare(n, p, seed)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}
