package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFloodSmoke(t *testing.T) {
	res, err := Flood(32, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := uint64(32 * 8 * 4)
	if res.Messages != wantMsgs {
		t.Errorf("Messages = %d, want %d", res.Messages, wantMsgs)
	}
	if res.Rounds != 5 { // 4 send-rounds + the quiet round
		t.Errorf("Rounds = %d, want 5", res.Rounds)
	}
	if res.MsgsPerSec <= 0 || res.NsPerMsg <= 0 || res.RoundsPerSec <= 0 {
		t.Errorf("non-positive rates: %+v", res)
	}
}

func TestFloodFanoutClamp(t *testing.T) {
	res, err := Flood(4, 2, 100) // fanout must clamp to n-1
	if err != nil {
		t.Fatal(err)
	}
	if res.Fanout != 3 {
		t.Errorf("Fanout = %d, want 3", res.Fanout)
	}
	if res.Messages != uint64(4*3*2) {
		t.Errorf("Messages = %d, want 24", res.Messages)
	}
}

func TestRunReport(t *testing.T) {
	rep, err := Run([]int{16, 32}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two aggregate flood entries plus the per-proc scaling ladder at
	// the largest size.
	want := 2 + len(ScalingProcs)
	if len(rep.Results) != want || rep.Results[0].N != 16 || rep.Results[1].N != 32 {
		t.Errorf("unexpected results: %+v", rep.Results)
	}
	for i, procs := range ScalingProcs {
		res := rep.Results[2+i]
		if res.Name != "engine_flood_procs" || res.N != 32 || res.Procs != procs {
			t.Errorf("scaling entry %d = %+v, want engine_flood_procs n=32 procs=%d",
				i, res, procs)
		}
	}
	if rep.Schema == "" || rep.CPUs <= 0 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}

func TestMatmulSquareSmoke(t *testing.T) {
	res, err := MatmulSquare(48, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Error("matmul bench routed no messages")
	}
	if res.Rounds <= 2 {
		t.Errorf("Rounds = %d, want > 2 (paced streaming)", res.Rounds)
	}
	if res.NNZIn == 0 || res.NNZOut < res.NNZIn {
		t.Errorf("suspicious sparsity: nnz_in=%d nnz_out=%d", res.NNZIn, res.NNZOut)
	}
}

func TestRunMatmulReport(t *testing.T) {
	rep, err := RunMatmul([]int{16, 32}, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].N != 16 || rep.Results[1].N != 32 {
		t.Errorf("unexpected results: %+v", rep.Results)
	}
	if rep.Schema == "" || rep.CPUs <= 0 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	rep := &Report{Schema: "test/v1", Host: CurrentHost()}
	if err := WriteJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("WriteJSON output must end with a newline")
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Schema != "test/v1" || back.GoVersion != rep.GoVersion {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	// Host fields must inline into the top-level object, not nest.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["goos"]; !ok {
		t.Error("host metadata not inlined into report JSON")
	}
	if err := WriteJSON(filepath.Join(path, "impossible", "x.json"), rep); err == nil {
		t.Error("WriteJSON to an impossible path must fail")
	}
}

func TestHopsetCompareSmoke(t *testing.T) {
	res, err := HopsetCompare(48, 0.12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactRounds == 0 || res.ApproxRounds == 0 || res.Hubs == 0 {
		t.Fatalf("degenerate measurement: %+v", res)
	}
	if res.ApproxRounds >= res.ExactRounds {
		t.Errorf("approx rounds %d >= exact %d — the hopset pipeline must win",
			res.ApproxRounds, res.ExactRounds)
	}
	if res.RoundsRatio <= 0 || res.RoundsRatio >= 1 {
		t.Errorf("RoundsRatio = %v, want in (0, 1)", res.RoundsRatio)
	}
}

func TestRunHopsetReport(t *testing.T) {
	rep, err := RunHopset([]int{24, 48}, 0.15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].N != 24 || rep.Results[1].N != 48 {
		t.Errorf("unexpected results: %+v", rep.Results)
	}
	if rep.Schema == "" || rep.CPUs <= 0 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}
