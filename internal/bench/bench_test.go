package bench

import "testing"

func TestFloodSmoke(t *testing.T) {
	res, err := Flood(32, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := uint64(32 * 8 * 4)
	if res.Messages != wantMsgs {
		t.Errorf("Messages = %d, want %d", res.Messages, wantMsgs)
	}
	if res.Rounds != 5 { // 4 send-rounds + the quiet round
		t.Errorf("Rounds = %d, want 5", res.Rounds)
	}
	if res.MsgsPerSec <= 0 || res.NsPerMsg <= 0 || res.RoundsPerSec <= 0 {
		t.Errorf("non-positive rates: %+v", res)
	}
}

func TestFloodFanoutClamp(t *testing.T) {
	res, err := Flood(4, 2, 100) // fanout must clamp to n-1
	if err != nil {
		t.Fatal(err)
	}
	if res.Fanout != 3 {
		t.Errorf("Fanout = %d, want 3", res.Fanout)
	}
	if res.Messages != uint64(4*3*2) {
		t.Errorf("Messages = %d, want 24", res.Messages)
	}
}

func TestRunReport(t *testing.T) {
	rep, err := Run([]int{16, 32}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].N != 16 || rep.Results[1].N != 32 {
		t.Errorf("unexpected results: %+v", rep.Results)
	}
	if rep.Schema == "" || rep.CPUs <= 0 {
		t.Errorf("incomplete metadata: %+v", rep)
	}
}
