// Package bench drives reproducible throughput measurements of the
// round engine and the matmul subsystem and emits machine-readable
// results (BENCH_engine.json, BENCH_matmul.json), so every future PR
// can compare against these baselines.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Host records the machine a report was measured on. It is embedded in
// every report type so the fields inline into the JSON object.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// CurrentHost captures the running machine's metadata.
func CurrentHost() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// WriteJSON marshals v with indentation, appends a trailing newline,
// and writes it to path — the one serialization used for every
// BENCH_*.json artifact, factored out of cmd/ccbench so it is
// unit-testable.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// Result is one measured configuration.
type Result struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	// Procs is the GOMAXPROCS the entry was measured at; 0 means the
	// process default (the per-proc scaling entries pin it explicitly).
	Procs        int     `json:"procs,omitempty"`
	Fanout       int     `json:"fanout"`
	Rounds       int     `json:"rounds"`
	Messages     uint64  `json:"messages"`
	Bytes        uint64  `json:"bytes"`
	WallNs       int64   `json:"wall_ns"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	MsgsPerSec   float64 `json:"msgs_per_sec"`
	NsPerMsg     float64 `json:"ns_per_msg"`
}

// Report is the serialized shape of BENCH_engine.json.
type Report struct {
	Schema string `json:"schema"`
	Host
	Results []Result `json:"results"`
}

// floodNode sends one word to each of its fanout ring successors every
// round for a fixed number of rounds — a pure communication workload
// that saturates the router without algorithmic noise.
type floodNode struct {
	n, fanout, rounds int
}

func (fn *floodNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	if int(r) >= fn.rounds {
		return nil
	}
	id := int(ctx.ID())
	for k := 1; k <= fn.fanout; k++ {
		if err := ctx.Send(core.NodeID((id+k)%fn.n), uint64(id)); err != nil {
			return err
		}
	}
	return nil
}

// Flood runs the flood workload on an n-node clique for the given
// number of send-rounds with the given per-node fanout.
func Flood(n, rounds, fanout int) (Result, error) {
	if fanout >= n {
		fanout = n - 1
	}
	nodes := make([]engine.Node, n)
	for i := range nodes {
		nodes[i] = &floodNode{n: n, fanout: fanout, rounds: rounds}
	}
	stats, err := engine.RunOnce(nodes, engine.Options{MaxRounds: rounds + 2})
	if err != nil {
		return Result{}, fmt.Errorf("bench: flood n=%d: %w", n, err)
	}
	secs := stats.Wall.Seconds()
	if secs <= 0 {
		secs = float64(time.Nanosecond) / float64(time.Second)
	}
	res := Result{
		Name:         "engine_flood",
		N:            n,
		Fanout:       fanout,
		Rounds:       stats.Rounds,
		Messages:     stats.TotalMsgs,
		Bytes:        stats.TotalBytes,
		WallNs:       stats.Wall.Nanoseconds(),
		RoundsPerSec: float64(stats.Rounds) / secs,
		MsgsPerSec:   float64(stats.TotalMsgs) / secs,
	}
	if stats.TotalMsgs > 0 {
		res.NsPerMsg = float64(stats.Wall.Nanoseconds()) / float64(stats.TotalMsgs)
	}
	return res, nil
}

// FloodAtProcs runs the flood workload with GOMAXPROCS pinned to procs
// for the duration of the run (restored afterwards), labeling the
// result with the proc count — the per-proc scaling entries the CI
// perf gate tracks so a parallelism regression in the engine or router
// cannot hide behind the default-procs aggregate.
func FloodAtProcs(n, rounds, fanout, procs int) (Result, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	res, err := Flood(n, rounds, fanout)
	if err != nil {
		return Result{}, fmt.Errorf("bench: flood procs=%d: %w", procs, err)
	}
	res.Name = "engine_flood_procs"
	res.Procs = procs
	return res, nil
}

// ScalingProcs is the GOMAXPROCS ladder the per-proc flood entries
// measure; the ladder is fixed (not clamped to the host CPU count) so
// entries always line up with committed baselines.
var ScalingProcs = []int{1, 2, 4}

// Run measures the flood workload across the given clique sizes —
// plus the per-proc scaling ladder at the largest size — and
// assembles the report.
func Run(sizes []int, rounds, fanout int) (*Report, error) {
	rep := &Report{
		Schema: "doryp20/bench/v1",
		Host:   CurrentHost(),
	}
	for _, n := range sizes {
		res, err := Flood(n, rounds, fanout)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	if len(sizes) > 0 {
		n := sizes[len(sizes)-1]
		for _, procs := range ScalingProcs {
			res, err := FloodAtProcs(n, rounds, fanout, procs)
			if err != nil {
				return nil, err
			}
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, nil
}
