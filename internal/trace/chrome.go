// Chrome trace-event JSON export. The format is the "JSON Object
// Format" of the Trace Event spec: {"traceEvents": [...]} where each
// event is a complete ("ph":"X") duration with microsecond ts/dur,
// pid = cluster rank, tid = lane. Perfetto and chrome://tracing load
// the file directly; tools/tracestat summarizes it.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// laneNames lists the well-known lanes and their Chrome thread names,
// in rendering order (a slice, not a map, so exports are diffable).
var laneNames = []struct {
	lane int32
	name string
}{
	{LaneRounds, "rounds"},
	{LanePhases, "phases"},
	{LanePasses, "passes"},
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

// writeArgs renders the span's fixed arg words under the keys the
// span's (Cat, Name) assigns them — the inverse of the encoding
// documented on Span.Arg.
func writeArgs(w io.Writer, s Span) {
	switch {
	case s.Cat == CatRound:
		fmt.Fprintf(w, `{"round":%d,"msgs":%d}`, s.Round, s.Arg)
	case s.Cat == CatPass:
		fmt.Fprintf(w, `{"pass":%d,"rounds":%d}`, s.Round, s.Arg)
	case s.Cat == CatPhase && s.Name == NameCompute:
		fmt.Fprintf(w, `{"round":%d,"barrier_wait_ns":%d}`, s.Round, s.Arg)
	default:
		fmt.Fprintf(w, `{"round":%d}`, s.Round)
	}
}

// WriteChrome writes the recorders' spans as one Chrome trace-event
// JSON document: every recorder contributes one process lane (pid =
// its rank), with its spans' lanes as named threads. Passing the
// per-rank recorders of one loopback cluster therefore merges the
// ranks into a single timeline. Spans are emitted in each recorder's
// recording order; the format does not require global ordering.
func WriteChrome(w io.Writer, recs ...*Recorder) error {
	bw := bufio.NewWriter(w)
	var dropped uint64
	spans := 0
	for _, r := range recs {
		dropped += r.Dropped()
		spans += r.Len()
	}
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"doryp20\",\"spans\":%d,\"dropped\":%d},\n", spans, dropped)
	fmt.Fprintf(bw, "\"traceEvents\":[")
	first := true
	emit := func(f string, args ...any) {
		if !first {
			bw.WriteString(",\n") //nolint:errcheck // error surfaces at Flush
		}
		first = false
		fmt.Fprintf(bw, f, args...)
	}
	for _, r := range recs {
		pid := r.Rank()
		emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			pid, jstr(fmt.Sprintf("rank %d", pid)))
		emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_sort_index","args":{"sort_index":%d}}`, pid, pid)
		for _, ln := range laneNames {
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, pid, ln.lane, jstr(ln.name))
			emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, pid, ln.lane, ln.lane)
		}
		for _, s := range r.Spans() {
			emit(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":%s,"ts":%.3f,"dur":%.3f,"args":`,
				pid, s.Lane, jstr(s.Name), jstr(s.Cat),
				float64(s.Start)/1e3, float64(s.Dur)/1e3)
			writeArgs(bw, s)
			bw.WriteString("}") //nolint:errcheck // error surfaces at Flush
		}
	}
	fmt.Fprintf(bw, "]}\n")
	return bw.Flush()
}

// WriteChromeFile is WriteChrome to a freshly created file — the shared
// export path of the ccbench and ccnode -trace flags.
func WriteChromeFile(path string, recs ...*Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteChrome(f, recs...); err != nil {
		f.Close()
		return fmt.Errorf("trace: %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}
