// Package trace is the repository's low-overhead tracing substrate: a
// preallocated ring-buffer span recorder the engine, the clique
// session, and the binaries feed timing spans into, plus a Chrome
// trace-event JSON exporter (chrome.go) whose output loads directly in
// Perfetto / chrome://tracing and summarizes through tools/tracestat.
//
// Design discipline mirrors the engine's testHooks: tracing must cost
// nothing measurable when disabled. Every producer holds a *Recorder
// that is nil when tracing is off and pays exactly one nil check per
// potential span; when tracing is on, Record copies one fixed-size
// Span value into a preallocated ring under a mutex — no maps, no
// interfaces, no per-span allocation. Span names and categories are
// package constants (static strings), so the hot path never formats.
//
// Lanes and ranks: a Span carries a Lane (rendered as a Chrome thread)
// and the Recorder carries a rank (rendered as a Chrome process), so a
// multi-rank run — one Recorder per rank — merges into one timeline
// with one process lane per rank. Recorders created together share a
// wall-clock epoch to microsecond precision, which is what makes the
// merged timeline coherent for in-process loopback clusters.
package trace

import (
	"sync"
	"time"
)

// Lanes are the Chrome "thread" rows of one rank's timeline, in
// rendering order.
const (
	// LaneRounds carries one envelope span per executed engine round.
	LaneRounds = 0
	// LanePhases carries the per-round phase breakdown: compute, then
	// exchange with the in-process scatter nested inside it.
	LanePhases = 1
	// LanePasses carries one span per clique kernel pass.
	LanePasses = 2
)

// Categories group spans for summarization (tools/tracestat keys its
// shares on these).
const (
	// CatRound marks whole-round envelope spans.
	CatRound = "round"
	// CatPhase marks intra-round phase spans (compute/scatter/exchange).
	CatPhase = "phase"
	// CatPass marks clique kernel pass spans.
	CatPass = "pass"
)

// Static span names for the engine's per-round phases. Producers must
// use constants (or otherwise long-lived strings) as span names — the
// recorder stores the string header only.
const (
	// NameRound is the whole-round envelope (Arg = messages routed).
	NameRound = "round"
	// NameCompute is phase A, all local node handlers to the barrier
	// (Arg = mean worker idle at the barrier, nanoseconds).
	NameCompute = "compute"
	// NameScatter is the in-process parallel scatter portion of the
	// exchange (zero-length and omitted on socket transports).
	NameScatter = "scatter"
	// NameExchange is phase B, the transport completing the round.
	NameExchange = "exchange"
)

// Span is one recorded interval. The fields are fixed-size on purpose:
// recording must not allocate, so the free-form "args" of the Chrome
// format are reduced to one Round/pass index and one Arg word whose
// meaning is keyed on (Cat, Name) — see the name constants and
// chrome.go's args rendering.
type Span struct {
	// Name labels the span; use a static string.
	Name string
	// Cat is the span's category (CatRound, CatPhase, CatPass).
	Cat string
	// Lane is the timeline row (Chrome tid) the span renders in.
	Lane int32
	// Start is the span's start in nanoseconds since the recorder's
	// epoch (use Recorder.Since).
	Start int64
	// Dur is the span's duration in nanoseconds.
	Dur int64
	// Round is the engine round or kernel pass index, -1 when not
	// applicable.
	Round int64
	// Arg is one free counter word; its meaning is keyed on (Cat, Name):
	// messages for round spans, barrier-wait nanoseconds for compute
	// spans, rounds for pass spans.
	Arg uint64
}

// DefaultCapacity is the ring size NewRecorder selects for capacity
// <= 0: at the engine's three spans per round it holds the trailing
// ~21k rounds (a Span is under 100 bytes, so the ring stays a few MiB).
const DefaultCapacity = 1 << 16

// Recorder accumulates spans into a preallocated ring buffer. When the
// ring is full the oldest spans are overwritten (and counted in
// Dropped), so a bounded recorder can trace an unbounded run and keep
// the most recent window. All methods are safe for concurrent use.
type Recorder struct {
	epoch time.Time

	mu      sync.Mutex
	rank    int
	buf     []Span
	next    int // ring cursor: index of the next write
	filled  int // live spans, <= len(buf)
	dropped uint64
}

// NewRecorder builds a recorder with a preallocated ring of the given
// span capacity (<= 0 selects DefaultCapacity). The epoch — the zero
// point of every Span.Start — is the call time, so recorders created
// together (one per rank of a loopback cluster) share one timeline.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		epoch: time.Now(),
		buf:   make([]Span, capacity),
	}
}

// SetRank tags every span of this recorder with a cluster rank,
// rendered as the Chrome process lane. The default rank is 0.
func (r *Recorder) SetRank(rank int) {
	r.mu.Lock()
	r.rank = rank
	r.mu.Unlock()
}

// Rank returns the recorder's cluster rank tag.
func (r *Recorder) Rank() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rank
}

// Epoch returns the recorder's time zero.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// Since converts an absolute time to Span.Start nanoseconds.
func (r *Recorder) Since(t time.Time) int64 { return int64(t.Sub(r.epoch)) }

// Record appends one span to the ring, overwriting the oldest span
// when full. It never allocates.
func (r *Recorder) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.filled < len(r.buf) {
		r.filled++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Len returns the number of live spans in the ring.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Dropped returns how many spans were overwritten because the ring
// was full — nonzero means the exported trace covers only the most
// recent window of the run.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Spans returns a copy of the live spans in recording order (oldest
// first) — chronological for single-goroutine producers like the
// engine's run loop.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.filled)
	if r.filled == len(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf[:r.filled]...)
	}
	return out
}
