package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func span(name, cat string, lane int32, start, dur int64) Span {
	return Span{Name: name, Cat: cat, Lane: lane, Start: start, Dur: dur, Round: start, Arg: uint64(dur)}
}

func TestRecorderOrderAndLen(t *testing.T) {
	r := NewRecorder(8)
	for i := int64(0); i < 5; i++ {
		r.Record(span(NameRound, CatRound, LaneRounds, i, 1))
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 5, 0", r.Len(), r.Dropped())
	}
	got := r.Spans()
	for i, s := range got {
		if s.Start != int64(i) {
			t.Fatalf("span %d has Start %d, want %d (chronological order)", i, s.Start, i)
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 10; i++ {
		r.Record(span(NameRound, CatRound, LaneRounds, i, 1))
	}
	if r.Len() != 4 {
		t.Fatalf("Len=%d, want the ring capacity 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped=%d, want 6", r.Dropped())
	}
	got := r.Spans()
	want := []int64{6, 7, 8, 9}
	for i, s := range got {
		if s.Start != want[i] {
			t.Fatalf("span %d has Start %d, want %d (oldest overwritten first)", i, s.Start, want[i])
		}
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if cap := len(r.buf); cap != DefaultCapacity {
		t.Fatalf("capacity %d, want DefaultCapacity %d", cap, DefaultCapacity)
	}
}

func TestSinceEpoch(t *testing.T) {
	r := NewRecorder(4)
	at := r.Epoch().Add(1500 * time.Nanosecond)
	if got := r.Since(at); got != 1500 {
		t.Fatalf("Since = %d, want 1500", got)
	}
}

// TestRecordNoAllocs pins the hot-path discipline: recording a span
// into a warm ring must not allocate.
func TestRecordNoAllocs(t *testing.T) {
	r := NewRecorder(1024)
	s := span(NameCompute, CatPhase, LanePhases, 1, 2)
	allocs := testing.AllocsPerRun(100, func() { r.Record(s) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				r.Record(span(NameRound, CatRound, LaneRounds, i, 1))
				r.Spans()
				r.Len()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 256 {
		t.Fatalf("Len=%d, want full ring 256", r.Len())
	}
}

// chromeDoc mirrors the exported JSON object shape.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		Spans   int    `json:"spans"`
		Dropped uint64 `json:"dropped"`
	} `json:"otherData"`
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeMergesRanks(t *testing.T) {
	r0 := NewRecorder(16)
	r1 := NewRecorder(16)
	r1.SetRank(1)
	r0.Record(Span{Name: NameRound, Cat: CatRound, Lane: LaneRounds, Start: 1000, Dur: 2000, Round: 0, Arg: 7})
	r0.Record(Span{Name: NameCompute, Cat: CatPhase, Lane: LanePhases, Start: 1000, Dur: 1500, Round: 0, Arg: 300})
	r1.Record(Span{Name: "bfs", Cat: CatPass, Lane: LanePasses, Start: 500, Dur: 4000, Round: 2, Arg: 9})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, r0, r1); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData.Spans != 3 || doc.OtherData.Dropped != 0 {
		t.Fatalf("otherData spans=%d dropped=%d, want 3, 0", doc.OtherData.Spans, doc.OtherData.Dropped)
	}

	pids := map[int]bool{}
	var rounds, phases, passes int
	for _, ev := range doc.TraceEvents {
		pids[ev.Pid] = true
		if ev.Ph != "X" {
			continue
		}
		switch ev.Cat {
		case CatRound:
			rounds++
			if ev.Ts != 1.0 || ev.Dur != 2.0 {
				t.Fatalf("round span ts=%v dur=%v, want microseconds 1, 2", ev.Ts, ev.Dur)
			}
			if ev.Args["msgs"] != float64(7) || ev.Args["round"] != float64(0) {
				t.Fatalf("round span args = %v", ev.Args)
			}
		case CatPhase:
			phases++
			if ev.Args["barrier_wait_ns"] != float64(300) {
				t.Fatalf("compute span args = %v", ev.Args)
			}
		case CatPass:
			passes++
			if ev.Pid != 1 || ev.Name != "bfs" {
				t.Fatalf("pass span pid=%d name=%q, want rank 1, bfs", ev.Pid, ev.Name)
			}
			if ev.Args["pass"] != float64(2) || ev.Args["rounds"] != float64(9) {
				t.Fatalf("pass span args = %v", ev.Args)
			}
		}
	}
	if rounds != 1 || phases != 1 || passes != 1 {
		t.Fatalf("span counts rounds=%d phases=%d passes=%d, want 1 each", rounds, phases, passes)
	}
	if !pids[0] || !pids[1] {
		t.Fatalf("expected both rank lanes (pid 0 and 1) in the merged export, got %v", pids)
	}

	// Metadata: both ranks carry process and thread names.
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if n, ok := ev.Args["name"].(string); ok {
				names[n]++
			}
		}
	}
	for _, want := range []string{"rank 0", "rank 1", "rounds", "phases", "passes"} {
		if names[want] == 0 {
			t.Fatalf("missing metadata name %q in %v", want, names)
		}
	}
}

func TestWriteChromeDroppedCount(t *testing.T) {
	r := NewRecorder(2)
	for i := int64(0); i < 5; i++ {
		r.Record(span(NameRound, CatRound, LaneRounds, i, 1))
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData.Dropped != 3 {
		t.Fatalf("dropped=%d, want 3", doc.OtherData.Dropped)
	}
}

func ExampleWriteChrome() {
	r := NewRecorder(8)
	r.Record(Span{Name: NameRound, Cat: CatRound, Lane: LaneRounds, Start: 0, Dur: 1000, Round: 0, Arg: 4})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, r); err != nil {
		panic(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		panic(err)
	}
	fmt.Println("valid:", doc["displayTimeUnit"])
	// Output: valid: ms
}
