package matmul

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	g := graph.Path(4).WithUniformRandomWeights(7, 50)
	m, err := FromGraph(g, core.MinPlus(), true)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMatrixRoundTrip: sparse matrices (including nil and 0-dimension)
// survive serialization exactly, semiring identity included.
func TestMatrixRoundTrip(t *testing.T) {
	for _, m := range []*Matrix{nil, testMatrix(t), Identity(1, core.BoolOrAnd()), {N: 0, Sr: core.MinPlus(), Rows: []int32{0}}} {
		var buf bytes.Buffer
		w := ckptio.NewWriter(&buf)
		WriteMatrix(w, m)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMatrix(ckptio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		if (m == nil) != (got == nil) {
			t.Fatalf("presence did not round-trip: in=%v out=%v", m, got)
		}
		if m == nil {
			continue
		}
		if got.N != m.N || got.Sr.Name != m.Sr.Name {
			t.Fatalf("shape/semiring: got %d/%s want %d/%s", got.N, got.Sr.Name, m.N, m.Sr.Name)
		}
		for i := core.NodeID(0); int(i) < m.N; i++ {
			for j := core.NodeID(0); int(j) < m.N; j++ {
				if got.At(i, j) != m.At(i, j) {
					t.Fatalf("entry (%d,%d): got %d want %d", i, j, got.At(i, j), m.At(i, j))
				}
			}
		}
	}
}

// TestDenseRoundTrip: dense matrices round-trip, including the nil and
// 0 x k cases.
func TestDenseRoundTrip(t *testing.T) {
	d := NewDense(3, 2, core.MinPlus())
	d.Row(1)[0] = 42
	d.Row(2)[1] = 0
	for _, in := range []*Dense{nil, d, NewDense(0, 5, core.BoolOrAnd())} {
		var buf bytes.Buffer
		w := ckptio.NewWriter(&buf)
		WriteDense(w, in)
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDense(ckptio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		if (in == nil) != (got == nil) {
			t.Fatalf("presence did not round-trip")
		}
		if in == nil {
			continue
		}
		if got.N != in.N || got.K != in.K || got.Sr.Name != in.Sr.Name || !reflect.DeepEqual(got.Vals, in.Vals) {
			t.Fatalf("dense did not round-trip: got %+v want %+v", got, in)
		}
	}
}

// TestCorruptMatrixRejected: structurally invalid CSR blobs (offsets
// out of order, columns out of range) fail Validate on read rather
// than producing a plausible matrix.
func TestCorruptMatrixRejected(t *testing.T) {
	encode := func(rows []int32, cols []core.NodeID, vals []int64) []byte {
		var buf bytes.Buffer
		w := ckptio.NewWriter(&buf)
		w.Bool(true)
		w.I64(2)
		w.String("minplus")
		w.I32s(rows)
		w.NodeIDs(cols)
		w.I64s(vals)
		return buf.Bytes()
	}
	for name, data := range map[string][]byte{
		"non-monotone offsets": encode([]int32{0, 2, 1}, []core.NodeID{0, 1}, []int64{1, 2}),
		"column out of range":  encode([]int32{0, 1, 2}, []core.NodeID{0, 9}, []int64{1, 2}),
		"offset span mismatch": encode([]int32{0, 1, 5}, []core.NodeID{0, 1}, []int64{1, 2}),
	} {
		if _, err := ReadMatrix(ckptio.NewReader(bytes.NewReader(data))); err == nil {
			t.Errorf("%s decoded without error", name)
		}
	}
}

// TestUnknownSemiringRejected: a checkpoint naming a semiring this
// build does not know fails with a descriptive error.
func TestUnknownSemiringRejected(t *testing.T) {
	m := testMatrix(t)
	m.Sr.Name = "maxtimes"
	var buf bytes.Buffer
	w := ckptio.NewWriter(&buf)
	WriteMatrix(w, m)
	if _, err := ReadMatrix(ckptio.NewReader(bytes.NewReader(buf.Bytes()))); err == nil {
		t.Fatal("unknown semiring accepted")
	}
}
