package matmul

import (
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// bruteMul is an At-based O(n^3) oracle for the semiring product.
func bruteMul(a, b *Matrix) [][]int64 {
	sr := a.Sr
	out := make([][]int64, a.N)
	for i := 0; i < a.N; i++ {
		out[i] = make([]int64, a.N)
		for j := 0; j < a.N; j++ {
			acc := sr.Zero
			for k := 0; k < a.N; k++ {
				acc = sr.Add(acc, sr.Mul(a.At(core.NodeID(i), core.NodeID(k)), b.At(core.NodeID(k), core.NodeID(j))))
			}
			out[i][j] = acc
		}
	}
	return out
}

func matrixEqualsDenseOracle(t *testing.T, c *Matrix, want [][]int64) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	for i := 0; i < c.N; i++ {
		for j := 0; j < c.N; j++ {
			if got := c.At(core.NodeID(i), core.NodeID(j)); got != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func testGraphs(t *testing.T) []*graph.CSR {
	t.Helper()
	gs := []*graph.CSR{
		graph.Path(6).WithUniformRandomWeights(1, 9),
		graph.Grid(3, 4).WithUniformRandomWeights(2, 5),
		graph.Clique(5).WithUniformRandomWeights(3, 7),
		graph.RandomGNP(17, 0.3, 42).WithUniformRandomWeights(4, 16),
		graph.RandomGNP(9, 0.05, 7).WithUniformRandomWeights(5, 3), // likely disconnected
	}
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced invalid graph: %v", err)
		}
	}
	return gs
}

func TestMulRefAgainstBruteForce(t *testing.T) {
	for _, sr := range []core.Semiring{core.MinPlus(), core.BoolOrAnd()} {
		for gi, g := range testGraphs(t) {
			gg := g
			if sr.Name == "booland" {
				gg = &graph.CSR{N: g.N, Offsets: g.Offsets, Targets: g.Targets} // drop weights
			}
			a, err := FromGraph(gg, sr, true)
			if err != nil {
				t.Fatalf("FromGraph(%s, g%d): %v", sr.Name, gi, err)
			}
			c, err := MulRef(a, a)
			if err != nil {
				t.Fatalf("MulRef(%s, g%d): %v", sr.Name, gi, err)
			}
			matrixEqualsDenseOracle(t, c, bruteMul(a, a))
		}
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	sr := core.MinPlus()
	g := graph.RandomGNP(12, 0.4, 9).WithUniformRandomWeights(6, 10)
	a, err := FromGraph(g, sr, false)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	id := Identity(a.N, sr)
	left, err := MulRef(id, a)
	if err != nil {
		t.Fatalf("MulRef(I, A): %v", err)
	}
	right, err := MulRef(a, id)
	if err != nil {
		t.Fatalf("MulRef(A, I): %v", err)
	}
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			want := a.At(core.NodeID(i), core.NodeID(j))
			if got := left.At(core.NodeID(i), core.NodeID(j)); got != want {
				t.Fatalf("(I*A)[%d][%d] = %d, want %d", i, j, got, want)
			}
			if got := right.At(core.NodeID(i), core.NodeID(j)); got != want {
				t.Fatalf("(A*I)[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFromGraphReflexiveDiagonal(t *testing.T) {
	sr := core.MinPlus()
	g := graph.RandomGNP(10, 0.3, 11).WithUniformRandomWeights(7, 4)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	for v := 0; v < a.N; v++ {
		if got := a.At(core.NodeID(v), core.NodeID(v)); got != sr.One {
			t.Fatalf("diag[%d] = %d, want One=%d", v, got, sr.One)
		}
		cols, ws := g.Row(core.NodeID(v))
		for i, u := range cols {
			if got := a.At(core.NodeID(v), u); got != ws[i] {
				t.Fatalf("A[%d][%d] = %d, want weight %d", v, u, got, ws[i])
			}
		}
	}
	if a.NNZ() != g.NumArcs()+g.N {
		t.Fatalf("NNZ = %d, want arcs+diag = %d", a.NNZ(), g.NumArcs()+g.N)
	}
}

// TestFromGraphBooleanIgnoresWeights: over BoolOrAnd an edge is "true"
// regardless of any weights, so reachability products stay correct on
// weighted graphs (raw weights would poison bitwise and/or).
func TestFromGraphBooleanIgnoresWeights(t *testing.T) {
	sr := core.BoolOrAnd()
	g := graph.Path(3).WithUniformRandomWeights(1, 10) // weights 1..10, some even
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	for _, v := range a.Vals {
		if v != 1 {
			t.Fatalf("boolean adjacency stored value %d, want 1", v)
		}
	}
	c, err := MulRef(a, a)
	if err != nil {
		t.Fatalf("MulRef: %v", err)
	}
	if got := c.At(0, 2); got != 1 {
		t.Fatalf("2-hop reachability 0->2 = %d, want 1", got)
	}
}

// TestFromGraphUnweightedMinPlusCountsHops: unweighted edges cost 1
// over (min,+), not One=0, so powers yield hop counts.
func TestFromGraphUnweightedMinPlusCountsHops(t *testing.T) {
	sr := core.MinPlus()
	a, err := FromGraph(graph.Path(4), sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	c, err := MulRef(a, a)
	if err != nil {
		t.Fatalf("MulRef: %v", err)
	}
	if got := c.At(0, 2); got != 2 {
		t.Fatalf("2-hop distance 0->2 = %d, want 2", got)
	}
	if got := c.At(0, 1); got != 1 {
		t.Fatalf("distance 0->1 = %d, want 1", got)
	}
}

// TestFromGraphFoldsSelfLoops: a hand-built CSR carrying a self-loop
// must not produce a duplicate diagonal column in the reflexive matrix;
// the loop folds into the diagonal via sr.Add.
func TestFromGraphFoldsSelfLoops(t *testing.T) {
	g := &graph.CSR{
		N:       2,
		Offsets: []int32{0, 2, 3},
		Targets: []core.NodeID{0, 1, 0},
		Weights: []int64{5, 2, 2},
	}
	a, err := FromGraph(g, core.MinPlus(), true)
	if err != nil {
		t.Fatalf("FromGraph on self-loop CSR: %v", err)
	}
	if got := a.At(0, 0); got != 0 { // min(One=0, loop weight 5)
		t.Fatalf("diag[0] = %d, want 0", got)
	}
	cols, _ := a.Row(0)
	if len(cols) != 2 {
		t.Fatalf("row 0 has %d entries, want 2 (no duplicate diagonal)", len(cols))
	}
}

func TestDimensionAndSemiringMismatch(t *testing.T) {
	a := Identity(4, core.MinPlus())
	b := Identity(5, core.MinPlus())
	if _, err := MulRef(a, b); err == nil {
		t.Fatal("MulRef accepted mismatched dimensions")
	}
	c := Identity(4, core.BoolOrAnd())
	if _, err := MulRef(a, c); err == nil {
		t.Fatal("MulRef accepted mismatched semirings")
	}
}

func TestWireFormatRoundTrip(t *testing.T) {
	for _, cols := range []int{1, 2, 7, 64, 1000} {
		wf := newWireFormat(cols)
		for _, j := range []int{0, 1, cols - 1} {
			for _, val := range []int64{0, 1, wf.maxVal} {
				gj, gv := wf.unpack(wf.pack(j, val))
				if gj != j || gv != val {
					t.Fatalf("cols=%d: pack/unpack(%d,%d) = (%d,%d)", cols, j, val, gj, gv)
				}
			}
		}
	}
}

func TestCheckPackableRejectsOversized(t *testing.T) {
	wf := newWireFormat(256) // 8 index bits, 56 value bits
	if err := wf.checkPackable([]int64{0, 5, wf.maxVal}, core.InfWeight, "matrix"); err != nil {
		t.Fatalf("in-range values rejected: %v", err)
	}
	if err := wf.checkPackable([]int64{wf.maxVal + 1}, core.InfWeight, "matrix"); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := wf.checkPackable([]int64{-3}, core.InfWeight, "matrix"); err == nil {
		t.Fatal("negative value accepted")
	}
	// Semiring Zero is exempt: it is never transmitted.
	if err := wf.checkPackable([]int64{core.InfWeight}, core.InfWeight, "matrix"); err != nil {
		t.Fatalf("Zero sentinel rejected: %v", err)
	}
}
