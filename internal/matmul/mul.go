package matmul

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Options configures a distributed product.
type Options struct {
	// Engine configures the underlying round engine (workers, budget,
	// MaxRounds). The zero value selects the engine defaults, including
	// the canonical one-word-per-link budget.
	Engine engine.Options
	// Unpaced disables the Outbox pacing of response streams: each
	// responder pushes its entire row to every requester within a
	// single round. Any row larger than the per-link message cap then
	// exceeds the bandwidth budget and the product fails with a
	// *engine.BandwidthError. This mode exists to demonstrate (and
	// regression-test) why the balanced multi-round schedule is
	// necessary; real callers leave it off.
	Unpaced bool
}

// The wire format packs one matrix entry (column index, value) into a
// single Theta(log n)-bit message word: the column in the top
// Log2Ceil(cols) bits, the value in the remaining low bits. wireFormat
// captures the split for one product.
type wireFormat struct {
	valBits uint
	valMask uint64
	maxVal  int64
}

func newWireFormat(cols int) wireFormat {
	idxBits := uint(core.Log2Ceil(cols))
	if idxBits == 0 {
		idxBits = 1 // keep valBits < 64 so shifts stay defined
	}
	valBits := 64 - idxBits
	wf := wireFormat{valBits: valBits, valMask: 1<<valBits - 1}
	wf.maxVal = int64(wf.valMask)
	return wf
}

func (wf wireFormat) pack(j int, val int64) uint64 {
	return uint64(j)<<wf.valBits | uint64(val)
}

func (wf wireFormat) unpack(w uint64) (j int, val int64) {
	return int(w >> wf.valBits), int64(w & wf.valMask)
}

// checkPackable verifies that every value in vals fits the wire
// format's value field (semiring Zero values are exempt because they
// are never transmitted).
func (wf wireFormat) checkPackable(vals []int64, zero int64, what string) error {
	for _, v := range vals {
		if v == zero {
			continue
		}
		if v < 0 || v > wf.maxVal {
			return fmt.Errorf(
				"matmul: %s value %d does not fit the %d-bit wire value field [0, %d]",
				what, v, wf.valBits, wf.maxVal)
		}
	}
	return nil
}

// mulNode executes one node's share of a distributed product C = A ⊗ B.
// Node v owns row v of A, row v of B (pre-packed into wire words), and
// accumulates row v of C. The protocol is globally phased:
//
//	round 0:    v sends one request word to every k in supp(A[v]),
//	            k != v, and folds in the local k = v contribution.
//	round 1:    inboxes hold only requests; v enqueues its packed B-row
//	            for each requester on its Outbox and starts flushing.
//	rounds >=2: inboxes hold only data words; v accumulates
//	            C[v][j] = Add(C[v][j], Mul(A[v][k], B[k][j])) for each
//	            word received from k, and keeps flushing its Outbox.
//
// The engine's quiescence detection ends the run once every Outbox has
// drained: the round after the last data word is delivered, no node
// sends anything.
type mulNode struct {
	sr     core.Semiring
	wf     wireFormat
	aCols  []core.NodeID
	aVals  []int64
	packed []uint64 // this node's row of B, in wire format
	acc    []int64  // this node's row of C, dense
	ob     *engine.Outbox
	unpace bool
}

// lookupA returns A[v][k] for this node's row, which exists whenever a
// data word from k arrives (we only requested rows we can use).
func (nd *mulNode) lookupA(k core.NodeID) (int64, bool) {
	i := sort.Search(len(nd.aCols), func(i int) bool { return nd.aCols[i] >= k })
	if i < len(nd.aCols) && nd.aCols[i] == k {
		return nd.aVals[i], true
	}
	return nd.sr.Zero, false
}

func (nd *mulNode) accumulate(aik int64, words []uint64) {
	for _, w := range words {
		j, val := nd.wf.unpack(w)
		nd.acc[j] = nd.sr.Add(nd.acc[j], nd.sr.Mul(aik, val))
	}
}

func (nd *mulNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	switch r {
	case 0:
		if avv, ok := nd.lookupA(ctx.ID()); ok {
			nd.accumulate(avv, nd.packed)
		}
		for _, k := range nd.aCols {
			if k == ctx.ID() {
				continue
			}
			if err := ctx.Send(k, 0); err != nil {
				return err
			}
		}
		return nil
	case 1:
		for _, m := range inbox {
			if nd.unpace {
				for _, w := range nd.packed {
					if err := ctx.Send(m.Src, w); err != nil {
						return err
					}
				}
			} else {
				// By reference: every requester streams from the same
				// packed row, O(1) bookkeeping per requester instead
				// of one copy each.
				nd.ob.PushShared(m.Src, nd.packed)
			}
		}
		if nd.ob != nil {
			return nd.ob.Flush(ctx)
		}
		return nil
	default:
		// Deterministic inbox order delivers each sender's words in
		// contiguous runs, so caching the last (src, A[v][src]) pair
		// removes the per-word binary search from the dominant loop.
		lastSrc := core.NodeID(-1)
		var aik int64
		for _, m := range inbox {
			if m.Src != lastSrc {
				var ok bool
				aik, ok = nd.lookupA(m.Src)
				if !ok {
					return fmt.Errorf("matmul: node %d got unsolicited data from %d", ctx.ID(), m.Src)
				}
				lastSrc = m.Src
			}
			j, val := nd.wf.unpack(m.Payload)
			nd.acc[j] = nd.sr.Add(nd.acc[j], nd.sr.Mul(aik, val))
		}
		if nd.ob != nil {
			return nd.ob.Flush(ctx)
		}
		return nil
	}
}

// Pass is one validated, packed distributed product C = A ⊗ B prepared
// as a single engine pass: n mulNodes, node v holding row v of both
// operands and accumulating row v of C. Kernels hand a Pass's Nodes to
// a clique session and harvest the result with Sparse or Dense after
// the pass quiesces — the unit that pipeline kernels (repeated
// squaring, hopset powering, k-source relaxation) chain on one warm
// session.
type Pass struct {
	n, cols int
	sr      core.Semiring
	maxRow  int
	nodes   []engine.Node
	accs    [][]int64
	flat    []int64

	// gather synchronizes the accumulator slab across transport ranks
	// at harvest time (nil for purely local runs); gathered makes
	// Gather idempotent across the repeated harvest calls the pipeline
	// kernels make.
	gather   engine.Gatherer
	gathered bool
}

// SetGatherer wires the transport's all-gather into the pass's
// harvest. The clique session injects its transport here (via the
// kernels' TransportAware hooks) before the pass runs; single-rank
// transports make Gather a no-op.
func (p *Pass) SetGatherer(g engine.Gatherer) { p.gather = g }

// Gather synchronizes the accumulated result slab across all ranks of
// the session's transport — each rank contributes the rows of the
// nodes it executed. It must run after the pass's engine run quiesced
// and before Sparse or Dense; calling it again is a no-op.
func (p *Pass) Gather() error {
	if p.gathered {
		return nil
	}
	if p.gather != nil && len(p.flat) > 0 {
		if err := p.gather.AllGatherRows(p.flat, p.cols); err != nil {
			return err
		}
	}
	p.gathered = true
	return nil
}

// NewPass validates and packs the sparse product A ⊗ B. unpaced selects
// the budget-violating single-round response mode used only to
// regression-test the pacing (see Options.Unpaced).
func NewPass(a, b *Matrix, unpaced bool) (*Pass, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, err
	}
	wf := newWireFormat(a.N)
	if err := wf.checkPackable(b.Vals, b.Sr.Zero, "matrix"); err != nil {
		return nil, err
	}
	return newPass(a, packRows(b, wf), a.N, wf, unpaced), nil
}

// NewDensePass validates and packs the sparse-dense product A ⊗ B with
// B (and C) n x k dense. Zero entries of B are not transmitted.
func NewDensePass(a *Matrix, b *Dense, unpaced bool) (*Pass, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, err
	}
	wf := newWireFormat(b.K)
	if err := wf.checkPackable(b.Vals, b.Sr.Zero, "dense"); err != nil {
		return nil, err
	}
	packed := make([][]uint64, b.N)
	for v := 0; v < b.N; v++ {
		row := b.Row(core.NodeID(v))
		words := make([]uint64, 0, len(row))
		for j, val := range row {
			if val == b.Sr.Zero {
				continue
			}
			words = append(words, wf.pack(j, val))
		}
		packed[v] = words
	}
	return newPass(a, packed, b.K, wf, unpaced), nil
}

// newPass wires n mulNodes (node v holding packed B-row packed[v] and a
// cols-wide accumulator) over a flat n*cols result slab.
func newPass(a *Matrix, packed [][]uint64, cols int, wf wireFormat, unpaced bool) *Pass {
	n := a.N
	p := &Pass{
		n:    n,
		cols: cols,
		sr:   a.Sr,
		accs: make([][]int64, n),
		flat: make([]int64, n*cols),
	}
	for _, row := range packed {
		if len(row) > p.maxRow {
			p.maxRow = len(row)
		}
	}
	if a.Sr.Zero != 0 {
		for i := range p.flat {
			p.flat[i] = a.Sr.Zero
		}
	}
	p.nodes = make([]engine.Node, n)
	state := make([]mulNode, n)
	for v := 0; v < n; v++ {
		aCols, aVals := a.Row(core.NodeID(v))
		p.accs[v] = p.flat[v*cols : (v+1)*cols]
		state[v] = mulNode{
			sr:     a.Sr,
			wf:     wf,
			aCols:  aCols,
			aVals:  aVals,
			packed: packed[v],
			acc:    p.accs[v],
			unpace: unpaced,
		}
		if !unpaced {
			state[v].ob = engine.NewOutbox(n)
		}
		p.nodes[v] = &state[v]
	}
	return p
}

// Nodes returns the pass's node set for one engine run.
func (p *Pass) Nodes() []engine.Node { return p.nodes }

// MaxRoundsHint sizes the round bound from the widest packed row: the
// paced drain of that row takes ~len rounds at one word per link per
// round, which for dense operands (K columns) can exceed the engine's
// n-scaled 4n+64 default. Sizing from the actual data means legal
// products never hit engine.ErrMaxRounds.
func (p *Pass) MaxRoundsHint() int { return 4*p.n + 64 + p.maxRow }

// Sparse assembles the accumulated result as a sparse Matrix. Call it
// only after the pass's engine run has quiesced.
func (p *Pass) Sparse() *Matrix {
	bld := newBuilder(p.n, p.sr)
	for _, acc := range p.accs {
		bld.appendRow(acc)
	}
	return bld.m
}

// Dense returns the accumulated result as an n x cols Dense — the
// accumulator slab already is the row-major result, so this is
// copy-free. Call it only after the pass's engine run has quiesced.
func (p *Pass) Dense() *Dense {
	return &Dense{N: p.n, K: p.cols, Sr: p.sr, Vals: p.flat}
}

// packRows converts each sparse row of b into wire words.
func packRows(b *Matrix, wf wireFormat) [][]uint64 {
	packed := make([][]uint64, b.N)
	for v := 0; v < b.N; v++ {
		cols, vals := b.Row(core.NodeID(v))
		row := make([]uint64, len(cols))
		for i, j := range cols {
			row[i] = wf.pack(int(j), vals[i])
		}
		packed[v] = row
	}
	return packed
}

// runKernel executes one matmul kernel on a throwaway graph-free
// session sized n — the bridge that keeps the free-function entry
// points as thin wrappers over the session API (see clique.OneShot for
// the stats contract).
func runKernel(n int, k clique.Kernel, eopts engine.Options) (*engine.Stats, error) {
	s, err := clique.NewSize(n, clique.WithEngineOptions(eopts))
	if err != nil {
		return nil, err
	}
	return clique.OneShot(s, k)
}

// Mul computes the sparse product C = A ⊗ B on the round engine: n
// clique nodes, node v holding row v of each operand, communicating
// only bounded words through the sharded router under the per-link
// budget. The returned stats are the engine's own accounting of the
// product — rounds executed and words routed. Values of B must fit the
// wire format's value field (64 - ceil(log2 n) bits); the product fails
// fast with a descriptive error otherwise. Mul is a thin wrapper over
// running a MulKernel on a single-use clique session.
func Mul(a, b *Matrix, opts Options) (*Matrix, *engine.Stats, error) {
	k := &MulKernel{a: a, b: b, unpaced: opts.Unpaced}
	stats, err := runKernel(a.N, k, opts.Engine)
	if err != nil {
		return nil, stats, err
	}
	return k.Product(), stats, nil
}

// MulDense computes the sparse-dense product C = A ⊗ B on the round
// engine, with B and C n x k dense (k is typically a small set of
// sources whose distance columns are being relaxed). Zero entries of B
// are not transmitted; values must fit 64 - ceil(log2 k) bits. MulDense
// is a thin wrapper over running a MulDenseKernel on a single-use
// clique session.
func MulDense(a *Matrix, b *Dense, opts Options) (*Dense, *engine.Stats, error) {
	k := &MulDenseKernel{a: a, b: b, unpaced: opts.Unpaced}
	stats, err := runKernel(a.N, k, opts.Engine)
	if err != nil {
		return nil, stats, err
	}
	return k.Product(), stats, nil
}
