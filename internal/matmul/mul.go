package matmul

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Options configures a distributed product.
type Options struct {
	// Engine configures the underlying round engine (workers, budget,
	// MaxRounds). The zero value selects the engine defaults, including
	// the canonical one-word-per-link budget.
	Engine engine.Options
	// Unpaced disables the Outbox pacing of response streams: each
	// responder pushes its entire row to every requester within a
	// single round. Any row larger than the per-link message cap then
	// exceeds the bandwidth budget and the product fails with a
	// *engine.BandwidthError. This mode exists to demonstrate (and
	// regression-test) why the balanced multi-round schedule is
	// necessary; real callers leave it off.
	Unpaced bool
}

// The wire format packs one matrix entry (column index, value) into a
// single Theta(log n)-bit message word: the column in the top
// Log2Ceil(cols) bits, the value in the remaining low bits. wireFormat
// captures the split for one product.
type wireFormat struct {
	valBits uint
	valMask uint64
	maxVal  int64
}

func newWireFormat(cols int) wireFormat {
	idxBits := uint(core.Log2Ceil(cols))
	if idxBits == 0 {
		idxBits = 1 // keep valBits < 64 so shifts stay defined
	}
	valBits := 64 - idxBits
	wf := wireFormat{valBits: valBits, valMask: 1<<valBits - 1}
	wf.maxVal = int64(wf.valMask)
	return wf
}

func (wf wireFormat) pack(j int, val int64) uint64 {
	return uint64(j)<<wf.valBits | uint64(val)
}

func (wf wireFormat) unpack(w uint64) (j int, val int64) {
	return int(w >> wf.valBits), int64(w & wf.valMask)
}

// checkPackable verifies that every value in vals fits the wire
// format's value field (semiring Zero values are exempt because they
// are never transmitted).
func (wf wireFormat) checkPackable(vals []int64, zero int64, what string) error {
	for _, v := range vals {
		if v == zero {
			continue
		}
		if v < 0 || v > wf.maxVal {
			return fmt.Errorf(
				"matmul: %s value %d does not fit the %d-bit wire value field [0, %d]",
				what, v, wf.valBits, wf.maxVal)
		}
	}
	return nil
}

// mulNode executes one node's share of a distributed product C = A ⊗ B.
// Node v owns row v of A, row v of B (pre-packed into wire words), and
// accumulates row v of C. The protocol is globally phased:
//
//	round 0:    v sends one request word to every k in supp(A[v]),
//	            k != v, and folds in the local k = v contribution.
//	round 1:    inboxes hold only requests; v enqueues its packed B-row
//	            for each requester on its Outbox and starts flushing.
//	rounds >=2: inboxes hold only data words; v accumulates
//	            C[v][j] = Add(C[v][j], Mul(A[v][k], B[k][j])) for each
//	            word received from k, and keeps flushing its Outbox.
//
// The engine's quiescence detection ends the run once every Outbox has
// drained: the round after the last data word is delivered, no node
// sends anything.
type mulNode struct {
	sr     core.Semiring
	wf     wireFormat
	aCols  []core.NodeID
	aVals  []int64
	packed []uint64 // this node's row of B, in wire format
	acc    []int64  // this node's row of C, dense
	ob     *engine.Outbox
	unpace bool
}

// lookupA returns A[v][k] for this node's row, which exists whenever a
// data word from k arrives (we only requested rows we can use).
func (nd *mulNode) lookupA(k core.NodeID) (int64, bool) {
	i := sort.Search(len(nd.aCols), func(i int) bool { return nd.aCols[i] >= k })
	if i < len(nd.aCols) && nd.aCols[i] == k {
		return nd.aVals[i], true
	}
	return nd.sr.Zero, false
}

func (nd *mulNode) accumulate(aik int64, words []uint64) {
	for _, w := range words {
		j, val := nd.wf.unpack(w)
		nd.acc[j] = nd.sr.Add(nd.acc[j], nd.sr.Mul(aik, val))
	}
}

func (nd *mulNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	switch r {
	case 0:
		if avv, ok := nd.lookupA(ctx.ID()); ok {
			nd.accumulate(avv, nd.packed)
		}
		for _, k := range nd.aCols {
			if k == ctx.ID() {
				continue
			}
			if err := ctx.Send(k, 0); err != nil {
				return err
			}
		}
		return nil
	case 1:
		for _, m := range inbox {
			if nd.unpace {
				for _, w := range nd.packed {
					if err := ctx.Send(m.Src, w); err != nil {
						return err
					}
				}
			} else {
				// By reference: every requester streams from the same
				// packed row, O(1) bookkeeping per requester instead
				// of one copy each.
				nd.ob.PushShared(m.Src, nd.packed)
			}
		}
		if nd.ob != nil {
			return nd.ob.Flush(ctx)
		}
		return nil
	default:
		// Deterministic inbox order delivers each sender's words in
		// contiguous runs, so caching the last (src, A[v][src]) pair
		// removes the per-word binary search from the dominant loop.
		lastSrc := core.NodeID(-1)
		var aik int64
		for _, m := range inbox {
			if m.Src != lastSrc {
				var ok bool
				aik, ok = nd.lookupA(m.Src)
				if !ok {
					return fmt.Errorf("matmul: node %d got unsolicited data from %d", ctx.ID(), m.Src)
				}
				lastSrc = m.Src
			}
			j, val := nd.wf.unpack(m.Payload)
			nd.acc[j] = nd.sr.Add(nd.acc[j], nd.sr.Mul(aik, val))
		}
		if nd.ob != nil {
			return nd.ob.Flush(ctx)
		}
		return nil
	}
}

// runProduct wires n mulNodes (node v holding packed B-row packed[v]
// and a cols-wide accumulator) into the engine and runs to quiescence.
// It returns the per-node accumulator rows — views tiling the flat
// n*cols slab, also returned so dense callers can wrap it without
// copying — plus the run's stats.
func runProduct(a *Matrix, packed [][]uint64, cols int, wf wireFormat, opts Options) ([][]int64, []int64, *engine.Stats, error) {
	n := a.N
	if opts.Engine.MaxRounds <= 0 {
		// The paced drain of the widest row takes ~len rounds at one
		// word per link per round, which for dense operands (K columns)
		// can exceed the engine's n-scaled default of 4n+64. Size the
		// bound from the actual widest row so legal products never hit
		// ErrMaxRounds.
		maxRow := 0
		for _, row := range packed {
			if len(row) > maxRow {
				maxRow = len(row)
			}
		}
		opts.Engine.MaxRounds = 4*n + 64 + maxRow
	}
	nodes := make([]engine.Node, n)
	state := make([]mulNode, n)
	accs := make([][]int64, n)
	flat := make([]int64, n*cols)
	if a.Sr.Zero != 0 {
		for i := range flat {
			flat[i] = a.Sr.Zero
		}
	}
	for v := 0; v < n; v++ {
		aCols, aVals := a.Row(core.NodeID(v))
		accs[v] = flat[v*cols : (v+1)*cols]
		state[v] = mulNode{
			sr:     a.Sr,
			wf:     wf,
			aCols:  aCols,
			aVals:  aVals,
			packed: packed[v],
			acc:    accs[v],
			unpace: opts.Unpaced,
		}
		if !opts.Unpaced {
			state[v].ob = engine.NewOutbox(n)
		}
		nodes[v] = &state[v]
	}
	stats, err := engine.New(nodes, opts.Engine).Run()
	if err != nil {
		return nil, nil, stats, err
	}
	return accs, flat, stats, nil
}

// packRows converts each sparse row of b into wire words.
func packRows(b *Matrix, wf wireFormat) [][]uint64 {
	packed := make([][]uint64, b.N)
	for v := 0; v < b.N; v++ {
		cols, vals := b.Row(core.NodeID(v))
		row := make([]uint64, len(cols))
		for i, j := range cols {
			row[i] = wf.pack(int(j), vals[i])
		}
		packed[v] = row
	}
	return packed
}

// Mul computes the sparse product C = A ⊗ B on the round engine: n
// clique nodes, node v holding row v of each operand, communicating
// only bounded words through the sharded router under the per-link
// budget. The returned stats are the engine's own accounting of the
// product — rounds executed and words routed. Values of B must fit the
// wire format's value field (64 - ceil(log2 n) bits); the product fails
// fast with a descriptive error otherwise.
func Mul(a, b *Matrix, opts Options) (*Matrix, *engine.Stats, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, nil, err
	}
	wf := newWireFormat(a.N)
	if err := wf.checkPackable(b.Vals, b.Sr.Zero, "matrix"); err != nil {
		return nil, nil, err
	}
	accs, _, stats, err := runProduct(a, packRows(b, wf), a.N, wf, opts)
	if err != nil {
		return nil, stats, err
	}
	bld := newBuilder(a.N, a.Sr)
	for _, acc := range accs {
		bld.appendRow(acc)
	}
	return bld.m, stats, nil
}

// MulDense computes the sparse-dense product C = A ⊗ B on the round
// engine, with B and C n x k dense (k is typically a small set of
// sources whose distance columns are being relaxed). Zero entries of B
// are not transmitted; values must fit 64 - ceil(log2 k) bits.
func MulDense(a *Matrix, b *Dense, opts Options) (*Dense, *engine.Stats, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, nil, err
	}
	wf := newWireFormat(b.K)
	if err := wf.checkPackable(b.Vals, b.Sr.Zero, "dense"); err != nil {
		return nil, nil, err
	}
	packed := make([][]uint64, b.N)
	for v := 0; v < b.N; v++ {
		row := b.Row(core.NodeID(v))
		words := make([]uint64, 0, len(row))
		for j, val := range row {
			if val == b.Sr.Zero {
				continue
			}
			words = append(words, wf.pack(j, val))
		}
		packed[v] = words
	}
	_, flat, stats, err := runProduct(a, packed, b.K, wf, opts)
	if err != nil {
		return nil, stats, err
	}
	// The accumulator slab already is the row-major n x k result.
	return &Dense{N: a.N, K: b.K, Sr: a.Sr, Vals: flat}, stats, nil
}
