// Package matmul is the semiring-parameterized sparse matrix subsystem
// of the Dory-Parter reproduction. The paper's exponential speedup for
// Congested Clique shortest paths comes from computing distance
// products — matrix products over the (min,+) semiring — with balanced
// routing inside the O(log n)-bit per-link budget; this package
// provides exactly that machinery.
//
// A Matrix is an n x n sparse matrix in the same CSR layout as
// internal/graph, with entries from a core.Semiring (absent entries are
// the semiring Zero). Products come in two executions:
//
//   - MulRef / MulDenseRef: sequential references, used for
//     verification.
//   - Mul / MulDense: distributed execution on the round engine. Node v
//     owns row v of both operands; the product is decomposed into a
//     request round followed by budget-paced streaming rounds through
//     the engine's sharded router (see mul.go), and the returned
//     engine.Stats expose exactly how many rounds and messages the
//     model charged.
//
// On top of it, internal/algo builds APSP by repeated squaring and
// hop-limited distances — the substrate for the paper's hopset
// construction.
package matmul

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// Matrix is an immutable n x n sparse matrix over a semiring, stored in
// CSR form: row v's entries occupy Cols[Rows[v]:Rows[v+1]] (strictly
// sorted by column) with parallel values in Vals. Entries equal to the
// semiring Zero are never stored.
type Matrix struct {
	// N is the dimension; rows and columns are indexed by core.NodeID
	// in [0, N).
	N int
	// Sr is the semiring the entries live in.
	Sr core.Semiring
	// Rows has length N+1: row v spans [Rows[v], Rows[v+1]).
	Rows []int32
	// Cols holds the column indices, strictly sorted within each row.
	Cols []core.NodeID
	// Vals parallels Cols.
	Vals []int64
}

// NNZ returns the number of stored (non-Zero) entries.
func (m *Matrix) NNZ() int { return len(m.Cols) }

// Row returns the column-index and value slices of row v. They alias
// the matrix's internal storage and must not be modified.
func (m *Matrix) Row(v core.NodeID) (cols []core.NodeID, vals []int64) {
	lo, hi := m.Rows[v], m.Rows[v+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// At returns the (i, j) entry, or the semiring Zero if it is absent.
func (m *Matrix) At(i, j core.NodeID) int64 {
	cols, vals := m.Row(i)
	k := sort.Search(len(cols), func(k int) bool { return cols[k] >= j })
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return m.Sr.Zero
}

// Validate checks the structural invariants: offsets monotone and
// spanning, columns in range and strictly sorted per row, no stored
// Zero entries. Intended for tests, not hot paths.
func (m *Matrix) Validate() error {
	if len(m.Rows) != m.N+1 {
		return fmt.Errorf("matmul: len(Rows)=%d, want N+1=%d", len(m.Rows), m.N+1)
	}
	if m.Rows[0] != 0 || int(m.Rows[m.N]) != len(m.Cols) {
		return fmt.Errorf("matmul: row offsets [%d,%d] do not span %d entries",
			m.Rows[0], m.Rows[m.N], len(m.Cols))
	}
	if len(m.Vals) != len(m.Cols) {
		return fmt.Errorf("matmul: len(Vals)=%d, want %d", len(m.Vals), len(m.Cols))
	}
	for v := 0; v < m.N; v++ {
		if m.Rows[v] > m.Rows[v+1] {
			return fmt.Errorf("matmul: row offsets not monotone at row %d", v)
		}
		cols, vals := m.Row(core.NodeID(v))
		for k, j := range cols {
			if j < 0 || int(j) >= m.N {
				return fmt.Errorf("matmul: row %d has out-of-range column %d", v, j)
			}
			if k > 0 && cols[k-1] >= j {
				return fmt.Errorf("matmul: row %d columns not strictly sorted", v)
			}
			if vals[k] == m.Sr.Zero {
				return fmt.Errorf("matmul: row %d stores a Zero entry at column %d", v, j)
			}
		}
	}
	return nil
}

// rowBuilder assembles a Matrix row by row in index order.
type rowBuilder struct {
	m *Matrix
}

func newBuilder(n int, sr core.Semiring) *rowBuilder {
	return &rowBuilder{m: &Matrix{N: n, Sr: sr, Rows: make([]int32, 1, n+1)}}
}

// appendRow adds the next row from a dense accumulator, skipping Zero
// entries.
func (b *rowBuilder) appendRow(acc []int64) {
	m := b.m
	for j, val := range acc {
		if val != m.Sr.Zero {
			m.Cols = append(m.Cols, core.NodeID(j))
			m.Vals = append(m.Vals, val)
		}
	}
	m.Rows = append(m.Rows, int32(len(m.Cols)))
}

// Identity returns the n x n identity matrix: diagonal One, Zero
// elsewhere.
func Identity(n int, sr core.Semiring) *Matrix {
	m := &Matrix{
		N:    n,
		Sr:   sr,
		Rows: make([]int32, n+1),
		Cols: make([]core.NodeID, n),
		Vals: make([]int64, n),
	}
	for v := 0; v < n; v++ {
		m.Rows[v+1] = int32(v + 1)
		m.Cols[v] = core.NodeID(v)
		m.Vals[v] = sr.One
	}
	return m
}

// FromGraph builds the adjacency matrix of g over sr. Each arc's entry
// is sr.EdgeValue(weight, weighted) — the arc weight over (min,+), a
// hop cost of 1 when g is unweighted, always One over the boolean
// semiring — so matrix powers mean what the algorithms expect. With
// reflexive set, the diagonal carries One (folded via sr.Add with any
// self-loop the input carries), which makes matrix powers compute "at
// most h hops" rather than "exactly h hops" — the form every
// distance-product algorithm wants. The index structure (Rows, Cols)
// aliases the CSR's storage in the non-reflexive case; values are
// freshly allocated.
func FromGraph(g *graph.CSR, sr core.Semiring, reflexive bool) (*Matrix, error) {
	weighted := g.Weights != nil
	arcVal := func(ws []int64, i int) int64 {
		var w int64
		if ws != nil {
			w = ws[i]
		}
		return sr.EdgeValue(w, weighted)
	}
	if !reflexive {
		vals := make([]int64, len(g.Targets))
		for i := range vals {
			vals[i] = arcVal(g.Weights, i)
		}
		m := &Matrix{N: g.N, Sr: sr, Rows: g.Offsets, Cols: g.Targets, Vals: vals}
		return m, m.Validate()
	}
	n := g.N
	m := &Matrix{
		N:    n,
		Sr:   sr,
		Rows: make([]int32, n+1),
		Cols: make([]core.NodeID, 0, len(g.Targets)+n),
		Vals: make([]int64, 0, len(g.Targets)+n),
	}
	for v := 0; v < n; v++ {
		cols, ws := g.Row(core.NodeID(v))
		placedDiag := false
		for i, u := range cols {
			if !placedDiag && u >= core.NodeID(v) {
				placedDiag = true
				if u == core.NodeID(v) {
					// Fold an existing self-loop into the diagonal
					// instead of emitting a duplicate column.
					m.Cols = append(m.Cols, u)
					m.Vals = append(m.Vals, sr.Add(sr.One, arcVal(ws, i)))
					continue
				}
				m.Cols = append(m.Cols, core.NodeID(v))
				m.Vals = append(m.Vals, sr.One)
			}
			m.Cols = append(m.Cols, u)
			m.Vals = append(m.Vals, arcVal(ws, i))
		}
		if !placedDiag {
			m.Cols = append(m.Cols, core.NodeID(v))
			m.Vals = append(m.Vals, sr.One)
		}
		m.Rows[v+1] = int32(len(m.Cols))
	}
	return m, m.Validate()
}

// Dense is an n x k dense matrix over a semiring, row-major: entry
// (v, j) is Vals[v*K+j]. Zero entries are stored explicitly (that is
// what "dense" means here); K is typically a small number of sources.
type Dense struct {
	N, K int
	Sr   core.Semiring
	Vals []int64
}

// NewDense returns an n x k Dense filled with the semiring Zero.
func NewDense(n, k int, sr core.Semiring) *Dense {
	d := &Dense{N: n, K: k, Sr: sr, Vals: make([]int64, n*k)}
	if sr.Zero != 0 {
		for i := range d.Vals {
			d.Vals[i] = sr.Zero
		}
	}
	return d
}

// Row returns row v of the dense matrix. It aliases internal storage.
func (d *Dense) Row(v core.NodeID) []int64 { return d.Vals[int(v)*d.K : (int(v)+1)*d.K] }

// At returns the (v, j) entry.
func (d *Dense) At(v core.NodeID, j int) int64 { return d.Vals[int(v)*d.K+j] }

// MulRef is the sequential reference for the sparse product C = A ⊗ B:
// C[i][j] = Add_k Mul(A[i][k], B[k][j]), computed row by row with a
// dense accumulator. Both operands must share the dimension and
// semiring.
func MulRef(a, b *Matrix) (*Matrix, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, err
	}
	sr := a.Sr
	bld := newBuilder(a.N, sr)
	acc := make([]int64, a.N)
	for i := 0; i < a.N; i++ {
		for j := range acc {
			acc[j] = sr.Zero
		}
		aCols, aVals := a.Row(core.NodeID(i))
		for t, k := range aCols {
			aik := aVals[t]
			bCols, bVals := b.Row(k)
			for s, j := range bCols {
				acc[j] = sr.Add(acc[j], sr.Mul(aik, bVals[s]))
			}
		}
		bld.appendRow(acc)
	}
	return bld.m, nil
}

// MulDenseRef is the sequential reference for the sparse-dense product
// C = A ⊗ B with B (and C) n x k dense.
func MulDenseRef(a *Matrix, b *Dense) (*Dense, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, err
	}
	sr := a.Sr
	c := NewDense(a.N, b.K, sr)
	for i := 0; i < a.N; i++ {
		out := c.Row(core.NodeID(i))
		aCols, aVals := a.Row(core.NodeID(i))
		for t, k := range aCols {
			aik := aVals[t]
			bRow := b.Row(k)
			for j, bkj := range bRow {
				if bkj == sr.Zero {
					continue
				}
				out[j] = sr.Add(out[j], sr.Mul(aik, bkj))
			}
		}
	}
	return c, nil
}

func checkPair(an, bn int, asr, bsr core.Semiring) error {
	if an != bn {
		return fmt.Errorf("matmul: dimension mismatch %d vs %d", an, bn)
	}
	if asr.Name != bsr.Name {
		return fmt.Errorf("matmul: semiring mismatch %q vs %q", asr.Name, bsr.Name)
	}
	return nil
}
