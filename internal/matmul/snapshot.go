// Matrix (de)serialization for kernel checkpoints. Multi-pass kernels
// (internal/algo, internal/hopset) carry their inter-pass state as
// sparse or dense matrices; these helpers encode them in the
// internal/ckptio wire format so kernel SnapshotState/RestoreState
// implementations stay one-liners per matrix. Semirings travel by Name
// (the function fields cannot be serialized) and are rebuilt via
// core.SemiringByName on read; every read ends with Matrix.Validate so
// a corrupt blob surfaces as a structural error, never as a plausible
// but wrong matrix.
package matmul

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
)

// WriteMatrix encodes m (which may be nil — a single presence word) to
// the ckptio writer.
func WriteMatrix(w *ckptio.Writer, m *Matrix) {
	if m == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(int64(m.N))
	w.String(m.Sr.Name)
	w.I32s(m.Rows)
	w.NodeIDs(m.Cols)
	w.I64s(m.Vals)
}

// ReadMatrix decodes a matrix written by WriteMatrix, rebuilding the
// semiring from its name and validating the structural invariants.
// Returns nil for an absent matrix. Errors are recorded on the reader
// (sticky), so multi-matrix decoders check r.Err once at the end — but
// a structural validation failure is also returned directly.
func ReadMatrix(r *ckptio.Reader) (*Matrix, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	m := &Matrix{}
	m.N = int(r.I64())
	name := r.String()
	m.Rows = r.I32s()
	m.Cols = r.NodeIDs()
	m.Vals = r.I64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	sr, err := core.SemiringByName(name)
	if err != nil {
		return nil, err
	}
	m.Sr = sr
	if m.N < 0 {
		return nil, fmt.Errorf("matmul: serialized matrix has negative dimension %d", m.N)
	}
	if m.Rows == nil && m.N+1 <= 1 {
		// ckptio decodes empty slices as nil; a 0 x 0 matrix still needs
		// its one-element offset slice.
		m.Rows = make([]int32, m.N+1)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("matmul: corrupt serialized matrix: %w", err)
	}
	return m, nil
}

// WriteDense encodes d (nil allowed) to the ckptio writer.
func WriteDense(w *ckptio.Writer, d *Dense) {
	if d == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(int64(d.N))
	w.I64(int64(d.K))
	w.String(d.Sr.Name)
	w.I64s(d.Vals)
}

// ReadDense decodes a dense matrix written by WriteDense, checking the
// value slab matches the declared N x K shape.
func ReadDense(r *ckptio.Reader) (*Dense, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	d := &Dense{}
	d.N = int(r.I64())
	d.K = int(r.I64())
	name := r.String()
	d.Vals = r.I64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	sr, err := core.SemiringByName(name)
	if err != nil {
		return nil, err
	}
	d.Sr = sr
	if d.N < 0 || d.K < 0 || len(d.Vals) != d.N*d.K {
		return nil, fmt.Errorf("matmul: corrupt serialized dense matrix: %d values for shape %d x %d", len(d.Vals), d.N, d.K)
	}
	if d.Vals == nil {
		d.Vals = []int64{}
	}
	return d, nil
}
