package matmul

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestAddEntrywise: the entrywise sum must equal the brute-force
// per-entry semiring Add on random sparse operands, over both
// semirings.
func TestAddEntrywise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(12)
		sr := core.MinPlus()
		if trial%2 == 1 {
			sr = core.BoolOrAnd()
		}
		a, err := FromGraph(graph.RandomGNPWeighted(n, 0.3, 20, rng.Int63()), sr, trial%3 == 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := FromGraph(graph.RandomGNPWeighted(n, 0.3, 20, rng.Int63()), sr, false)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Add(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: invalid sum: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := sr.Add(a.At(core.NodeID(i), core.NodeID(j)), b.At(core.NodeID(i), core.NodeID(j)))
				if got := c.At(core.NodeID(i), core.NodeID(j)); got != want {
					t.Fatalf("trial %d: sum[%d][%d] = %d, want %d", trial, i, j, got, want)
				}
			}
		}
	}
}

// TestAddRejectsMismatch: shape and semiring mismatches are errors.
func TestAddRejectsMismatch(t *testing.T) {
	a := Identity(3, core.MinPlus())
	if _, err := Add(a, Identity(4, core.MinPlus())); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Add(a, Identity(3, core.BoolOrAnd())); err == nil {
		t.Error("semiring mismatch accepted")
	}
}

// TestFromEntries: duplicates fold with the semiring Add, Zero entries
// are dropped, rows come out sorted, and out-of-range coordinates are
// rejected.
func TestFromEntries(t *testing.T) {
	sr := core.MinPlus()
	m, err := FromEntries(3, sr, []Entry{
		{Row: 1, Col: 2, Val: 9},
		{Row: 1, Col: 0, Val: 4},
		{Row: 1, Col: 2, Val: 5}, // duplicate: min wins
		{Row: 0, Col: 1, Val: sr.Zero},
		{Row: 2, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.At(1, 2); got != 5 {
		t.Errorf("duplicate fold: At(1,2) = %d, want 5", got)
	}
	if got := m.At(0, 1); got != sr.Zero {
		t.Errorf("Zero entry stored: At(0,1) = %d", got)
	}
	cols, vals := m.Row(1)
	if !reflect.DeepEqual(cols, []core.NodeID{0, 2}) || !reflect.DeepEqual(vals, []int64{4, 5}) {
		t.Errorf("row 1 = %v %v, want [0 2] [4 5]", cols, vals)
	}
	if _, err := FromEntries(3, sr, []Entry{{Row: 3, Col: 0, Val: 1}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := FromEntries(3, sr, []Entry{{Row: 0, Col: -1, Val: 1}}); err == nil {
		t.Error("out-of-range column accepted")
	}
	empty, err := FromEntries(2, sr, nil)
	if err != nil || empty.NNZ() != 0 || empty.Validate() != nil {
		t.Errorf("empty FromEntries: %v nnz=%d", err, empty.NNZ())
	}
}
