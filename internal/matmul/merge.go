package matmul

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// This file holds the structural (non-product) matrix constructors the
// hopset subsystem composes with: the entrywise semiring sum that
// merges shortcut edges into an adjacency matrix, and the COO-style
// FromEntries builder that assembles a sparse matrix from an arbitrary
// multiset of entries.

// Add returns the entrywise semiring sum C[i][j] = Add(A[i][j], B[i][j])
// of two same-shape, same-semiring sparse matrices. Over (min,+) this
// is the union of two weighted edge sets keeping the cheaper parallel
// edge — exactly the "merge shortcut edges into the adjacency matrix"
// step of hopset augmentation.
func Add(a, b *Matrix) (*Matrix, error) {
	if err := checkPair(a.N, b.N, a.Sr, b.Sr); err != nil {
		return nil, err
	}
	sr := a.Sr
	c := &Matrix{
		N:    a.N,
		Sr:   sr,
		Rows: make([]int32, 1, a.N+1),
		Cols: make([]core.NodeID, 0, len(a.Cols)+len(b.Cols)),
		Vals: make([]int64, 0, len(a.Cols)+len(b.Cols)),
	}
	emit := func(j core.NodeID, val int64) {
		if val != sr.Zero {
			c.Cols = append(c.Cols, j)
			c.Vals = append(c.Vals, val)
		}
	}
	for v := 0; v < a.N; v++ {
		ac, av := a.Row(core.NodeID(v))
		bc, bv := b.Row(core.NodeID(v))
		i, k := 0, 0
		for i < len(ac) && k < len(bc) {
			switch {
			case ac[i] < bc[k]:
				emit(ac[i], av[i])
				i++
			case ac[i] > bc[k]:
				emit(bc[k], bv[k])
				k++
			default:
				emit(ac[i], sr.Add(av[i], bv[k]))
				i, k = i+1, k+1
			}
		}
		for ; i < len(ac); i++ {
			emit(ac[i], av[i])
		}
		for ; k < len(bc); k++ {
			emit(bc[k], bv[k])
		}
		c.Rows = append(c.Rows, int32(len(c.Cols)))
	}
	return c, nil
}

// Entry is one (row, column, value) coordinate-form matrix entry for
// FromEntries.
type Entry struct {
	// Row and Col locate the entry; both must lie in [0, N).
	Row, Col core.NodeID
	// Val is the entry value; semiring Zero entries are dropped.
	Val int64
}

// FromEntries assembles an n x n sparse matrix from an arbitrary
// multiset of coordinate entries: duplicates at the same (row, column)
// are folded with the semiring Add (the cheaper edge wins over
// (min,+)), Zero entries (and entries that fold to Zero) are dropped,
// and out-of-range coordinates are an error. The input slice is not
// modified.
func FromEntries(n int, sr core.Semiring, entries []Entry) (*Matrix, error) {
	es := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Row < 0 || int(e.Row) >= n || e.Col < 0 || int(e.Col) >= n {
			return nil, fmt.Errorf("matmul: entry (%d,%d) outside [0,%d)", e.Row, e.Col, n)
		}
		if e.Val == sr.Zero {
			continue
		}
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	m := &Matrix{
		N:    n,
		Sr:   sr,
		Rows: make([]int32, n+1),
		Cols: make([]core.NodeID, 0, len(es)),
		Vals: make([]int64, 0, len(es)),
	}
	for i := 0; i < len(es); {
		j := i + 1
		val := es[i].Val
		for j < len(es) && es[j].Row == es[i].Row && es[j].Col == es[i].Col {
			val = sr.Add(val, es[j].Val)
			j++
		}
		if val != sr.Zero {
			m.Cols = append(m.Cols, es[i].Col)
			m.Vals = append(m.Vals, val)
			m.Rows[es[i].Row+1] = int32(len(m.Cols))
		}
		i = j
	}
	for v := 0; v < n; v++ {
		if m.Rows[v+1] < m.Rows[v] {
			m.Rows[v+1] = m.Rows[v]
		}
	}
	return m, nil
}
