package matmul

import (
	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// MulKernel runs one sparse product C = A ⊗ B as a clique session
// kernel: a single engine pass followed by a harvest. The operands are
// carried by the kernel itself, so it runs on graph-free sessions
// (clique.NewSize); the session graph is ignored.
type MulKernel struct {
	a, b    *Matrix
	unpaced bool
	pass    *Pass
	out     *Matrix
	done    bool
	gather  engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so the
// harvest assembles the full product on every rank (clique
// TransportAware hook).
func (k *MulKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewMulKernel prepares the sparse product A ⊗ B as a session kernel.
// Operand validation (dimensions, semirings, wire-format fit) happens
// at the first Nodes call, surfacing through Session.Run.
func NewMulKernel(a, b *Matrix) *MulKernel { return &MulKernel{a: a, b: b} }

// Name identifies the kernel.
func (k *MulKernel) Name() string { return "matmul-mul" }

// Nodes returns the single product pass, then harvests it.
func (k *MulKernel) Nodes(*graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.pass == nil {
		p, err := NewPass(k.a, k.b, k.unpaced)
		if err != nil {
			return nil, err
		}
		p.SetGatherer(k.gather)
		k.pass = p
		return p.Nodes(), nil
	}
	if err := k.pass.Gather(); err != nil {
		return nil, err
	}
	k.out = k.pass.Sparse()
	k.done = true
	return nil, nil
}

// MaxRoundsHint sizes the in-flight pass's round bound from its widest
// packed row.
func (k *MulKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the product matrix (*Matrix), nil before completion.
func (k *MulKernel) Result() any {
	if k.out == nil {
		return nil
	}
	return k.out
}

// Product returns the typed product matrix, nil before completion.
func (k *MulKernel) Product() *Matrix { return k.out }

// MulDenseKernel runs one sparse-dense product C = A ⊗ B (B and C
// n x k dense) as a clique session kernel; like MulKernel it carries
// its operands and ignores the session graph.
type MulDenseKernel struct {
	a       *Matrix
	b       *Dense
	unpaced bool
	pass    *Pass
	out     *Dense
	done    bool
	gather  engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so the
// harvest assembles the full product on every rank (clique
// TransportAware hook).
func (k *MulDenseKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewMulDenseKernel prepares the sparse-dense product A ⊗ B as a
// session kernel; validation happens at the first Nodes call.
func NewMulDenseKernel(a *Matrix, b *Dense) *MulDenseKernel {
	return &MulDenseKernel{a: a, b: b}
}

// Name identifies the kernel.
func (k *MulDenseKernel) Name() string { return "matmul-dense" }

// Nodes returns the single product pass, then harvests it.
func (k *MulDenseKernel) Nodes(*graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.pass == nil {
		p, err := NewDensePass(k.a, k.b, k.unpaced)
		if err != nil {
			return nil, err
		}
		p.SetGatherer(k.gather)
		k.pass = p
		return p.Nodes(), nil
	}
	if err := k.pass.Gather(); err != nil {
		return nil, err
	}
	k.out = k.pass.Dense()
	k.done = true
	return nil, nil
}

// MaxRoundsHint sizes the in-flight pass's round bound from its widest
// packed row — essential for dense operands wider than the engine's
// n-scaled default.
func (k *MulDenseKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the product (*Dense), nil before completion.
func (k *MulDenseKernel) Result() any {
	if k.out == nil {
		return nil
	}
	return k.out
}

// Product returns the typed dense product, nil before completion.
func (k *MulDenseKernel) Product() *Dense { return k.out }

// init registers the demonstration matmul kernel: squaring the
// reflexive (min,+) adjacency matrix of the session graph — one
// distance-product step, the atom every shortest-path pipeline here is
// built from. Unweighted graphs are treated as unit-weighted.
func init() {
	clique.Register("matmul-square", func(g *graph.CSR) (clique.Kernel, error) {
		a, err := FromGraph(g.WithUnitWeights(), core.MinPlus(), true)
		if err != nil {
			return nil, err
		}
		return NewMulKernel(a, a), nil
	})
}
