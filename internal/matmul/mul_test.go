package matmul

import (
	"errors"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

func matricesEqual(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("%s: result invalid: %v", label, err)
	}
	for i := 0; i < want.N; i++ {
		for j := 0; j < want.N; j++ {
			g := got.At(core.NodeID(i), core.NodeID(j))
			w := want.At(core.NodeID(i), core.NodeID(j))
			if g != w {
				t.Fatalf("%s: C[%d][%d] = %d, want %d", label, i, j, g, w)
			}
		}
	}
}

// TestMulMatchesRef runs the distributed product against the sequential
// reference across generator families, semirings, and worker counts.
func TestMulMatchesRef(t *testing.T) {
	for _, sr := range []core.Semiring{core.MinPlus(), core.BoolOrAnd()} {
		for gi, g := range testGraphs(t) {
			gg := g
			if sr.Name == "booland" {
				gg = &graph.CSR{N: g.N, Offsets: g.Offsets, Targets: g.Targets}
			}
			a, err := FromGraph(gg, sr, true)
			if err != nil {
				t.Fatalf("FromGraph: %v", err)
			}
			want, err := MulRef(a, a)
			if err != nil {
				t.Fatalf("MulRef: %v", err)
			}
			for _, workers := range []int{1, 3, 8} {
				got, stats, err := Mul(a, a, Options{Engine: engine.Options{Workers: workers}})
				if err != nil {
					t.Fatalf("Mul(%s, g%d, w=%d): %v", sr.Name, gi, workers, err)
				}
				if stats.TotalMsgs == 0 && g.NumEdges() > 0 {
					t.Fatalf("Mul(%s, g%d, w=%d): no messages routed for a non-empty graph", sr.Name, gi, workers)
				}
				matricesEqual(t, got, want, sr.Name)
			}
		}
	}
}

// TestMulSquaredMatchesRef verifies a second-level product (the result
// of a product fed back in), which exercises denser operands.
func TestMulSquaredMatchesRef(t *testing.T) {
	sr := core.MinPlus()
	g := graph.RandomGNP(20, 0.25, 13).WithUniformRandomWeights(8, 8)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	a2, _, err := Mul(a, a, Options{})
	if err != nil {
		t.Fatalf("Mul(A, A): %v", err)
	}
	a4, _, err := Mul(a2, a2, Options{})
	if err != nil {
		t.Fatalf("Mul(A2, A2): %v", err)
	}
	ref2, err := MulRef(a, a)
	if err != nil {
		t.Fatalf("MulRef: %v", err)
	}
	ref4, err := MulRef(ref2, ref2)
	if err != nil {
		t.Fatalf("MulRef: %v", err)
	}
	matricesEqual(t, a4, ref4, "A^4")
}

// TestMulN256RoutesMessages is the acceptance check that a product at
// n=256 really flows through the router: the engine must report a
// substantial number of routed words and more than the two protocol
// framing rounds.
func TestMulN256RoutesMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("n=256 product in -short mode")
	}
	sr := core.MinPlus()
	g := graph.RandomGNP(256, 0.05, 99).WithUniformRandomWeights(9, 30)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	c, stats, err := Mul(a, a, Options{})
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if stats.TotalMsgs == 0 {
		t.Fatal("engine stats report zero routed messages for an n=256 product")
	}
	// Every off-diagonal A-entry triggers one request, and every
	// requested B-row streams back entry by entry.
	minMsgs := uint64(a.NNZ() - a.N)
	if stats.TotalMsgs < minMsgs {
		t.Fatalf("TotalMsgs = %d, want >= %d (requests alone)", stats.TotalMsgs, minMsgs)
	}
	if stats.Rounds <= 2 {
		t.Fatalf("Rounds = %d, want > 2 (budget-paced streaming)", stats.Rounds)
	}
	want, err := MulRef(a, a)
	if err != nil {
		t.Fatalf("MulRef: %v", err)
	}
	matricesEqual(t, c, want, "n=256")
}

// TestUnpacedProductReturnsBandwidthError is the regression test that a
// product violating the per-link budget surfaces *engine.BandwidthError
// through the error chain instead of panicking or silently dropping.
func TestUnpacedProductReturnsBandwidthError(t *testing.T) {
	sr := core.MinPlus()
	// K_8 rows have 8 entries + diagonal; the default budget is one
	// word per link per round, so an unpaced stream must overflow.
	g := graph.Clique(8).WithUniformRandomWeights(10, 5)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	_, _, err = Mul(a, a, Options{Unpaced: true})
	var bwe *engine.BandwidthError
	if !errors.As(err, &bwe) {
		t.Fatalf("unpaced Mul error = %v, want *engine.BandwidthError", err)
	}
	// The paced path on the identical input must succeed.
	if _, _, err := Mul(a, a, Options{}); err != nil {
		t.Fatalf("paced Mul on same input: %v", err)
	}
}

// TestMulRejectsUnpackableValues checks the pre-flight value screen.
func TestMulRejectsUnpackableValues(t *testing.T) {
	sr := core.MinPlus()
	a := Identity(300, sr) // 9 index bits -> 55 value bits
	big := &Matrix{N: 300, Sr: sr, Rows: make([]int32, 301), Cols: []core.NodeID{1}, Vals: []int64{1 << 60}}
	for v := 1; v <= 300; v++ {
		big.Rows[v] = 1
	}
	if _, _, err := Mul(a, big, Options{}); err == nil {
		t.Fatal("Mul accepted a value wider than the wire format")
	}
}

func TestMulDenseMatchesRef(t *testing.T) {
	sr := core.MinPlus()
	g := graph.RandomGNP(24, 0.3, 21).WithUniformRandomWeights(11, 6)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	// B's columns are distance vectors of k sources: column j starts as
	// the indicator of source j (0 at the source, Inf elsewhere).
	const k = 3
	b := NewDense(a.N, k, sr)
	for j := 0; j < k; j++ {
		b.Row(core.NodeID(j * 7))[j] = sr.One
	}
	want, err := MulDenseRef(a, b)
	if err != nil {
		t.Fatalf("MulDenseRef: %v", err)
	}
	got, stats, err := MulDense(a, b, Options{})
	if err != nil {
		t.Fatalf("MulDense: %v", err)
	}
	if stats.TotalMsgs == 0 {
		t.Fatal("MulDense routed no messages")
	}
	for v := 0; v < a.N; v++ {
		for j := 0; j < k; j++ {
			if got.At(core.NodeID(v), j) != want.At(core.NodeID(v), j) {
				t.Fatalf("C[%d][%d] = %d, want %d", v, j, got.At(core.NodeID(v), j), want.At(core.NodeID(v), j))
			}
		}
	}
}

// TestMulDenseWideOperand: draining a dense K-wide row takes ~K rounds
// at one word per link, so K larger than the engine's n-scaled default
// round bound must still succeed (the product sizes MaxRounds from the
// widest packed row).
func TestMulDenseWideOperand(t *testing.T) {
	sr := core.MinPlus()
	g := graph.Clique(16).WithUniformRandomWeights(3, 4)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	const k = 200 // > 4n+64 = 128
	b := NewDense(a.N, k, sr)
	// All k entries on one row, so draining that row's stream takes
	// ~k rounds — past the engine's n-scaled default bound; the
	// product must size MaxRounds from the widest packed row.
	for j := 0; j < k; j++ {
		b.Row(0)[j] = int64(1 + j%5)
	}
	got, _, err := MulDense(a, b, Options{})
	if err != nil {
		t.Fatalf("MulDense with wide dense operand: %v", err)
	}
	want, err := MulDenseRef(a, b)
	if err != nil {
		t.Fatalf("MulDenseRef: %v", err)
	}
	for v := 0; v < a.N; v++ {
		for j := 0; j < k; j++ {
			if got.At(core.NodeID(v), j) != want.At(core.NodeID(v), j) {
				t.Fatalf("C[%d][%d] = %d, want %d", v, j, got.At(core.NodeID(v), j), want.At(core.NodeID(v), j))
			}
		}
	}
}

// TestMulDeterministic re-runs the same product with different worker
// counts and demands bit-identical results.
func TestMulDeterministic(t *testing.T) {
	sr := core.MinPlus()
	g := graph.RandomGNP(32, 0.2, 5).WithUniformRandomWeights(12, 12)
	a, err := FromGraph(g, sr, true)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	var first *Matrix
	for _, workers := range []int{1, 2, 5, 16} {
		c, _, err := Mul(a, a, Options{Engine: engine.Options{Workers: workers}})
		if err != nil {
			t.Fatalf("Mul(w=%d): %v", workers, err)
		}
		if first == nil {
			first = c
			continue
		}
		if len(c.Cols) != len(first.Cols) {
			t.Fatalf("w=%d: NNZ %d differs from %d", workers, len(c.Cols), len(first.Cols))
		}
		for i := range c.Cols {
			if c.Cols[i] != first.Cols[i] || c.Vals[i] != first.Vals[i] {
				t.Fatalf("w=%d: entry %d differs", workers, i)
			}
		}
	}
}

// TestMulZeroDim is the regression test for the kernel completion
// protocol on zero-node sessions: a 0 x 0 product must return a
// non-nil empty matrix and non-nil stats, not (nil, nil, nil).
func TestMulZeroDim(t *testing.T) {
	sr := core.MinPlus()
	a := Identity(0, sr)
	c, stats, err := Mul(a, a, Options{})
	if err != nil {
		t.Fatalf("Mul(0x0): %v", err)
	}
	if c == nil || c.N != 0 {
		t.Fatalf("Mul(0x0) product = %v, want empty non-nil matrix", c)
	}
	if stats == nil {
		t.Fatal("Mul(0x0) returned nil stats")
	}
	d, stats, err := MulDense(a, NewDense(0, 0, sr), Options{})
	if err != nil || d == nil || stats == nil {
		t.Fatalf("MulDense(0x0) = (%v, %v, %v), want non-nil product and stats", d, stats, err)
	}
}
