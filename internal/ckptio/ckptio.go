// Package ckptio provides the primitive binary encoding layer shared by
// every checkpoint and snapshot format in the repository: the engine's
// round-barrier snapshots (internal/engine), the matrix state blobs of
// the multi-pass kernels (internal/matmul, internal/algo,
// internal/hopset), and the composite checkpoint files the clique
// session writes (clique.WithCheckpoint).
//
// The encoding is deliberately boring: fixed-width little-endian words,
// length-prefixed slices and strings, one presence byte for optional
// values. Writer and Reader carry a sticky error so multi-field
// (de)serializers read as straight-line code and check a single Err()
// at the end, and both fold every byte they move into a running FNV-1a
// digest (Sum) so a checkpoint file can carry — and verify — an
// end-to-end integrity word. Truncated input (the torn tail of a short
// write) therefore surfaces as an io error or a digest mismatch, never
// as silently corrupt state.
package ckptio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// fnv1a64 folds the bytes of p into the running FNV-1a hash h.
func fnv1a64(h uint64, p []byte) uint64 {
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// FNVOffset is the FNV-1a 64-bit offset basis — the initial value of
// every digest chain in the checkpoint formats (Writer.Sum,
// engine round digests).
const FNVOffset uint64 = 14695981039346656037

// maxSliceLen caps length prefixes accepted by the Reader so a corrupt
// or adversarial header cannot trigger a huge allocation before the
// integrity check has a chance to run. 1<<28 elements is far beyond any
// feasible clique state (n <= 2^14 gives n^2 = 2^28 matrix entries).
const maxSliceLen = 1 << 28

// allocChunk bounds the initial capacity the Reader allocates for a
// length-prefixed slice (elements) or blob (bytes). Decoding then grows
// by appending as bytes actually arrive, so a truncated stream whose
// prefix claims a huge length allocates O(bytes present), not
// O(claimed length) — the property FuzzDecode enforces.
const allocChunk = 1 << 16

// Writer encodes fixed-width values to an io.Writer with a sticky
// error and a running FNV-1a digest over every byte written. After the
// last field, callers check Err once and may append Sum as an
// integrity trailer (written via SumTrailer so the trailer itself is
// excluded from the digest).
type Writer struct {
	w   io.Writer
	err error
	n   int64
	sum uint64
	buf [8]byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, sum: FNVOffset} }

// Err returns the first error any write encountered, or nil.
func (w *Writer) Err() error { return w.err }

// Count returns the number of bytes written so far (trailer included).
func (w *Writer) Count() int64 { return w.n }

// Sum returns the FNV-1a digest of every byte written so far,
// excluding any SumTrailer.
func (w *Writer) Sum() uint64 { return w.sum }

// write pushes p through the underlying writer, folding it into the
// digest unless raw is set (the trailer must not digest itself).
func (w *Writer) write(p []byte, raw bool) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	if err != nil {
		w.err = err
		return
	}
	if !raw {
		w.sum = fnv1a64(w.sum, p)
	}
}

// U64 writes one little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.write(w.buf[:], false)
}

// I64 writes one int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes one float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one full word (keeping every field 8 bytes).
func (w *Writer) Bool(v bool) {
	if v {
		w.U64(1)
	} else {
		w.U64(0)
	}
}

// String writes a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.write([]byte(s), false)
}

// U64s writes a length-prefixed []uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// I64s writes a length-prefixed []int64.
func (w *Writer) I64s(vs []int64) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// I32s writes a length-prefixed []int32 (one word per element; row
// offset slices are small compared to the matrices they index).
func (w *Writer) I32s(vs []int32) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// NodeIDs writes a length-prefixed []core.NodeID.
func (w *Writer) NodeIDs(vs []core.NodeID) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(int64(v))
	}
}

// Blob writes a length-prefixed opaque byte blob — the container for
// nested self-delimiting formats (an engine snapshot or kernel state
// embedded inside a session checkpoint), keeping the outer digest over
// every nested byte.
func (w *Writer) Blob(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p, false)
}

// SumTrailer appends the current digest as a raw (undigested) trailer
// word — the last field of a checkpoint file, verified by
// Reader.VerifySumTrailer.
func (w *Writer) SumTrailer() {
	binary.LittleEndian.PutUint64(w.buf[:], w.sum)
	w.write(w.buf[:], true)
}

// Reader decodes the Writer encoding with the same sticky-error and
// running-digest discipline. Decoding helpers return zero values after
// the first error; callers check Err once at the end.
type Reader struct {
	r   io.Reader
	err error
	sum uint64
	buf [8]byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, sum: FNVOffset} }

// Err returns the first error any read encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Sum returns the FNV-1a digest of every byte read so far, excluding
// any VerifySumTrailer word.
func (r *Reader) Sum() uint64 { return r.sum }

// read fills p from the underlying reader, folding it into the digest
// unless raw is set.
func (r *Reader) read(p []byte, raw bool) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("ckptio: truncated input: %w", err)
		return
	}
	if !raw {
		r.sum = fnv1a64(r.sum, p)
	}
}

// U64 reads one little-endian uint64.
func (r *Reader) U64() uint64 {
	r.read(r.buf[:], false)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:])
}

// I64 reads one int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads one float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool written by Writer.Bool.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// sliceLen reads and bounds-checks a length prefix.
func (r *Reader) sliceLen() int {
	n := r.U64()
	if r.err == nil && n > maxSliceLen {
		r.err = fmt.Errorf("ckptio: implausible slice length %d (corrupt input?)", n)
	}
	if r.err != nil {
		return 0
	}
	return int(n)
}

// readBytes reads exactly n bytes, growing the result in bounded
// chunks so a corrupt length prefix cannot force an allocation larger
// than the bytes actually present in the stream.
func (r *Reader) readBytes(n int) []byte {
	p := make([]byte, 0, min(n, allocChunk))
	for len(p) < n {
		c := min(n-len(p), allocChunk)
		start := len(p)
		p = append(p, make([]byte, c)...)
		r.read(p[start:], false)
		if r.err != nil {
			return nil
		}
	}
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen()
	if n == 0 {
		return ""
	}
	p := r.readBytes(n)
	if r.err != nil {
		return ""
	}
	return string(p)
}

// U64s reads a length-prefixed []uint64 (nil when empty).
func (r *Reader) U64s() []uint64 {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	vs := make([]uint64, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := r.U64()
		if r.err != nil {
			return nil
		}
		vs = append(vs, v)
	}
	return vs
}

// I64s reads a length-prefixed []int64 (nil when empty).
func (r *Reader) I64s() []int64 {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	vs := make([]int64, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := r.I64()
		if r.err != nil {
			return nil
		}
		vs = append(vs, v)
	}
	return vs
}

// I32s reads a length-prefixed []int32 written by Writer.I32s.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	vs := make([]int32, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := int32(r.I64())
		if r.err != nil {
			return nil
		}
		vs = append(vs, v)
	}
	return vs
}

// NodeIDs reads a length-prefixed []core.NodeID (nil when empty).
func (r *Reader) NodeIDs() []core.NodeID {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	vs := make([]core.NodeID, 0, min(n, allocChunk))
	for i := 0; i < n; i++ {
		v := core.NodeID(r.I64())
		if r.err != nil {
			return nil
		}
		vs = append(vs, v)
	}
	return vs
}

// Blob reads a length-prefixed opaque byte blob written by Writer.Blob
// (nil when empty).
func (r *Reader) Blob() []byte {
	n := r.sliceLen()
	if n == 0 {
		return nil
	}
	p := r.readBytes(n)
	if r.err != nil {
		return nil
	}
	return p
}

// VerifySumTrailer reads the raw trailer word written by
// Writer.SumTrailer and checks it against the digest of everything read
// before it, recording a descriptive error on mismatch.
func (r *Reader) VerifySumTrailer() {
	want := r.sum
	r.read(r.buf[:], true)
	if r.err != nil {
		return
	}
	got := binary.LittleEndian.Uint64(r.buf[:])
	if got != want {
		r.err = fmt.Errorf("ckptio: integrity digest mismatch: file says %#x, content hashes to %#x (truncated or corrupt checkpoint)", got, want)
	}
}
