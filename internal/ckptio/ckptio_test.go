package ckptio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// TestRoundTripAllTypes writes one of every field type and reads it
// back, including the integrity trailer.
func TestRoundTripAllTypes(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(42)
	w.I64(-7)
	w.F64(math.Pi)
	w.Bool(true)
	w.Bool(false)
	w.String("hopset")
	w.String("")
	w.U64s([]uint64{1, 2, 3})
	w.I64s([]int64{-1, 0, core.InfWeight})
	w.I32s([]int32{0, 5, 9})
	w.NodeIDs([]core.NodeID{3, 1, 4})
	w.SumTrailer()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(buf.Len()) {
		t.Errorf("Count = %d, buffer holds %d", w.Count(), buf.Len())
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.U64(); got != 42 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -7 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bools did not round-trip")
	}
	if got := r.String(); got != "hopset" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.U64s(); !reflect.DeepEqual(got, []uint64{1, 2, 3}) {
		t.Errorf("U64s = %v", got)
	}
	if got := r.I64s(); !reflect.DeepEqual(got, []int64{-1, 0, core.InfWeight}) {
		t.Errorf("I64s = %v", got)
	}
	if got := r.I32s(); !reflect.DeepEqual(got, []int32{0, 5, 9}) {
		t.Errorf("I32s = %v", got)
	}
	if got := r.NodeIDs(); !reflect.DeepEqual(got, []core.NodeID{3, 1, 4}) {
		t.Errorf("NodeIDs = %v", got)
	}
	r.VerifySumTrailer()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationDetected: every strict prefix of a valid stream must
// fail with a truncation error, never decode silently.
func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1)
	w.String("abc")
	w.SumTrailer()
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.U64()
		_ = r.String()
		r.VerifySumTrailer()
		if r.Err() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestCorruptionDetectedByTrailer: flipping any payload byte must fail
// the integrity trailer.
func TestCorruptionDetectedByTrailer(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(7)
	w.I64s([]int64{10, 20})
	w.SumTrailer()
	data := append([]byte(nil), buf.Bytes()...)
	data[3] ^= 0x40
	r := NewReader(bytes.NewReader(data))
	r.U64()
	r.I64s()
	r.VerifySumTrailer()
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupted stream error = %v, want digest mismatch", err)
	}
}

// TestImplausibleLengthRejected: a giant length prefix must be rejected
// before it allocates.
func TestImplausibleLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.I64s(); got != nil {
		t.Errorf("I64s on corrupt length = %v", got)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("err = %v, want implausible length", err)
	}
}

// errWriter fails after a fixed number of bytes — the short-write shape
// checkpoint fault injection uses.
type errWriter struct {
	budget int
	err    error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if len(p) <= e.budget {
		e.budget -= len(p)
		return len(p), nil
	}
	n := e.budget
	e.budget = 0
	return n, e.err
}

// TestStickyWriteError: the first underlying write error sticks and
// suppresses all later writes.
func TestStickyWriteError(t *testing.T) {
	injected := errors.New("boom")
	w := NewWriter(&errWriter{budget: 8, err: injected})
	w.U64(1) // fits
	w.U64(2) // fails
	w.U64(3) // suppressed
	if !errors.Is(w.Err(), injected) {
		t.Fatalf("Err = %v, want injected error", w.Err())
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
}

// TestShortWriteWithoutError: a Write returning n < len(p) with a nil
// error must surface io.ErrShortWrite.
func TestShortWriteWithoutError(t *testing.T) {
	w := NewWriter(&errWriter{budget: 4, err: nil})
	w.U64(1)
	if !errors.Is(w.Err(), io.ErrShortWrite) {
		t.Fatalf("Err = %v, want io.ErrShortWrite", w.Err())
	}
}
