package ckptio

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the full Reader surface over arbitrary bytes. The
// contract under fuzzing: corrupt or truncated input must surface as a
// sticky Err (or a trailer mismatch), never as a panic, and the
// length-prefixed decoders must never allocate proportionally to a
// corrupt length claim — only to bytes actually present (the chunked
// allocation discipline). The engine snapshot, kernel state blob, and
// socket frame formats are all compositions of exactly these
// primitives, so this fuzzer is the torn-input backstop for all of
// them.
func FuzzDecode(f *testing.F) {
	// A well-formed stream touching every primitive, trailer included.
	var good bytes.Buffer
	w := NewWriter(&good)
	w.U64(0xdeadbeef)
	w.I64(-42)
	w.Bool(true)
	w.F64(3.25)
	w.String("hopset")
	w.Blob([]byte{1, 2, 3})
	w.U64s([]uint64{1, 2, 3, 4})
	w.I64s([]int64{-1, 0, 1})
	w.I32s([]int32{7, -7})
	w.SumTrailer()
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// A huge-length claim with no bytes behind it: the chunked
	// allocators must fail on the missing data, not allocate 2^60 words.
	var huge bytes.Buffer
	hw := NewWriter(&huge)
	hw.U64(0xdeadbeef)
	hw.I64(-42)
	hw.Bool(true)
	hw.F64(3.25)
	f.Add(append(huge.Bytes(), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		_ = r.U64()
		_ = r.I64()
		_ = r.Bool()
		_ = r.F64()
		_ = r.String()
		_ = r.Blob()
		_ = r.U64s()
		_ = r.I64s()
		_ = r.I32s()
		_ = r.NodeIDs()
		r.VerifySumTrailer()
		_ = r.Err()
	})
}

// FuzzRoundTrip checks the complementary direction: any values that go
// through the Writer come back bit-identically through the Reader, and
// the integrity trailer verifies.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), "", []byte(nil), true)
	f.Add(uint64(1)<<63, int64(-1), "clique", []byte{0xff, 0}, false)
	f.Fuzz(func(t *testing.T, u uint64, i int64, s string, blob []byte, b bool) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U64(u)
		w.I64(i)
		w.String(s)
		w.Blob(blob)
		w.Bool(b)
		w.SumTrailer()
		if err := w.Err(); err != nil {
			t.Fatalf("write: %v", err)
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		gu, gi, gs, gblob, gb := r.U64(), r.I64(), r.String(), r.Blob(), r.Bool()
		r.VerifySumTrailer()
		if err := r.Err(); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if gu != u || gi != i || gs != s || gb != b || !bytes.Equal(gblob, blob) {
			t.Fatalf("round trip mismatch: got (%d %d %q %v %v), want (%d %d %q %v %v)",
				gu, gi, gs, gblob, gb, u, i, s, blob, b)
		}
	})
}
