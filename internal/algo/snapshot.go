// Checkpoint serialization for the multi-pass algorithm kernels. Every
// kernel here implements clique.Checkpointable with the same shape:
// SnapshotState harvests the pass that just completed (harvest is
// idempotent, so the live run is undisturbed) and serializes the
// remaining inter-pass state — matrices plus a pass cursor — in the
// internal/ckptio format with a version word and integrity trailer;
// RestoreState refuses kernels that have already started
// (clique.ErrKernelStarted), verifies the trailer before applying
// anything, and recomputes derived results (distance rows) from the
// restored matrices rather than trusting serialized copies.
package algo

import (
	"fmt"
	"io"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// kernelStateVersion stamps every algo kernel state blob.
const kernelStateVersion uint64 = 1

// checkStateVersion reads and checks the leading version word.
func checkStateVersion(cr *ckptio.Reader) error {
	if v := cr.U64(); cr.Err() == nil && v != kernelStateVersion {
		return fmt.Errorf("algo: kernel state version %d, this build reads version %d", v, kernelStateVersion)
	}
	return nil
}

// writePowerState encodes a (possibly nil) square-and-multiply cursor.
// The caller must have harvested any in-flight pass.
func writePowerState(w *ckptio.Writer, ps *powerState) {
	if ps == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(int64(ps.n))
	w.I64(int64(ps.e))
	w.I64(int64(ps.phase))
	matmul.WriteMatrix(w, ps.base)
	matmul.WriteMatrix(w, ps.result)
}

// readPowerState decodes a cursor written by writePowerState.
func readPowerState(r *ckptio.Reader) (*powerState, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	ps := &powerState{}
	ps.n = int(r.I64())
	ps.e = int(r.I64())
	ps.phase = int(r.I64())
	var err error
	if ps.base, err = matmul.ReadMatrix(r); err != nil {
		return nil, err
	}
	if ps.result, err = matmul.ReadMatrix(r); err != nil {
		return nil, err
	}
	return ps, r.Err()
}

// writeRelaxState encodes a (possibly nil) relaxation cursor. The
// caller must have harvested any in-flight pass.
func writeRelaxState(w *ckptio.Writer, rs *relaxState) {
	if rs == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	matmul.WriteMatrix(w, rs.s)
	matmul.WriteDense(w, rs.cur)
	w.I64(int64(rs.remaining))
}

// readRelaxState decodes a cursor written by writeRelaxState.
func readRelaxState(r *ckptio.Reader) (*relaxState, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	rs := &relaxState{}
	var err error
	if rs.s, err = matmul.ReadMatrix(r); err != nil {
		return nil, err
	}
	if rs.cur, err = matmul.ReadDense(r); err != nil {
		return nil, err
	}
	rs.remaining = int(r.I64())
	return rs, r.Err()
}

// SnapshotState serializes the repeated-squaring state: the current
// distance matrix and the covered hop horizon.
func (k *APSPKernel) SnapshotState(w io.Writer) error {
	if err := k.harvest(); err != nil {
		return err
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.Bool(k.started)
	cw.Bool(k.done)
	cw.I64(int64(k.n))
	cw.I64(int64(k.span))
	matmul.WriteMatrix(cw, k.d)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), recomputing the distance
// rows when the blob captured a completed run.
func (k *APSPKernel) RestoreState(r io.Reader) error {
	if k.started || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	started := cr.Bool()
	done := cr.Bool()
	n := int(cr.I64())
	span := int(cr.I64())
	d, err := matmul.ReadMatrix(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	k.started, k.done, k.n, k.span, k.d = started, done, n, span, d
	if done && d != nil {
		k.dist = distMatrix(d)
	}
	return nil
}

// SnapshotState serializes the hop-limited power iteration state.
func (k *HopLimitedKernel) SnapshotState(w io.Writer) error {
	if k.ps != nil {
		if err := k.ps.harvest(); err != nil {
			return err
		}
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.I64(int64(k.h))
	cw.Bool(k.done)
	writePowerState(cw, k.ps)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise).
func (k *HopLimitedKernel) RestoreState(r io.Reader) error {
	if k.ps != nil || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	h := int(cr.I64())
	done := cr.Bool()
	ps, err := readPowerState(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	k.h, k.done, k.ps = h, done, ps
	if k.ps != nil {
		k.ps.gather = k.gather
	}
	if done && ps != nil {
		k.dist = distMatrix(ps.matrix())
	}
	return nil
}

// SnapshotState serializes the two-stage pipeline state: the stage
// cursor plus whichever of the powering and relaxation cursors is
// live.
func (k *KSourceKernel) SnapshotState(w io.Writer) error {
	if k.ps != nil {
		if err := k.ps.harvest(); err != nil {
			return err
		}
	}
	if k.rx != nil {
		if err := k.rx.harvest(); err != nil {
			return err
		}
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.I64(int64(k.stage))
	cw.I64(int64(k.h))
	cw.I64(int64(k.n))
	cw.I64(int64(k.remaining))
	cw.NodeIDs(k.sources)
	writePowerState(cw, k.ps)
	writeRelaxState(cw, k.rx)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), recomputing the distance
// rows for a completed-run blob.
func (k *KSourceKernel) RestoreState(r io.Reader) error {
	if k.stage != 0 {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	stage := int(cr.I64())
	h := int(cr.I64())
	n := int(cr.I64())
	remaining := int(cr.I64())
	sources := cr.NodeIDs()
	ps, err := readPowerState(cr)
	if err != nil {
		return err
	}
	rx, err := readRelaxState(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if stage < 1 || stage > 3 {
		return fmt.Errorf("algo: %s state has implausible stage %d", k.Name(), stage)
	}
	k.stage, k.h, k.n, k.remaining, k.sources, k.ps, k.rx = stage, h, n, remaining, sources, ps, rx
	if k.ps != nil {
		k.ps.gather = k.gather
	}
	if k.rx != nil {
		k.rx.gather = k.gather
	}
	if stage == 3 && rx != nil {
		k.dist = rx.distRows()
	}
	return nil
}

// SnapshotState serializes the approximate pipeline state: the stage
// cursor, the embedded hopset construction (stage 1) or the
// constructed hopset plus relaxation cursor (stages 2-3).
func (k *ApproxKSourceKernel) SnapshotState(w io.Writer) error {
	if k.rx != nil {
		if err := k.rx.harvest(); err != nil {
			return err
		}
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.String(k.name)
	cw.I64(int64(k.stage))
	cw.I64(int64(k.n))
	cw.NodeIDs(k.sources)
	hopset.WriteParams(cw, k.params)
	if k.ck != nil {
		var inner writerBuffer
		if err := k.ck.SnapshotState(&inner); err != nil {
			return err
		}
		cw.Blob(inner.buf)
	} else {
		cw.Blob(nil)
	}
	hopset.WriteHopset(cw, k.hs)
	writeRelaxState(cw, k.rx)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise). The embedded hopset
// construction is restored through its own Checkpointable
// implementation; completed-run blobs recompute the distance rows.
func (k *ApproxKSourceKernel) RestoreState(r io.Reader) error {
	if k.stage != 0 {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	name := cr.String()
	stage := int(cr.I64())
	n := int(cr.I64())
	sources := cr.NodeIDs()
	params := hopset.ReadParams(cr)
	ckBlob := cr.Blob()
	hs, err := hopset.ReadHopset(cr)
	if err != nil {
		return err
	}
	rx, err := readRelaxState(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if name != k.name {
		return fmt.Errorf("algo: state is for kernel %q, not %q", name, k.name)
	}
	if stage < 1 || stage > 3 {
		return fmt.Errorf("algo: %s state has implausible stage %d", k.Name(), stage)
	}
	var ck *hopset.ConstructKernel
	if len(ckBlob) > 0 {
		ck = hopset.NewConstructKernel(params)
		if err := ck.RestoreState(byteReader(ckBlob)); err != nil {
			return err
		}
	}
	k.stage, k.n, k.sources, k.params, k.ck, k.hs, k.rx = stage, n, sources, params, ck, hs, rx
	if k.ck != nil {
		k.ck.SetGatherer(k.gather)
	}
	if k.rx != nil {
		k.rx.gather = k.gather
	}
	if stage == 3 && rx != nil {
		k.dist = rx.distRows()
	}
	return nil
}

// SnapshotState serializes the (max,min) repeated-squaring state,
// mirroring APSPKernel's shape.
func (k *WidestPathKernel) SnapshotState(w io.Writer) error {
	if err := k.harvest(); err != nil {
		return err
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.Bool(k.started)
	cw.Bool(k.done)
	cw.I64(int64(k.n))
	cw.I64(int64(k.span))
	matmul.WriteMatrix(cw, k.d)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), recomputing the width
// rows when the blob captured a completed run.
func (k *WidestPathKernel) RestoreState(r io.Reader) error {
	if k.started || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	started := cr.Bool()
	done := cr.Bool()
	n := int(cr.I64())
	span := int(cr.I64())
	d, err := matmul.ReadMatrix(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	k.started, k.done, k.n, k.span, k.d = started, done, n, span, d
	if done && d != nil {
		k.width = widthMatrix(d)
	}
	return nil
}

// SnapshotState serializes the boolean repeated-squaring state,
// mirroring APSPKernel's shape.
func (k *TransitiveClosureKernel) SnapshotState(w io.Writer) error {
	if err := k.harvest(); err != nil {
		return err
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.Bool(k.started)
	cw.Bool(k.done)
	cw.I64(int64(k.n))
	cw.I64(int64(k.span))
	matmul.WriteMatrix(cw, k.d)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), recomputing the
// reachability rows when the blob captured a completed run.
func (k *TransitiveClosureKernel) RestoreState(r io.Reader) error {
	if k.started || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	started := cr.Bool()
	done := cr.Bool()
	n := int(cr.I64())
	span := int(cr.I64())
	d, err := matmul.ReadMatrix(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	k.started, k.done, k.n, k.span, k.d = started, done, n, span, d
	if done && d != nil {
		k.reach = reachMatrix(d)
	}
	return nil
}

// SnapshotState serializes the widest-path two-stage pipeline state,
// mirroring KSourceKernel's shape.
func (k *WidestKSourceKernel) SnapshotState(w io.Writer) error {
	if k.ps != nil {
		if err := k.ps.harvest(); err != nil {
			return err
		}
	}
	if k.rx != nil {
		if err := k.rx.harvest(); err != nil {
			return err
		}
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.I64(int64(k.stage))
	cw.I64(int64(k.h))
	cw.I64(int64(k.n))
	cw.I64(int64(k.remaining))
	cw.NodeIDs(k.sources)
	writePowerState(cw, k.ps)
	writeRelaxState(cw, k.rx)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), recomputing the width
// rows for a completed-run blob.
func (k *WidestKSourceKernel) RestoreState(r io.Reader) error {
	if k.stage != 0 {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	stage := int(cr.I64())
	h := int(cr.I64())
	n := int(cr.I64())
	remaining := int(cr.I64())
	sources := cr.NodeIDs()
	ps, err := readPowerState(cr)
	if err != nil {
		return err
	}
	rx, err := readRelaxState(cr)
	if err != nil {
		return err
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if stage < 1 || stage > 3 {
		return fmt.Errorf("algo: %s state has implausible stage %d", k.Name(), stage)
	}
	k.stage, k.h, k.n, k.remaining, k.sources, k.ps, k.rx = stage, h, n, remaining, sources, ps, rx
	if k.ps != nil {
		k.ps.gather = k.gather
	}
	if k.rx != nil {
		k.rx.gather = k.gather
	}
	if stage == 3 && rx != nil {
		k.width = rx.valueRows()
	}
	return nil
}

// SnapshotState serializes the Borůvka state at a phase boundary: the
// component labels and the forest accumulated so far. The harvest —
// gathering leader choices and merging components — runs first, so the
// blob never carries raw per-node pass state.
func (k *MSTKernel) SnapshotState(w io.Writer) error {
	if err := k.harvest(); err != nil {
		return err
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.Bool(k.started)
	cw.Bool(k.done)
	cw.I64(int64(k.n))
	cw.I64(k.weight)
	cw.NodeIDs(k.comp)
	flat := make([]int64, 0, 3*len(k.edges))
	for _, e := range k.edges {
		flat = append(flat, int64(e.U), int64(e.V), e.W)
	}
	cw.I64s(flat)
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise). The graph-derived fields
// (adjacency, packing widths) are rebuilt by the first Nodes call on
// the restored session, which re-runs start's validation against the
// session graph.
func (k *MSTKernel) RestoreState(r io.Reader) error {
	if k.started || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	started := cr.Bool()
	done := cr.Bool()
	n := int(cr.I64())
	weight := cr.I64()
	comp := cr.NodeIDs()
	flat := cr.I64s()
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if len(flat)%3 != 0 {
		return fmt.Errorf("algo: %s state has a torn edge list (%d words)", k.Name(), len(flat))
	}
	if started && len(comp) != n {
		return fmt.Errorf("algo: %s state has %d component labels for n = %d", k.Name(), len(comp), n)
	}
	edges := make([]MSTEdge, 0, len(flat)/3)
	for i := 0; i+2 < len(flat); i += 3 {
		edges = append(edges, MSTEdge{U: core.NodeID(flat[i]), V: core.NodeID(flat[i+1]), W: flat[i+2]})
	}
	k.started, k.done, k.n, k.weight, k.comp, k.edges = started, done, n, weight, comp, edges
	return nil
}

// SnapshotState serializes the sampling header plus the embedded
// k-source pipeline's own checkpoint blob (the ApproxKSourceKernel
// nesting idiom).
func (k *DiameterEstimateKernel) SnapshotState(w io.Writer) error {
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.String(k.name)
	cw.Bool(k.started)
	cw.Bool(k.done)
	cw.I64(int64(k.sample))
	cw.I64(k.seed)
	cw.I64(int64(k.n))
	cw.NodeIDs(k.sources)
	hopset.WriteParams(cw, k.params)
	if k.started && !k.done {
		var inner writerBuffer
		if err := k.inner().(clique.Checkpointable).SnapshotState(&inner); err != nil {
			return err
		}
		cw.Blob(inner.buf)
	} else {
		cw.Blob(nil)
	}
	if k.done {
		cw.I64(k.est.Estimate)
		cw.I64s(k.est.Ecc)
	}
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel (clique.ErrKernelStarted otherwise), rebuilding and restoring
// the embedded pipeline from its nested blob.
func (k *DiameterEstimateKernel) RestoreState(r io.Reader) error {
	if k.started || k.done {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if err := checkStateVersion(cr); err != nil {
		return err
	}
	name := cr.String()
	started := cr.Bool()
	done := cr.Bool()
	sample := int(cr.I64())
	seed := cr.I64()
	n := int(cr.I64())
	sources := cr.NodeIDs()
	params := hopset.ReadParams(cr)
	innerBlob := cr.Blob()
	var est DiameterEstimate
	if done {
		est = DiameterEstimate{Estimate: cr.I64(), Sources: sources, Ecc: cr.I64s()}
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if name != k.name {
		return fmt.Errorf("algo: state is for kernel %q, not %q", name, k.name)
	}
	k.started, k.done, k.sample, k.seed, k.n, k.sources, k.params, k.est = started, done, sample, seed, n, sources, params, est
	if len(innerBlob) > 0 {
		if k.approx {
			k.innerA = NewApproxKSourceKernel(sources, params)
			k.innerA.SetGatherer(k.gather)
			if err := k.innerA.RestoreState(byteReader(innerBlob)); err != nil {
				return err
			}
		} else {
			k.innerK = NewKSourceKernel(sources, core.Log2Ceil(n)+1)
			k.innerK.SetGatherer(k.gather)
			if err := k.innerK.RestoreState(byteReader(innerBlob)); err != nil {
				return err
			}
		}
	}
	return nil
}

// SnapshotState forwards to the embedded k-source pipeline.
func (k *ApproxSSSPKernel) SnapshotState(w io.Writer) error { return k.inner.SnapshotState(w) }

// RestoreState forwards to the embedded k-source pipeline.
func (k *ApproxSSSPKernel) RestoreState(r io.Reader) error { return k.inner.RestoreState(r) }

// writerBuffer is a minimal in-memory io.Writer (avoiding a bytes
// import for one use).
type writerBuffer struct{ buf []byte }

// Write appends p to the buffer.
func (w *writerBuffer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// byteReader adapts a byte slice to io.Reader.
func byteReader(p []byte) io.Reader { return &sliceReader{p: p} }

// sliceReader is the io.Reader behind byteReader.
type sliceReader struct{ p []byte }

// Read copies from the remaining bytes.
func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.p) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.p)
	r.p = r.p[n:]
	return n, nil
}
