package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// boolAdjacency builds g's reflexive boolean adjacency matrix: entry
// (u,v) is One iff u = v or {u,v} is an edge. Weights are irrelevant
// over the boolean semiring, so any graph is accepted.
func boolAdjacency(g *graph.CSR) (*matmul.Matrix, error) {
	return matmul.FromGraph(g, core.BoolOrAnd(), true)
}

// reachMatrix converts a boolean matrix into dense rows of bools.
func reachMatrix(m *matmul.Matrix) [][]bool {
	out := make([][]bool, m.N)
	for v := 0; v < m.N; v++ {
		row := make([]bool, m.N)
		cols, vals := m.Row(core.NodeID(v))
		for i, j := range cols {
			row[j] = vals[i] != 0
		}
		out[v] = row
	}
	return out
}

// TransitiveClosureKernel computes all-pairs reachability by boolean
// repeated squaring: R_1 = A (the reflexive or/and adjacency matrix),
// R_2h = R_h ⊗ R_h, one engine pass per squaring, stopping once the hop
// horizon reaches n-1 — the unweighted shadow of APSPKernel's distance
// product. The result is the reflexive transitive closure of g (every
// vertex reaches itself).
type TransitiveClosureKernel struct {
	n       int
	span    int
	d       *matmul.Matrix
	pass    *matmul.Pass
	reach   [][]bool
	started bool
	done    bool
	gather  engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so every
// squaring's harvest assembles the full product on every rank (clique
// TransportAware hook).
func (k *TransitiveClosureKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewTransitiveClosureKernel returns a transitive-closure kernel.
func NewTransitiveClosureKernel() *TransitiveClosureKernel { return &TransitiveClosureKernel{} }

// Name identifies the kernel.
func (k *TransitiveClosureKernel) Name() string { return "closure" }

// Nodes returns one squaring pass per call until the hop horizon covers
// n-1, then harvests the reachability matrix.
func (k *TransitiveClosureKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if !k.started {
		if g == nil {
			return nil, fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
		}
		a, err := boolAdjacency(g)
		if err != nil {
			return nil, err
		}
		k.d, k.n, k.span, k.started = a, g.N, 1, true
	}
	if err := k.harvest(); err != nil {
		return nil, err
	}
	if k.span >= k.n-1 {
		k.reach = reachMatrix(k.d)
		k.done = true
		return nil, nil
	}
	pass, err := matmul.NewPass(k.d, k.d, false)
	if err != nil {
		return nil, err
	}
	pass.SetGatherer(k.gather)
	k.pass = pass
	return pass.Nodes(), nil
}

// harvest folds the completed squaring pass (if any) into the
// reachability matrix and doubles the covered hop horizon. Idempotent,
// so checkpointing can force it at a pass boundary.
func (k *TransitiveClosureKernel) harvest() error {
	if k.pass == nil {
		return nil
	}
	if err := k.pass.Gather(); err != nil {
		return err
	}
	k.d = k.pass.Sparse()
	k.pass = nil
	k.span *= 2
	return nil
}

// MaxRoundsHint forwards the in-flight squaring's round-bound hint.
func (k *TransitiveClosureKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the reachability matrix ([][]bool, reach[u][v] true
// iff v is reachable from u, reflexively), nil before completion.
func (k *TransitiveClosureKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.reach
}

// Reach returns the typed reachability matrix, nil before completion.
func (k *TransitiveClosureKernel) Reach() [][]bool { return k.reach }

// ClosureRef is the sequential reachability reference: a queue BFS from
// src, returning the reflexive reachable set as a bool vector. Any
// correct closure computation must match it bit for bit.
func ClosureRef(g *graph.CSR, src core.NodeID) []bool {
	reach := make([]bool, g.N)
	if g.N == 0 {
		return reach
	}
	reach[src] = true
	queue := []core.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if !reach[u] {
				reach[u] = true
				queue = append(queue, u)
			}
		}
	}
	return reach
}

// init registers the closure kernel.
func init() {
	clique.Register("closure", func(*graph.CSR) (clique.Kernel, error) {
		return NewTransitiveClosureKernel(), nil
	})
}
