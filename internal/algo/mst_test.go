package algo

import (
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// mstTestGraphs is the seeded instance sweep for the Borůvka kernel:
// duplicate weights (tie-breaking matters), disconnected graphs
// (forests, not trees), degenerate shapes.
func mstTestGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"gnp_sparse":    graph.RandomGNPWeighted(19, 0.15, 9, 3),
		"gnp_dense":     graph.RandomGNPWeighted(14, 0.5, 4, 5), // heavy weight ties
		"gnp_unit":      graph.RandomGNP(16, 0.2, 9),            // all-ties: pure ID tie-break
		"path":          graph.Path(11).WithUniformRandomWeights(6, 31),
		"single":        graph.Path(1),
		"two":           graph.Path(2).WithUniformRandomWeights(3, 4),
		"edgeless":      graph.RandomGNP(7, 0, 1),
		"two_component": twoComponents(),
	}
}

// TestMSTMatchesKruskal checks the distributed Borůvka forest bit for
// bit — weight and edge set — against the sequential Kruskal oracle
// with the same (w, lo, hi) tie-break order.
func TestMSTMatchesKruskal(t *testing.T) {
	for name, g := range mstTestGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			k := NewMSTKernel()
			runKernel(t, g, k)
			got, ok := k.Result().(MSTResult)
			if !ok {
				t.Fatalf("result is %T, want MSTResult", k.Result())
			}
			want := MSTRef(g)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("kernel %+v, oracle %+v", got, want)
			}
		})
	}
}

// TestMSTForestProperties checks structural invariants independently of
// the oracle: the chosen edges are graph edges with their true weights,
// acyclic, and span every connected component (edge count = n - number
// of components).
func TestMSTForestProperties(t *testing.T) {
	for name, g := range mstTestGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			k := NewMSTKernel()
			runKernel(t, g, k)
			res := k.Forest()
			gw := g.WithUnitWeights()

			// Count the graph's connected components via the BFS oracle.
			comps := 0
			seen := make([]bool, gw.N)
			for v := 0; v < gw.N; v++ {
				if seen[v] {
					continue
				}
				comps++
				for u, r := range ClosureRef(gw, core.NodeID(v)) {
					if r {
						seen[u] = true
					}
				}
			}
			if got, want := len(res.Edges), gw.N-comps; got != want {
				t.Fatalf("forest has %d edges, want n - #components = %d", got, want)
			}

			parent := make([]int, gw.N)
			for v := range parent {
				parent[v] = v
			}
			find := func(v int) int {
				for parent[v] != v {
					parent[v] = parent[parent[v]]
					v = parent[v]
				}
				return v
			}
			var total int64
			for _, e := range res.Edges {
				if e.U >= e.V {
					t.Fatalf("edge %+v not in canonical order", e)
				}
				found := false
				nbrs := gw.Neighbors(e.U)
				ws := gw.NeighborWeights(e.U)
				for i, u := range nbrs {
					if u == e.V && ws[i] == e.W {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge %+v is not a graph edge", e)
				}
				ru, rv := find(int(e.U)), find(int(e.V))
				if ru == rv {
					t.Fatalf("edge %+v closes a cycle", e)
				}
				parent[ru] = rv
				total += e.W
			}
			if total != res.Weight {
				t.Fatalf("edge weights sum to %d, result claims %d", total, res.Weight)
			}
		})
	}
}

// TestMSTRunsMultiplePasses pins the pass protocol: on any graph with
// an edge, the terminating choice-free phase makes the kernel run at
// least two passes — the property the crash/resume sweep relies on.
func TestMSTRunsMultiplePasses(t *testing.T) {
	g := graph.Path(2).WithUnitWeights()
	k := NewMSTKernel()
	passes := 0
	for {
		nodes, err := k.Nodes(g)
		if err != nil {
			t.Fatal(err)
		}
		if nodes == nil {
			break
		}
		passes++
		// Drive the pass on a throwaway engine.
		if _, err := engine.RunOnce(nodes, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if passes < 2 {
		t.Fatalf("kernel completed in %d passes, want >= 2", passes)
	}
}
