package algo

import (
	"context"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// TestRelaxKernelMatchesApproxPipeline proves the cache fast path: a
// RelaxKernel over the hopset-augmented matrix, with RelaxProducts
// products, returns bit-identical distances to the full two-stage
// ApproxKSourceKernel — while running only the relaxation passes.
func TestRelaxKernelMatchesApproxPipeline(t *testing.T) {
	g := graph.RandomGNPWeighted(40, 0.15, 16, 3)
	sources := []core.NodeID{0, 7, 19}
	p := hopset.Params{Eps: 0.25}

	// Full pipeline (stage 1 + stage 2).
	full := NewApproxKSourceKernel(sources, p)
	s1, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if err := s1.Run(context.Background(), full); err != nil {
		t.Fatalf("approx pipeline: %v", err)
	}
	fullPasses := s1.Stats().Runs

	// Cache fast path: augment once, relax only.
	hs := full.Hopset()
	aug, err := hopset.Augment(hs.Base, hs)
	if err != nil {
		t.Fatal(err)
	}
	products := RelaxProducts(hs.Beta, g.N)
	relax := NewRelaxKernel(aug, sources, products)
	s2, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Run(context.Background(), relax); err != nil {
		t.Fatalf("relax kernel: %v", err)
	}

	fd, rd := full.Dist(), relax.Dist()
	for j := range sources {
		for v := 0; v < g.N; v++ {
			if fd[j][v] != rd[j][v] {
				t.Fatalf("source %d vertex %d: relax %d != pipeline %d",
					sources[j], v, rd[j][v], fd[j][v])
			}
		}
	}
	// Zero stage-1 passes: the relax run spends exactly `products`
	// engine passes, strictly fewer than the full pipeline.
	if got := s2.Stats().Runs; got != products {
		t.Fatalf("relax run used %d passes, want exactly %d (zero stage-1)", got, products)
	}
	if fullPasses <= products {
		t.Fatalf("full pipeline used %d passes, expected more than %d", fullPasses, products)
	}
}

func TestRelaxKernelValidation(t *testing.T) {
	m, err := matmul.FromGraph(graph.Path(4).WithUnitWeights(), core.MinPlus(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		k    *RelaxKernel
		want string
	}{
		{"nil-matrix", NewRelaxKernel(nil, nil, 1), "requires a matrix"},
		{"negative-products", NewRelaxKernel(m, nil, -1), "must be >= 0"},
		{"bad-source", NewRelaxKernel(m, []core.NodeID{9}, 1), "out of range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := clique.NewSize(4)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			err = s.Run(context.Background(), tc.k)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRelaxKernelZeroProducts covers the n=1 degenerate: no products,
// distances straight from the indicator columns.
func TestRelaxKernelZeroProducts(t *testing.T) {
	m, err := matmul.FromGraph(graph.Path(1).WithUnitWeights(), core.MinPlus(), true)
	if err != nil {
		t.Fatal(err)
	}
	k := NewRelaxKernel(m, []core.NodeID{0}, 0)
	s, err := clique.NewSize(1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	if d := k.Dist(); len(d) != 1 || d[0][0] != 0 {
		t.Fatalf("Dist() = %v, want [[0]]", d)
	}
}
