package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// bfordNode performs one distance-product-style relaxation per round:
// whenever its tentative distance improves, it sends dist + w(v,u)
// along every incident edge — i.e. the candidate distance the neighbor
// would obtain through v. This is the per-round min-plus step that the
// Dory-Parter SSSP pipeline iterates; here it runs to convergence,
// which takes at most n-1 rounds (the maximum hop count of a shortest
// weighted path — note this can far exceed the hop-diameter on graphs
// with heavy edges). Weights must be non-negative (payloads are
// unsigned words).
type bfordNode struct {
	g    *graph.CSR
	src  core.NodeID
	dist int64
}

func (nd *bfordNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	improved := false
	if r == 0 && ctx.ID() == nd.src {
		nd.dist = 0
		improved = true
	}
	for _, m := range inbox {
		if d := int64(m.Payload); nd.dist == Unreached || d < nd.dist {
			nd.dist = d
			improved = true
		}
	}
	if !improved {
		return nil
	}
	nbrs := nd.g.Neighbors(ctx.ID())
	ws := nd.g.NeighborWeights(ctx.ID())
	for i, v := range nbrs {
		if err := ctx.Send(v, uint64(nd.dist+ws[i])); err != nil {
			return err
		}
	}
	return nil
}

// BellmanFord computes single-source shortest-path distances on a
// weighted g (non-negative integer weights) by iterated parallel edge
// relaxation over the engine. It returns the distance vector
// (Unreached for unreachable vertices) and the run's engine stats.
// BellmanFord is a thin wrapper over running a BellmanFordKernel on a
// single-use clique session; unlike the registry-constructed kernel it
// keeps the historical strictness of rejecting unweighted graphs.
func BellmanFord(g *graph.CSR, src core.NodeID, opts engine.Options) ([]int64, *engine.Stats, error) {
	if !g.Weighted() {
		return nil, nil, fmt.Errorf("algo: BellmanFord requires a weighted graph")
	}
	k := NewBellmanFordKernel(src)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// BellmanFordRef is the sequential reference: classic |V|-1 passes of
// relaxation over all arcs.
func BellmanFordRef(g *graph.CSR, src core.NodeID) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Unreached
	}
	if g.N == 0 {
		return dist
	}
	dist[src] = 0
	for pass := 0; pass < g.N-1; pass++ {
		changed := false
		for v := 0; v < g.N; v++ {
			if dist[v] == Unreached {
				continue
			}
			nbrs := g.Neighbors(core.NodeID(v))
			ws := g.NeighborWeights(core.NodeID(v))
			for i, u := range nbrs {
				if cand := dist[v] + ws[i]; dist[u] == Unreached || cand < dist[u] {
					dist[u] = cand
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
