package algo

import (
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

func testGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"gnp_sparse":   graph.RandomGNP(80, 0.04, 5),
		"gnp_medium":   graph.RandomGNP(64, 0.1, 6),
		"gnp_dense":    graph.RandomGNP(40, 0.5, 7),
		"gnp_empty":    graph.RandomGNP(20, 0, 8),
		"path":         graph.Path(50),
		"clique":       graph.Clique(24),
		"grid":         graph.Grid(8, 11),
		"disconnected": graph.RandomGNP(60, 0.02, 9),
		"tiny":         graph.Path(2),
		"singleton":    graph.Path(1),
	}
}

func TestBFSMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for _, src := range []core.NodeID{0, core.NodeID(g.N / 2), core.NodeID(g.N - 1)} {
			got, stats, err := BFS(g, src, engine.Options{})
			if err != nil {
				t.Fatalf("%s src=%d: %v", name, src, err)
			}
			want := BFSRef(g, src)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s src=%d: BFS mismatch\n got %v\nwant %v", name, src, got, want)
			}
			// The flood needs eccentricity+2 rounds (last improvement,
			// its broadcast, the quiet round); sanity-bound it.
			if stats.Rounds > g.N+2 {
				t.Errorf("%s src=%d: BFS took %d rounds for n=%d", name, src, stats.Rounds, g.N)
			}
		}
	}
}

func TestBFSDifferentWorkerCounts(t *testing.T) {
	g := graph.RandomGNP(70, 0.08, 12)
	want := BFSRef(g, 3)
	for _, workers := range []int{1, 2, 4, 16} {
		got, _, err := BFS(g, 3, engine.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: BFS mismatch", workers)
		}
	}
}

func TestBellmanFordMatchesReference(t *testing.T) {
	for name, g := range testGraphs() {
		for wi, wg := range []*graph.CSR{
			g.WithUniformRandomWeights(101, 10),
			g.WithUniformRandomWeights(202, 1000),
		} {
			for _, src := range []core.NodeID{0, core.NodeID(g.N - 1)} {
				got, _, err := BellmanFord(wg, src, engine.Options{})
				if err != nil {
					t.Fatalf("%s w%d src=%d: %v", name, wi, src, err)
				}
				want := BellmanFordRef(wg, src)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s w%d src=%d: BellmanFord mismatch\n got %v\nwant %v",
						name, wi, src, got, want)
				}
			}
		}
	}
}

func TestBellmanFordUnitWeightsEqualBFS(t *testing.T) {
	g := graph.RandomGNP(60, 0.07, 33)
	unit := g.WithUniformRandomWeights(1, 1) // maxW=1 => all weights 1
	bf, _, err := BellmanFord(unit, 0, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bfs, _, err := BFS(g, 0, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bf, bfs) {
		t.Error("unit-weight Bellman-Ford disagrees with BFS")
	}
}

func TestAlgoInputValidation(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := BFS(g, 99, engine.Options{}); err == nil {
		t.Error("BFS accepted out-of-range source")
	}
	if _, _, err := BellmanFord(g, 0, engine.Options{}); err == nil {
		t.Error("BellmanFord accepted unweighted graph")
	}
	wg := g.WithUniformRandomWeights(1, 5)
	if _, _, err := BellmanFord(wg, -1, engine.Options{}); err == nil {
		t.Error("BellmanFord accepted negative source")
	}
	bad := &graph.CSR{N: wg.N, Offsets: wg.Offsets, Targets: wg.Targets,
		Weights: []int64{-1, 1, 1, 1, 1, 1}}
	if _, _, err := BellmanFord(bad, 0, engine.Options{}); err == nil {
		t.Error("BellmanFord accepted negative weight")
	}
}
