package algo

import (
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestZeroPassSuccessReturnsStats is the regression test for the
// session-wrapper stats contract: free functions that legitimately
// complete without a single engine pass (APSP on n <= 2, hop bound 0)
// must still return non-nil zero stats, as they always have — callers
// dereference stats after checking err.
func TestZeroPassSuccessReturnsStats(t *testing.T) {
	g := graph.Path(2).WithUniformRandomWeights(1, 3)
	dist, stats, err := APSP(g, engine.Options{})
	if err != nil {
		t.Fatalf("APSP: %v", err)
	}
	if stats == nil {
		t.Fatal("APSP returned nil stats on a zero-pass success")
	}
	if dist[0][1] != g.Weights[0] {
		t.Fatalf("dist[0][1] = %d, want %d", dist[0][1], g.Weights[0])
	}
	if _, stats, err = HopLimitedDistances(g, 0, engine.Options{}); err != nil || stats == nil {
		t.Fatalf("HopLimitedDistances(0): stats=%v err=%v, want non-nil stats", stats, err)
	}
	// Validation failures keep the historical nil-stats contract.
	if _, stats, err = APSP(graph.Path(3), engine.Options{}); err == nil || stats != nil {
		t.Fatalf("unweighted APSP: stats=%v err=%v, want nil stats + error", stats, err)
	}
}
