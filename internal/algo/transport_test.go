package algo

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// TestApproxSSSPAcrossTransports runs the paper's headline kernel on a
// clique sharded across socket-transport ranks and requires the result
// to be indistinguishable from the in-process run: every rank must
// hold the complete distance vector (the TransportAware gather at each
// harvest) bit-identical to the MemTransport reference, and every
// rank's replay digest chain must match it round for round.
func TestApproxSSSPAcrossTransports(t *testing.T) {
	const n = 64
	g := graph.RandomGNP(n, 0.15, 1).WithUniformRandomWeights(2, 16)
	params := hopset.Params{}

	runRank := func(tr engine.Transport) ([]int64, []uint64, error) {
		opts := []clique.Option{clique.WithDigests()}
		if tr != nil {
			opts = append(opts, clique.WithTransport(tr))
		}
		s, err := clique.New(g, opts...)
		if err != nil {
			if tr != nil {
				tr.Close()
			}
			return nil, nil, err
		}
		defer s.Close()
		k := NewApproxSSSPKernel(0, params)
		if err := s.Run(context.Background(), k); err != nil {
			return nil, nil, err
		}
		return k.Dist(), s.Digests(), nil
	}

	wantDist, wantDigests, err := runRank(nil)
	if err != nil {
		t.Fatalf("mem reference: %v", err)
	}
	if wantDist == nil || len(wantDigests) == 0 {
		t.Fatalf("mem reference produced dist %v, %d digests", wantDist, len(wantDigests))
	}

	for _, tc := range []struct {
		transport string
		ranks     int
	}{
		{"socket-unix", 2},
		{"socket-tcp", 3},
	} {
		t.Run(fmt.Sprintf("%s-r%d", tc.transport, tc.ranks), func(t *testing.T) {
			trs, err := engine.NewTransportCluster(tc.transport, tc.ranks)
			if err != nil {
				t.Fatalf("NewTransportCluster: %v", err)
			}
			dists := make([][]int64, tc.ranks)
			digests := make([][]uint64, tc.ranks)
			errs := make([]error, tc.ranks)
			var wg sync.WaitGroup
			for i := range trs {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					dists[rank], digests[rank], errs[rank] = runRank(trs[rank])
				}(i)
			}
			wg.Wait()
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}
			for rank := 0; rank < tc.ranks; rank++ {
				if !reflect.DeepEqual(dists[rank], wantDist) {
					t.Errorf("rank %d distances diverge from the in-process run", rank)
				}
				if !reflect.DeepEqual(digests[rank], wantDigests) {
					t.Errorf("rank %d digest chain diverges from the in-process run (%d vs %d rounds)",
						rank, len(digests[rank]), len(wantDigests))
				}
			}
		})
	}
}
