package algo

import (
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// trueDiameter computes the exact weighted diameter from the
// Bellman-Ford oracle: the maximum finite eccentricity, Unreached for
// disconnected graphs.
func trueDiameter(g *graph.CSR) int64 {
	diam := int64(0)
	for v := 0; v < g.N; v++ {
		ecc := EccentricityRef(g, core.NodeID(v))
		if ecc == Unreached {
			return Unreached
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// TestDiameterExactBracketing checks the exact estimator's guarantees
// on connected graphs: each reported eccentricity is bit-identical to
// the sequential oracle, and the estimate sits in
// [max sampled ecc, diameter].
func TestDiameterExactBracketing(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"gnp":  graph.RandomGNPWeighted(18, 0.25, 9, 13),
		"path": graph.Path(12).WithUniformRandomWeights(4, 9),
		"dense": graph.RandomGNPWeighted(9, 0.6, 5, 2),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			if trueDiameter(g) == Unreached {
				t.Skip("seeded graph came out disconnected")
			}
			k := NewDiameterEstimateKernel(4, 1)
			runKernel(t, g, k)
			est := k.Estimate()
			if len(est.Sources) == 0 || len(est.Ecc) != len(est.Sources) {
				t.Fatalf("malformed estimate %+v", est)
			}
			diam := trueDiameter(g)
			for j, src := range est.Sources {
				want := EccentricityRef(g, src)
				if est.Ecc[j] != want {
					t.Fatalf("ecc(%d) = %d, oracle %d", src, est.Ecc[j], want)
				}
				if est.Estimate < est.Ecc[j] {
					t.Fatalf("estimate %d below sampled ecc %d", est.Estimate, est.Ecc[j])
				}
			}
			if est.Estimate > diam {
				t.Fatalf("estimate %d exceeds true diameter %d", est.Estimate, diam)
			}
		})
	}
}

// TestDiameterAllSourcesIsExact checks that sampling every vertex
// recovers the exact diameter.
func TestDiameterAllSourcesIsExact(t *testing.T) {
	g := graph.RandomGNPWeighted(15, 0.3, 9, 21)
	if trueDiameter(g) == Unreached {
		t.Skip("seeded graph came out disconnected")
	}
	k := NewDiameterEstimateKernel(g.N, 7)
	runKernel(t, g, k)
	if got, want := k.Estimate().Estimate, trueDiameter(g); got != want {
		t.Fatalf("all-sources estimate %d, true diameter %d", got, want)
	}
}

// TestDiameterApproxBracketing checks the hopset-backed estimator's
// bracketing on connected graphs: every sampled true eccentricity
// lower-bounds the estimate, which stays within (1+eps) of the true
// diameter.
func TestDiameterApproxBracketing(t *testing.T) {
	g := graph.RandomGNPWeighted(24, 0.2, 9, 5)
	if trueDiameter(g) == Unreached {
		t.Skip("seeded graph came out disconnected")
	}
	eps := 0.25
	k := NewApproxDiameterEstimateKernel(4, 3, hopset.Params{Eps: eps})
	runKernel(t, g, k)
	est := k.Estimate()
	diam := trueDiameter(g)
	for j, src := range est.Sources {
		ecc := EccentricityRef(g, src)
		if est.Ecc[j] < ecc {
			t.Fatalf("approx ecc(%d) = %d below true %d", src, est.Ecc[j], ecc)
		}
		if est.Estimate < ecc {
			t.Fatalf("estimate %d below sampled true ecc %d", est.Estimate, ecc)
		}
	}
	if limit := float64(diam) * (1 + eps); float64(est.Estimate) > limit+1e-9 {
		t.Fatalf("estimate %d exceeds (1+eps) x diameter = %g", est.Estimate, limit)
	}
}

// TestDiameterDisconnectedIsUnreached pins the sentinel convention: a
// disconnected graph has infinite diameter.
func TestDiameterDisconnectedIsUnreached(t *testing.T) {
	k := NewDiameterEstimateKernel(8, 1)
	runKernel(t, twoComponents(), k)
	est := k.Estimate()
	if est.Estimate != Unreached {
		t.Fatalf("estimate on a disconnected graph = %d, want Unreached", est.Estimate)
	}
}

// TestSampleSourcesDeterministicAndDistinct pins the sampler: same
// inputs, same sources; distinct vertices; clamped to n.
func TestSampleSourcesDeterministicAndDistinct(t *testing.T) {
	a := sampleSources(20, 5, 42)
	b := sampleSources(20, 5, 42)
	if len(a) != 5 {
		t.Fatalf("sampled %d sources, want 5", len(a))
	}
	seen := map[core.NodeID]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling is not deterministic: %v vs %v", a, b)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate source %d in %v", a[i], a)
		}
		seen[a[i]] = true
	}
	if got := sampleSources(3, 10, 1); len(got) != 3 {
		t.Fatalf("sample larger than n not clamped: %v", got)
	}
}
