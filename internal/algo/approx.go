package algo

import (
	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// ApproxKSourceKernel computes (1+ε)-approximate shortest-path
// distances from k source vertices as a two-stage pipeline on one warm
// clique session — the hopset swap the paper's pipeline is built
// around. It is KSourceKernel with stage 1 replaced:
//
//	stage 1 (hopset construction): run hopset.ConstructKernel's β
//	  limited-hop products, then Augment the rounded adjacency with
//	  the shortcut star. Where KSourceKernel pays for the full power
//	  matrix S = A^h, the hopset only moves hub columns.
//	stage 2 (per-source relaxation): exactly KSourceKernel's stage 2
//	  with h = β: starting from the source indicator columns, iterate
//	  ceil(β) dense products B_{t+1} = S ⊗ B_t over the augmented
//	  matrix S. The hopset guarantee makes β-hop distances on S
//	  (1+ε)-accurate, so β products suffice where exactness needed
//	  ceil((n-1)/h).
//
// Every reported distance d satisfies d* <= d (always: shortcuts carry
// genuine path weights and rounding only inflates) and d <= (1+ε)·d*
// under the hopset coverage guarantee (deterministic when every vertex
// is a hub — HubRate 1 — and with high probability over Params.Seed
// otherwise). Unweighted session graphs are treated as unit-weighted.
type ApproxKSourceKernel struct {
	name    string
	sources []core.NodeID
	params  hopset.Params

	stage  int // 0: unstarted, 1: hopset, 2: relaxing, 3: done
	ck     *hopset.ConstructKernel
	hs     *hopset.Hopset
	rx     *relaxState
	n      int
	dist   [][]int64
	gather engine.Gatherer
}

// SetGatherer injects the session transport's all-gather into both
// pipeline stages so every harvest assembles the full product on every
// rank (clique TransportAware hook).
func (k *ApproxKSourceKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.ck != nil {
		k.ck.SetGatherer(g)
	}
	if k.rx != nil {
		k.rx.gather = g
	}
}

// NewApproxKSourceKernel returns a (1+ε)-approximate k-source distance
// kernel for the given source vertices and hopset parameters
// (zero-value fields select the defaults; see hopset.Params).
func NewApproxKSourceKernel(sources []core.NodeID, p hopset.Params) *ApproxKSourceKernel {
	return &ApproxKSourceKernel{name: "approx-ksource", sources: sources, params: p}
}

// Name identifies the kernel.
func (k *ApproxKSourceKernel) Name() string { return k.name }

// Nodes advances the pipeline: it drives the embedded hopset
// construction pass by pass, augments, and then returns one relaxation
// product per call until β products have run.
func (k *ApproxKSourceKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.stage == 0 {
		for _, src := range k.sources {
			if err := checkSource(k.Name(), src, g); err != nil {
				return nil, err
			}
		}
		k.n = g.N
		k.ck = hopset.NewConstructKernel(k.params)
		k.ck.SetGatherer(k.gather)
		k.stage = 1
	}
	if k.stage == 1 {
		nodes, err := k.ck.Nodes(g)
		if err != nil {
			return nil, err
		}
		if nodes != nil {
			return nodes, nil
		}
		// Construction finished: augment and hand the source columns to
		// the shared relaxation stage. ceil(β) products, clamped to
		// n-1: no shortest path has more hops than that even without
		// any shortcut.
		k.hs = k.ck.Hopset()
		k.ck = nil
		s, err := hopset.Augment(k.hs.Base, k.hs)
		if err != nil {
			return nil, err
		}
		remaining := k.hs.Beta
		if limit := k.n - 1; remaining > limit {
			remaining = limit
		}
		k.rx = newRelaxState(s, k.sources, remaining)
		k.rx.gather = k.gather
		k.stage = 2
	}
	if k.stage == 2 {
		pass, err := k.rx.next()
		if err != nil {
			return nil, err
		}
		if pass != nil {
			return pass.Nodes(), nil
		}
		k.dist = k.rx.distRows()
		k.stage = 3
	}
	return nil, nil
}

// MaxRoundsHint forwards the in-flight stage's round-bound hint.
func (k *ApproxKSourceKernel) MaxRoundsHint() int {
	if k.ck != nil {
		return k.ck.MaxRoundsHint()
	}
	if k.rx != nil {
		return k.rx.hint()
	}
	return 0
}

// Result returns the distance rows ([][]int64, dist[j][v] = the
// approximate distance from sources[j] to v, Unreached when
// disconnected), nil before completion.
func (k *ApproxKSourceKernel) Result() any {
	if k.stage != 3 {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance rows, nil before completion.
func (k *ApproxKSourceKernel) Dist() [][]int64 { return k.dist }

// Hopset returns the hopset stage 1 constructed, nil before stage 1
// completes — observability for tests and benchmarks.
func (k *ApproxKSourceKernel) Hopset() *hopset.Hopset { return k.hs }

// ApproxSSSPKernel computes (1+ε)-approximate single-source
// shortest-path distances — the paper's headline workload — as the
// one-source specialization of ApproxKSourceKernel: hopset
// construction, then ceil(β) relaxation products over the augmented
// matrix, all on one warm session. Result/Dist hold the distance
// vector ([]int64) after completion.
type ApproxSSSPKernel struct {
	inner *ApproxKSourceKernel
}

// SetGatherer forwards the transport's all-gather to the embedded
// k-source pipeline (clique TransportAware hook).
func (k *ApproxSSSPKernel) SetGatherer(g engine.Gatherer) { k.inner.SetGatherer(g) }

// NewApproxSSSPKernel returns a (1+ε)-approximate SSSP kernel from src
// with the given hopset parameters (zero-value fields select the
// defaults; see hopset.Params).
func NewApproxSSSPKernel(src core.NodeID, p hopset.Params) *ApproxSSSPKernel {
	inner := NewApproxKSourceKernel([]core.NodeID{src}, p)
	inner.name = "approx-sssp"
	return &ApproxSSSPKernel{inner: inner}
}

// Name identifies the kernel.
func (k *ApproxSSSPKernel) Name() string { return k.inner.Name() }

// Nodes forwards to the embedded k-source pipeline.
func (k *ApproxSSSPKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	return k.inner.Nodes(g)
}

// MaxRoundsHint forwards the in-flight stage's round-bound hint.
func (k *ApproxSSSPKernel) MaxRoundsHint() int { return k.inner.MaxRoundsHint() }

// Result returns the distance vector ([]int64, Unreached for
// disconnected vertices), nil before completion.
func (k *ApproxSSSPKernel) Result() any {
	if d := k.Dist(); d != nil {
		return d
	}
	return nil
}

// Dist returns the typed distance vector, nil before completion.
func (k *ApproxSSSPKernel) Dist() []int64 {
	rows := k.inner.Dist()
	if rows == nil {
		return nil
	}
	return rows[0]
}

// Hopset returns the hopset stage 1 constructed, nil before stage 1
// completes.
func (k *ApproxSSSPKernel) Hopset() *hopset.Hopset { return k.inner.Hopset() }

// ApproxSSSP computes (1+ε)-approximate single-source shortest-path
// distances on a weighted g (non-negative integer weights) by running
// an ApproxSSSPKernel on a single-use clique session: dist[v] is
// within [d*, (1+ε)·d*] of the true distance d* under the hopset
// guarantee (see ApproxKSourceKernel), Unreached when disconnected.
func ApproxSSSP(g *graph.CSR, src core.NodeID, p hopset.Params, opts engine.Options) ([]int64, *engine.Stats, error) {
	if err := checkDistanceInput(g); err != nil {
		return nil, nil, err
	}
	k := NewApproxSSSPKernel(src, p)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// ApproxKSourceDistances computes (1+ε)-approximate shortest-path
// distances from each source on a weighted g by running an
// ApproxKSourceKernel on a single-use clique session; dist[j][v] is
// the approximate distance from sources[j] to v.
func ApproxKSourceDistances(g *graph.CSR, sources []core.NodeID, p hopset.Params, opts engine.Options) ([][]int64, *engine.Stats, error) {
	if err := checkDistanceInput(g); err != nil {
		return nil, nil, err
	}
	k := NewApproxKSourceKernel(sources, p)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// init registers the approximate kernels with demonstration parameters
// (default hopset Params) so ccbench -kernel and the registry sweeps
// can run them on any input.
func init() {
	registerApprox()
}

// registerApprox wires the approximate kernels into the clique
// registry, mirroring the exact kernels' demo parameter choices.
func registerApprox() {
	clique.Register("approx-sssp", func(*graph.CSR) (clique.Kernel, error) {
		return NewApproxSSSPKernel(0, hopset.Params{}), nil
	})
	clique.Register("approx-ksource", func(g *graph.CSR) (clique.Kernel, error) {
		sources := []core.NodeID{}
		if g.N > 0 {
			sources = append(sources, 0)
		}
		if g.N > 2 {
			sources = append(sources, core.NodeID(g.N/2))
		}
		return NewApproxKSourceKernel(sources, hopset.Params{}), nil
	})
}
