package algo

import (
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// runKernel runs k to completion on a fresh single-use session over g.
func runKernel(t *testing.T, g *graph.CSR, k clique.Kernel) {
	t.Helper()
	if _, err := runGraphKernel(g, k, engine.Options{}); err != nil {
		t.Fatalf("running %s: %v", k.Name(), err)
	}
}

// widestTestGraphs is the seeded instance sweep the widest-path and
// closure property tests share: connected and disconnected, dense and
// sparse, plus path/degenerate shapes.
func widestTestGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"gnp_sparse":  graph.RandomGNPWeighted(17, 0.15, 9, 7),
		"gnp_dense":   graph.RandomGNPWeighted(13, 0.5, 25, 11),
		"gnp_uniform": graph.RandomGNP(15, 0.3, 3).WithUniformRandomWeights(5, 16),
		"path":        graph.Path(9).WithUniformRandomWeights(2, 7),
		"single":      graph.Path(1),
		"edgeless":    graph.RandomGNP(6, 0, 1),
	}
}

// TestWidestPathMatchesRef checks the all-pairs (max,min) squaring
// kernel bit for bit against the sequential bottleneck Dijkstra, per
// source row.
func TestWidestPathMatchesRef(t *testing.T) {
	for name, g := range widestTestGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			k := NewWidestPathKernel()
			runKernel(t, g, k)
			width := k.Width()
			if width == nil {
				t.Fatal("no result after completion")
			}
			for src := 0; src < g.N; src++ {
				want := WidestRef(g, core.NodeID(src))
				if !reflect.DeepEqual(width[src], want) {
					t.Fatalf("row %d: kernel %v, oracle %v", src, width[src], want)
				}
			}
		})
	}
}

// TestWidestKSourceMatchesRef checks the two-stage (max,min) pipeline
// bit for bit against the oracle for several hop horizons.
func TestWidestKSourceMatchesRef(t *testing.T) {
	for name, g := range widestTestGraphs() {
		g := g
		t.Run(name, func(t *testing.T) {
			sources := []core.NodeID{0}
			if g.N > 2 {
				sources = append(sources, core.NodeID(g.N/2), core.NodeID(g.N-1))
			}
			for _, h := range []int{1, 3, core.Log2Ceil(g.N) + 1} {
				k := NewWidestKSourceKernel(sources, h)
				runKernel(t, g, k)
				width := k.Width()
				if width == nil {
					t.Fatalf("h=%d: no result after completion", h)
				}
				for j, src := range sources {
					want := WidestRef(g, src)
					if !reflect.DeepEqual(width[j], want) {
						t.Fatalf("h=%d source %d: kernel %v, oracle %v", h, src, width[j], want)
					}
				}
			}
		})
	}
}

// TestWidestSelfAndUnreachableConventions pins the result conventions:
// InfWidth on the diagonal, 0 for unreachable pairs.
func TestWidestSelfAndUnreachableConventions(t *testing.T) {
	g := graph.RandomGNP(6, 0, 1) // edgeless: nothing reaches anything
	k := NewWidestPathKernel()
	runKernel(t, g, k)
	for u, row := range k.Width() {
		for v, w := range row {
			switch {
			case u == v && w != core.InfWidth:
				t.Fatalf("width[%d][%d] = %d, want InfWidth", u, v, w)
			case u != v && w != 0:
				t.Fatalf("width[%d][%d] = %d, want 0", u, v, w)
			}
		}
	}
}

// TestWidestRejectsNonPositiveWeights checks the (max,min) adjacency
// guard: width 0 would collide with the semiring's absent-entry
// sentinel.
func TestWidestRejectsNonPositiveWeights(t *testing.T) {
	g := graph.Path(3).WithUnitWeights()
	g.Weights[0] = 0
	k := NewWidestPathKernel()
	if _, err := runGraphKernel(g, k, engine.Options{}); err == nil {
		t.Fatal("zero-width edge accepted")
	}
}
