// Package algo implements distributed graph algorithms on top of the
// Congested Clique round engine — the growing Dory-Parter shortest-path
// pipeline. BFS and BellmanFord embed the input graph G into the clique
// (nodes only use clique links that correspond to G-edges) and relax
// distances round by round; APSP and HopLimitedDistances instead
// compose (min,+) matrix products from internal/matmul, the algebraic
// route the paper takes to its exponential speedup. Every algorithm is
// verified against a sequential reference implementation, and the two
// distributed pipelines are cross-checked against each other.
//
// Each algorithm is packaged as a clique.Kernel (kernels.go) and
// registered with the clique session registry, so callers compose them
// on one warm clique.Session — KSourceDistances (ksource.go) is the
// in-repo demonstration, chaining hop-limited matrix powering with
// per-source relaxation, the exact skeleton the hopset construction
// will drop into. The free functions in this package remain as thin
// single-use-session wrappers.
package algo

import (
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// Unreached marks a vertex with no path from the source.
const Unreached = int64(-1)

// bfsNode floods hop distances: when a node first learns (or improves)
// its distance it broadcasts the new value to all G-neighbors in the
// same round, using exactly one word per incident link — within the
// default one-message-per-link budget.
type bfsNode struct {
	g    *graph.CSR
	src  core.NodeID
	dist int64
}

func (nd *bfsNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	improved := false
	if r == 0 && ctx.ID() == nd.src {
		nd.dist = 0
		improved = true
	}
	for _, m := range inbox {
		if d := int64(m.Payload) + 1; nd.dist == Unreached || d < nd.dist {
			nd.dist = d
			improved = true
		}
	}
	if !improved {
		return nil
	}
	for _, v := range nd.g.Neighbors(ctx.ID()) {
		if err := ctx.Send(v, uint64(nd.dist)); err != nil {
			return err
		}
	}
	return nil
}

// BFS computes single-source hop distances on g by running a parallel
// breadth-first flood over the engine. It returns the distance vector
// (Unreached for unreachable vertices) and the run's engine stats. BFS
// is a thin wrapper over running a BFSKernel on a single-use clique
// session; compose with other stages via clique.Session directly.
func BFS(g *graph.CSR, src core.NodeID, opts engine.Options) ([]int64, *engine.Stats, error) {
	k := NewBFSKernel(src)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// BFSRef is the sequential reference: a textbook queue-based BFS.
func BFSRef(g *graph.CSR, src core.NodeID) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = Unreached
	}
	if g.N == 0 {
		return dist
	}
	dist[src] = 0
	queue := []core.NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == Unreached {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
