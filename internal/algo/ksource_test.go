package algo

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestKSourceDistancesPropertyVsRef: on random weighted G(n,p)
// instances across densities, hop horizons, and source-set sizes, the
// two-stage pipeline must agree with the sequential Bellman-Ford
// reference from every source.
func TestKSourceDistancesPropertyVsRef(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(20)
		p := []float64{0.1, 0.25, 0.5, 0.9}[trial%4]
		seed := rng.Int63()
		g := graph.RandomGNP(n, p, seed).WithUniformRandomWeights(seed+1, 1+int64(rng.Intn(16)))
		k := 1 + rng.Intn(4)
		sources := make([]core.NodeID, k)
		for j := range sources {
			sources[j] = core.NodeID(rng.Intn(n))
		}
		h := 1 + rng.Intn(n+2) // deliberately spans 1 .. beyond n-1
		dist, stats, err := KSourceDistances(g, sources, h, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d p=%.2f h=%d seed=%d): %v", trial, n, p, h, seed, err)
		}
		if g.NumEdges() > 0 && stats.TotalMsgs == 0 && n > 1 {
			t.Fatalf("trial %d: pipeline routed no messages on a non-empty graph", trial)
		}
		for j, src := range sources {
			want := BellmanFordRef(g, src)
			if !reflect.DeepEqual(dist[j], want) {
				t.Fatalf("trial %d (n=%d p=%.2f h=%d seed=%d): source %d\n got %v\nwant %v",
					trial, n, p, h, seed, src, dist[j], want)
			}
		}
	}
}

// TestKSourcePipelineRunsTwoStagesOnOneWarmSession is the acceptance
// check for kernel composition: the pipeline's sparse powering products
// and dense relaxation products all execute as passes of a single
// session, the cumulative Stats bill every stage, and the session stays
// usable for further kernels afterwards.
func TestKSourcePipelineRunsTwoStagesOnOneWarmSession(t *testing.T) {
	g := graph.RandomGNP(24, 0.2, 7).WithUniformRandomWeights(8, 9)
	sources := []core.NodeID{2, 17}
	const h = 4
	s, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := NewKSourceKernel(sources, h)
	if err := s.Run(context.Background(), k); err != nil {
		t.Fatalf("pipeline run: %v", err)
	}
	st := s.Stats()
	if st.Kernels != 1 {
		t.Errorf("Kernels = %d, want 1", st.Kernels)
	}
	// Stage 1 needs at least one squaring for h=4 and stage 2 at least
	// ceil(23/4) = 6 dense products; all on the same engine.
	if st.Runs < 3 {
		t.Errorf("Runs = %d, want >= 3 (multi-pass pipeline on one session)", st.Runs)
	}
	if st.Engine.Rounds == 0 || st.Engine.TotalMsgs == 0 {
		t.Errorf("cumulative stats empty: %+v", st.Engine)
	}
	for j, src := range sources {
		want := BellmanFordRef(g, src)
		if !reflect.DeepEqual(k.Dist()[j], want) {
			t.Fatalf("source %d distances wrong", src)
		}
	}
	// The same warm session runs the next kernel: cross-kernel reuse.
	bfs := NewBFSKernel(0)
	if err := s.Run(context.Background(), bfs); err != nil {
		t.Fatalf("bfs on warm session: %v", err)
	}
	if want := BFSRef(g, 0); !reflect.DeepEqual(bfs.Dist(), want) {
		t.Error("bfs on warm session disagrees with reference")
	}
	if got := s.Stats(); got.Kernels != 2 || got.Runs <= st.Runs {
		t.Errorf("warm session stats did not accumulate: %+v after %+v", got, st)
	}
	// Typed access through the generic bridge works for both kernels.
	if _, err := clique.ResultAs[[][]int64](k); err != nil {
		t.Errorf("ResultAs on ksource: %v", err)
	}
	if _, err := clique.ResultAs[[]int64](bfs); err != nil {
		t.Errorf("ResultAs on bfs: %v", err)
	}
	if _, err := clique.ResultAs[string](bfs); err == nil {
		t.Error("ResultAs with the wrong type did not error")
	}
}

// TestKSourceValidation: bad hop horizons, out-of-range sources, and
// unweighted graphs (for the strict free function) must be rejected.
func TestKSourceValidation(t *testing.T) {
	g := graph.Path(6).WithUniformRandomWeights(3, 5)
	if _, _, err := KSourceDistances(g, []core.NodeID{0}, 0, engine.Options{}); err == nil {
		t.Error("h=0 accepted")
	}
	if _, _, err := KSourceDistances(g, []core.NodeID{9}, 2, engine.Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, _, err := KSourceDistances(graph.Path(6), []core.NodeID{0}, 2, engine.Options{}); err == nil {
		t.Error("unweighted graph accepted by the strict free function")
	}
}

// TestKSourceDegenerate: the pipeline on n=1 and on edgeless graphs.
func TestKSourceDegenerate(t *testing.T) {
	one := graph.Path(1).WithUniformRandomWeights(1, 1)
	dist, _, err := KSourceDistances(one, []core.NodeID{0}, 3, engine.Options{})
	if err != nil {
		t.Fatalf("n=1: %v", err)
	}
	if !reflect.DeepEqual(dist, [][]int64{{0}}) {
		t.Fatalf("n=1 dist = %v, want [[0]]", dist)
	}
	empty := graph.RandomGNP(5, 0, 1).WithUnitWeights()
	dist, _, err = KSourceDistances(empty, []core.NodeID{2}, 2, engine.Options{})
	if err != nil {
		t.Fatalf("edgeless: %v", err)
	}
	want := []int64{Unreached, Unreached, 0, Unreached, Unreached}
	if !reflect.DeepEqual(dist[0], want) {
		t.Fatalf("edgeless dist = %v, want %v", dist[0], want)
	}
}
