package algo

import (
	"context"
	"math/rand"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// checkApproxVector asserts the (1+eps) sandwich d* <= d <= (1+eps)·d*
// against a reference distance vector, including agreement on
// reachability.
func checkApproxVector(t *testing.T, tag string, got, want []int64, eps float64) {
	t.Helper()
	for v := range want {
		switch {
		case want[v] == Unreached:
			if got[v] != Unreached {
				t.Fatalf("%s: v=%d reachable (%d) but reference says Unreached", tag, v, got[v])
			}
		case got[v] == Unreached:
			t.Fatalf("%s: v=%d Unreached but reference says %d", tag, v, want[v])
		case got[v] < want[v]:
			t.Fatalf("%s: v=%d distance %d undershoots true %d", tag, v, got[v], want[v])
		case float64(got[v]) > (1+eps)*float64(want[v]):
			t.Fatalf("%s: v=%d distance %d exceeds (1+%v)·%d", tag, v, got[v], eps, want[v])
		}
	}
}

// TestApproxSSSPWithinEpsProperty is the approximation-ratio property
// test: on random weighted graphs, for eps in {0.5, 0.1}, every
// ApproxSSSPKernel distance d must satisfy d* <= d <= (1+eps)·d*
// against the sequential BellmanFordRef oracle. The hub rate is pinned
// to 1 (every vertex a hub) because a hard assertion deserves the
// deterministic window-compression guarantee, not a sampling gamble —
// the auto rate dips just below 1 at several of these sizes. The
// sampled-hub path is covered by TestApproxSSSPSampledHubs; CI runs
// this under -race.
func TestApproxSSSPWithinEpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1202))
	for _, eps := range []float64{0.5, 0.1} {
		for trial := 0; trial < 6; trial++ {
			n := 5 + rng.Intn(30)
			p := []float64{0.1, 0.25, 0.6}[trial%3]
			maxW := int64(1 + rng.Intn(60))
			seed := rng.Int63()
			g := graph.RandomGNPWeighted(n, p, maxW, seed)
			src := core.NodeID(rng.Intn(n))
			dist, stats, err := ApproxSSSP(g, src, hopset.Params{Eps: eps, HubRate: 1, Seed: seed + 1}, engine.Options{})
			if err != nil {
				t.Fatalf("eps=%v trial %d (n=%d p=%.2f seed=%d): %v", eps, trial, n, p, seed, err)
			}
			if g.NumEdges() > 0 && stats.TotalMsgs == 0 {
				t.Fatalf("eps=%v trial %d: approx SSSP routed no messages", eps, trial)
			}
			want := BellmanFordRef(g, src)
			checkApproxVector(t, "approx-sssp", dist, want, eps)
		}
	}
}

// TestApproxExactModeMatchesBellmanFord: with eps = 0 no rounding
// happens, and at the all-hubs rate the pipeline must be exactly
// Bellman-Ford.
func TestApproxExactModeMatchesBellmanFord(t *testing.T) {
	g := graph.RandomGNPWeighted(18, 0.25, 40, 99)
	dist, _, err := ApproxSSSP(g, 3, hopset.Params{HubRate: 1}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := BellmanFordRef(g, 3)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("eps=0 dist[%d] = %d, want exact %d", v, dist[v], want[v])
		}
	}
}

// TestApproxKSourceWithinEps: the multi-source kernel must satisfy the
// same sandwich per source row, on one warm session shared with the
// construction stage.
func TestApproxKSourceWithinEps(t *testing.T) {
	const eps = 0.1
	g := graph.RandomGNPWeighted(24, 0.2, 25, 7)
	sources := []core.NodeID{0, 5, 23}
	dist, _, err := ApproxKSourceDistances(g, sources, hopset.Params{Eps: eps, HubRate: 1, Seed: 2}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, src := range sources {
		checkApproxVector(t, "approx-ksource", dist[j], BellmanFordRef(g, src), eps)
	}
}

// TestApproxSSSPSampledHubs exercises the sampled-hub (rate < 1) path
// at a size where the property-test default would be all-hubs: the
// lower bound d >= d* is structural (shortcuts carry genuine path
// weights) and must hold for any sample; the (1+eps) upper bound is a
// with-high-probability guarantee, pinned here for a fixed seed.
func TestApproxSSSPSampledHubs(t *testing.T) {
	const eps = 0.5
	g := graph.RandomGNPWeighted(96, 0.08, 30, 4242)
	params := hopset.Params{Eps: eps, HubRate: 0.35, Seed: 17}
	k := NewApproxSSSPKernel(0, params)
	s, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background(), k); err != nil {
		t.Fatal(err)
	}
	if hs := k.Hopset(); hs == nil || len(hs.Hubs) == 0 || len(hs.Hubs) == g.N {
		t.Fatalf("expected a proper hub subsample, got %v", k.Hopset())
	}
	checkApproxVector(t, "sampled", k.Dist(), BellmanFordRef(g, 0), eps)
}

// TestApproxSSSPUsesFewerProductsThanExactKSource: the hopset swap is
// a round-count optimization; on a long weighted path (worst case for
// relaxation) the approximate pipeline must finish in fewer engine
// rounds than exact APSP on the same graph.
func TestApproxSSSPUsesFewerRoundsThanAPSP(t *testing.T) {
	g := graph.RandomGNPWeighted(96, 0.06, 20, 11)
	_, exact, err := APSP(g, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, approx, err := ApproxSSSP(g, 0, hopset.Params{Eps: 0.5, HubRate: 0.25, Seed: 3}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Rounds >= exact.Rounds {
		t.Fatalf("approx SSSP took %d rounds, exact APSP %d — hopset bought nothing",
			approx.Rounds, exact.Rounds)
	}
}

// TestApproxRejectsBadInput mirrors the other free functions'
// validation: unweighted graphs, out-of-range sources, and invalid
// hopset parameters must fail fast.
func TestApproxRejectsBadInput(t *testing.T) {
	if _, _, err := ApproxSSSP(graph.Path(4), 0, hopset.Params{}, engine.Options{}); err == nil {
		t.Error("unweighted graph accepted")
	}
	wg := graph.Path(4).WithUniformRandomWeights(1, 5)
	if _, _, err := ApproxSSSP(wg, 9, hopset.Params{}, engine.Options{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, _, err := ApproxSSSP(wg, 0, hopset.Params{Eps: -1}, engine.Options{}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, _, err := ApproxKSourceDistances(wg, []core.NodeID{0, -1}, hopset.Params{}, engine.Options{}); err == nil {
		t.Error("negative source accepted")
	}
}
