package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// KSourceKernel computes exact shortest-path distances from k source
// vertices as a two-stage pipeline on one warm clique session — the
// composition skeleton the Dory-Parter hopset construction drops into:
//
//	stage 1 (hop-limited matrix powering): compute S = A^h, the h-hop
//	  distance matrix, by square-and-multiply — one sparse engine
//	  product per step. With a hopset, S would instead be the
//	  hopset-augmented adjacency matrix with a small h.
//	stage 2 (per-source relaxation): starting from the k source
//	  indicator columns B_0 (0 at the source, Inf elsewhere), iterate
//	  the dense product B_{t+1} = S ⊗ B_t — each product advances the
//	  hop horizon by h at once, so ceil((n-1)/h) products reach
//	  exactness.
//
// Both stages bill their engine passes to the same session Stats, which
// is exactly the cross-stage round accounting the paper's pipeline
// analysis performs. Unweighted session graphs are treated as
// unit-weighted.
type KSourceKernel struct {
	sources []core.NodeID
	h       int

	stage     int // 0: unstarted, 1: powering, 2: relaxing, 3: done
	ps        *powerState
	rx        *relaxState
	remaining int
	n         int
	dist      [][]int64
	gather    engine.Gatherer
}

// SetGatherer injects the session transport's all-gather into both
// pipeline stages so every harvest assembles the full product on every
// rank (clique TransportAware hook).
func (k *KSourceKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.ps != nil {
		k.ps.gather = g
	}
	if k.rx != nil {
		k.rx.gather = g
	}
}

// NewKSourceKernel returns a k-source distance kernel for the given
// source vertices and per-product hop horizon h >= 1. Larger h shifts
// work from stage 2 (fewer dense products) to stage 1 (a denser power
// matrix) — with h = 1 stage 1 is free and stage 2 degenerates to n-1
// Bellman-Ford-style relaxation products.
func NewKSourceKernel(sources []core.NodeID, h int) *KSourceKernel {
	return &KSourceKernel{sources: sources, h: h}
}

// Name identifies the kernel.
func (k *KSourceKernel) Name() string { return "ksource" }

// Nodes advances the pipeline: it harvests the pass that just ran,
// moves between stages as they complete, and returns the next engine
// pass until the distances are exact.
func (k *KSourceKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.stage == 0 {
		if err := k.start(g); err != nil {
			return nil, err
		}
	}
	if k.stage == 1 {
		pass, err := k.ps.next()
		if err != nil {
			return nil, err
		}
		if pass != nil {
			return pass.Nodes(), nil
		}
		// Powering finished: S = A^h. Hand off to the shared relaxation
		// stage and fall through.
		k.rx = newRelaxState(k.ps.matrix(), k.sources, k.remaining)
		k.rx.gather = k.gather
		k.ps = nil
		k.stage = 2
	}
	if k.stage == 2 {
		pass, err := k.rx.next()
		if err != nil {
			return nil, err
		}
		if pass != nil {
			return pass.Nodes(), nil
		}
		k.dist = k.rx.distRows()
		k.stage = 3
	}
	return nil, nil
}

// start validates the inputs and prepares stage 1.
func (k *KSourceKernel) start(g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
	}
	if k.h < 1 {
		return fmt.Errorf("algo: %s hop horizon %d must be >= 1", k.Name(), k.h)
	}
	for _, src := range k.sources {
		if err := checkSource(k.Name(), src, g); err != nil {
			return err
		}
	}
	k.n = g.N
	// The power clamps to n-1 (newPowerState); size the relaxation
	// count from the same effective horizon so t*h >= n-1 exactly.
	effH := k.h
	if limit := k.n - 1; effH > limit {
		effH = limit
	}
	if effH < 1 {
		// n <= 1: no relaxation needed, S is irrelevant.
		k.remaining = 0
	} else {
		k.remaining = (k.n - 1 + effH - 1) / effH
	}
	// newPowerState also validates weight non-negativity via
	// minplusAdjacency — no separate scan needed.
	ps, err := newPowerState(g.WithUnitWeights(), k.h)
	if err != nil {
		return err
	}
	ps.gather = k.gather
	k.ps = ps
	k.stage = 1
	return nil
}

// MaxRoundsHint forwards the in-flight product's round-bound hint.
func (k *KSourceKernel) MaxRoundsHint() int {
	if k.ps != nil {
		return k.ps.hint()
	}
	if k.rx != nil {
		return k.rx.hint()
	}
	return 0
}

// Result returns the distance rows ([][]int64, dist[j][v] = distance
// from sources[j] to v, Unreached when disconnected), nil before
// completion.
func (k *KSourceKernel) Result() any {
	if k.stage != 3 {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance rows, nil before completion.
func (k *KSourceKernel) Dist() [][]int64 { return k.dist }

// KSourceDistances computes exact shortest-path distances from each of
// the given source vertices on a weighted g (non-negative integer
// weights): dist[j][v] is the distance from sources[j] to v, Unreached
// when disconnected. It runs the two-stage KSourceKernel pipeline
// (hop-limited matrix powering, then per-source relaxation) on a
// single-use clique session; callers composing further stages should
// run the kernel on their own session instead.
func KSourceDistances(g *graph.CSR, sources []core.NodeID, h int, opts engine.Options) ([][]int64, *engine.Stats, error) {
	if err := checkDistanceInput(g); err != nil {
		return nil, nil, err
	}
	k := NewKSourceKernel(sources, h)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}
