package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// This file instantiates the package's two distance-product pipelines —
// repeated squaring and the two-stage k-source relaxation — over the
// (max,min) bottleneck semiring: widest paths. The width of a path is
// the minimum edge weight along it, and the widest-path value between
// u and v is the maximum width over all u-v paths. Matrix powers over
// core.MaxMin compute exactly the hop-limited version of that value, so
// the existing powerState/relaxState machinery carries over unchanged;
// only the adjacency constructor and the result conventions differ.
//
// Width conventions (shared by the kernels and WidestRef, so oracle
// comparisons are bit-identity): width[u][u] = core.InfWidth (the empty
// path has unbounded width), width[u][v] = 0 when v is unreachable from
// u (the semiring Zero), and the true bottleneck width otherwise.

// maxminAdjacency validates g and builds its reflexive (max,min)
// adjacency matrix. Edge widths must be in [1, InfWidth): zero is the
// semiring's absent-entry sentinel and InfWidth is reserved for the
// empty path.
func maxminAdjacency(g *graph.CSR) (*matmul.Matrix, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("algo: widest paths require a weighted graph")
	}
	for _, w := range g.Weights {
		if w < 1 || w >= core.InfWidth {
			return nil, fmt.Errorf("algo: widest paths require weights in [1, %d), got %d", core.InfWidth, w)
		}
	}
	return matmul.FromGraph(g, core.MaxMin(), true)
}

// widthMatrix converts a (max,min) matrix into dense rows of raw width
// values: absent entries become 0 (the semiring Zero, "no path").
func widthMatrix(m *matmul.Matrix) [][]int64 {
	out := make([][]int64, m.N)
	for v := 0; v < m.N; v++ {
		row := make([]int64, m.N)
		cols, vals := m.Row(core.NodeID(v))
		for i, j := range cols {
			row[j] = vals[i]
		}
		out[v] = row
	}
	return out
}

// WidestPathKernel computes all-pairs widest-path (maximum-bottleneck)
// values by (max,min) repeated squaring: W_1 = A (the reflexive
// bottleneck adjacency matrix), W_2h = W_h ⊗ W_h, one engine pass per
// squaring, stopping once the hop horizon reaches n-1 — the same
// square-until-stable skeleton as APSPKernel, instantiated over
// core.MaxMin. Unweighted session graphs are treated as unit-weighted
// (every width 1).
type WidestPathKernel struct {
	n       int
	span    int
	d       *matmul.Matrix
	pass    *matmul.Pass
	width   [][]int64
	started bool
	done    bool
	gather  engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so every
// squaring's harvest assembles the full product on every rank (clique
// TransportAware hook).
func (k *WidestPathKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewWidestPathKernel returns an all-pairs widest-path kernel.
func NewWidestPathKernel() *WidestPathKernel { return &WidestPathKernel{} }

// Name identifies the kernel.
func (k *WidestPathKernel) Name() string { return "widest" }

// Nodes returns one squaring pass per call until the hop horizon covers
// n-1, then harvests the width matrix.
func (k *WidestPathKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if !k.started {
		if g == nil {
			return nil, fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
		}
		a, err := maxminAdjacency(g.WithUnitWeights())
		if err != nil {
			return nil, err
		}
		k.d, k.n, k.span, k.started = a, g.N, 1, true
	}
	if err := k.harvest(); err != nil {
		return nil, err
	}
	if k.span >= k.n-1 {
		k.width = widthMatrix(k.d)
		k.done = true
		return nil, nil
	}
	pass, err := matmul.NewPass(k.d, k.d, false)
	if err != nil {
		return nil, err
	}
	pass.SetGatherer(k.gather)
	k.pass = pass
	return pass.Nodes(), nil
}

// harvest folds the completed squaring pass (if any) into the width
// matrix and doubles the covered hop horizon. Idempotent, so
// checkpointing can force it at a pass boundary.
func (k *WidestPathKernel) harvest() error {
	if k.pass == nil {
		return nil
	}
	if err := k.pass.Gather(); err != nil {
		return err
	}
	k.d = k.pass.Sparse()
	k.pass = nil
	k.span *= 2
	return nil
}

// MaxRoundsHint forwards the in-flight squaring's round-bound hint.
func (k *WidestPathKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the width matrix ([][]int64; see the file header for
// the value conventions), nil before completion.
func (k *WidestPathKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.width
}

// Width returns the typed width matrix, nil before completion.
func (k *WidestPathKernel) Width() [][]int64 { return k.width }

// WidestKSourceKernel computes widest-path values from k source
// vertices as the (max,min) instantiation of the two-stage k-source
// pipeline: stage 1 powers the bottleneck adjacency to S = A^h by
// square-and-multiply, stage 2 iterates ceil((n-1)/h) dense products
// B_{t+1} = S ⊗ B_t from the source indicator columns (InfWidth at the
// source, 0 elsewhere). Unweighted session graphs are treated as
// unit-weighted.
type WidestKSourceKernel struct {
	sources []core.NodeID
	h       int

	stage     int // 0: unstarted, 1: powering, 2: relaxing, 3: done
	ps        *powerState
	rx        *relaxState
	remaining int
	n         int
	width     [][]int64
	gather    engine.Gatherer
}

// SetGatherer injects the session transport's all-gather into both
// pipeline stages (clique TransportAware hook).
func (k *WidestKSourceKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.ps != nil {
		k.ps.gather = g
	}
	if k.rx != nil {
		k.rx.gather = g
	}
}

// NewWidestKSourceKernel returns a k-source widest-path kernel for the
// given source vertices and per-product hop horizon h >= 1.
func NewWidestKSourceKernel(sources []core.NodeID, h int) *WidestKSourceKernel {
	return &WidestKSourceKernel{sources: sources, h: h}
}

// Name identifies the kernel.
func (k *WidestKSourceKernel) Name() string { return "widest-ksource" }

// Nodes advances the pipeline exactly as KSourceKernel does, over the
// (max,min) semiring.
func (k *WidestKSourceKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.stage == 0 {
		if err := k.start(g); err != nil {
			return nil, err
		}
	}
	if k.stage == 1 {
		pass, err := k.ps.next()
		if err != nil {
			return nil, err
		}
		if pass != nil {
			return pass.Nodes(), nil
		}
		k.rx = newRelaxState(k.ps.matrix(), k.sources, k.remaining)
		k.rx.gather = k.gather
		k.ps = nil
		k.stage = 2
	}
	if k.stage == 2 {
		pass, err := k.rx.next()
		if err != nil {
			return nil, err
		}
		if pass != nil {
			return pass.Nodes(), nil
		}
		k.width = k.rx.valueRows()
		k.stage = 3
	}
	return nil, nil
}

// start validates the inputs and prepares stage 1.
func (k *WidestKSourceKernel) start(g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
	}
	if k.h < 1 {
		return fmt.Errorf("algo: %s hop horizon %d must be >= 1", k.Name(), k.h)
	}
	for _, src := range k.sources {
		if err := checkSource(k.Name(), src, g); err != nil {
			return err
		}
	}
	k.n = g.N
	effH := k.h
	if limit := k.n - 1; effH > limit {
		effH = limit
	}
	if effH < 1 {
		k.remaining = 0
	} else {
		k.remaining = (k.n - 1 + effH - 1) / effH
	}
	a, err := maxminAdjacency(g.WithUnitWeights())
	if err != nil {
		return err
	}
	ps := newPowerStateOf(a, k.h)
	ps.gather = k.gather
	k.ps = ps
	k.stage = 1
	return nil
}

// MaxRoundsHint forwards the in-flight product's round-bound hint.
func (k *WidestKSourceKernel) MaxRoundsHint() int {
	if k.ps != nil {
		return k.ps.hint()
	}
	if k.rx != nil {
		return k.rx.hint()
	}
	return 0
}

// Result returns the width rows ([][]int64, width[j][v] = the widest-
// path value from sources[j] to v; see the file header for the value
// conventions), nil before completion.
func (k *WidestKSourceKernel) Result() any {
	if k.stage != 3 {
		return nil
	}
	return k.width
}

// Width returns the typed width rows, nil before completion.
func (k *WidestKSourceKernel) Width() [][]int64 { return k.width }

// WidestRef is the sequential widest-path reference: a maximum-
// bottleneck Dijkstra from src over g's weights (unit widths when g is
// unweighted). The widest-path value of each vertex is unique, so any
// correct algorithm — including the semiring pipelines above — must
// match it bit for bit.
func WidestRef(g *graph.CSR, src core.NodeID) []int64 {
	gw := g.WithUnitWeights()
	width := make([]int64, gw.N)
	if gw.N == 0 {
		return width
	}
	width[src] = core.InfWidth
	visited := make([]bool, gw.N)
	for {
		best := core.NodeID(-1)
		var bw int64
		for v := 0; v < gw.N; v++ {
			if !visited[v] && width[v] > bw {
				best, bw = core.NodeID(v), width[v]
			}
		}
		if best < 0 {
			return width
		}
		visited[best] = true
		nbrs := gw.Neighbors(best)
		ws := gw.NeighborWeights(best)
		for i, u := range nbrs {
			w := bw
			if ws[i] < w {
				w = ws[i]
			}
			if w > width[u] {
				width[u] = w
			}
		}
	}
}

// init registers the widest-path kernels with demonstration parameters
// mirroring the (min,+) pipelines' choices.
func init() {
	clique.Register("widest", func(*graph.CSR) (clique.Kernel, error) {
		return NewWidestPathKernel(), nil
	})
	clique.Register("widest-ksource", func(g *graph.CSR) (clique.Kernel, error) {
		sources := []core.NodeID{}
		if g.N > 0 {
			sources = append(sources, 0)
		}
		if g.N > 2 {
			sources = append(sources, core.NodeID(g.N/2))
		}
		return NewWidestKSourceKernel(sources, core.Log2Ceil(g.N)+1), nil
	})
}
