package algo

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// MSTKernel computes a minimum spanning forest by Borůvka phases over
// the router, one engine pass per phase:
//
//	round 0: every vertex sends its component label to its G-neighbors
//	  (one word per incident link).
//	round 1: knowing its neighbors' components, every vertex picks its
//	  minimum outgoing edge — the (w, lo, hi)-least incident edge that
//	  crosses to another component — and submits the packed candidate
//	  to its component leader. A vertex that is its own leader holds
//	  the candidate locally and emits a keepalive word instead (the
//	  engine treats a silent round as termination, and self-sends are
//	  illegal).
//	round 2: leaders fold the minimum over submitted candidates; the
//	  round is silent, ending the pass.
//
// The harvest all-gathers the per-leader choices, then merges
// components by pointer jumping over the leader-choice digraph: each
// choosing leader points at the other endpoint's leader, the 2-cycles
// that mutual choices form are broken toward the smaller ID (the strict
// (w, lo, hi) edge order admits no longer cycles), and ptr = ptr[ptr]
// iterates to the fixpoint. Chosen edges — deduplicated, since both
// sides of a mutual choice submit the same canonical (w, lo, hi) word —
// join the forest. A phase that chooses nothing is the terminating
// pass, so a graph with any edge always runs at least two passes.
//
// The (w, lo, hi) total order makes the minimum spanning forest unique,
// so the result is bit-identical to MSTRef's Kruskal. Unweighted
// session graphs are treated as unit-weighted.
type MSTKernel struct {
	n      int
	g      *graph.CSR
	comp   []core.NodeID
	weight int64
	edges  []MSTEdge
	state  []mstNode

	idBits, wBits uint

	started bool
	done    bool
	gather  engine.Gatherer
}

// MSTEdge is one forest edge with canonical endpoint order U < V.
type MSTEdge struct {
	// U and V are the edge endpoints, U < V.
	U, V core.NodeID
	// W is the edge weight (1 for unweighted session graphs).
	W int64
}

// MSTResult is the minimum-spanning-forest result: the total weight
// and the forest edges sorted by (U, V). Edges is non-nil even for an
// empty forest.
type MSTResult struct {
	// Weight is the sum of the forest's edge weights.
	Weight int64
	// Edges lists the forest edges in canonical order.
	Edges []MSTEdge
}

// SetGatherer injects the session transport's all-gather so every
// phase's harvest assembles the leader choices on every rank (clique
// TransportAware hook).
func (k *MSTKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewMSTKernel returns a minimum-spanning-forest kernel.
func NewMSTKernel() *MSTKernel { return &MSTKernel{} }

// Name identifies the kernel.
func (k *MSTKernel) Name() string { return "mst" }

// mstKeepalive is the round-1 control word self-leaders emit so a
// round with pending candidates is never silent; it carries no payload
// (candidate words always have the top tag bit set).
const mstKeepalive uint64 = 0

// packEdge encodes a candidate edge as [tag=1][w][lo][hi]; comparing
// packed words compares (w, lo, hi) lexicographically.
func (k *MSTKernel) packEdge(w int64, lo, hi core.NodeID) uint64 {
	return 1<<63 | uint64(w)<<(2*k.idBits) | uint64(lo)<<k.idBits | uint64(hi)
}

// unpackEdge inverts packEdge.
func (k *MSTKernel) unpackEdge(word uint64) (w int64, lo, hi core.NodeID) {
	mask := uint64(1)<<k.idBits - 1
	hi = core.NodeID(word & mask)
	lo = core.NodeID(word >> k.idBits & mask)
	w = int64(word >> (2 * k.idBits) & (uint64(1)<<k.wBits - 1))
	return w, lo, hi
}

// Nodes harvests the phase that just ran (merging components and
// collecting chosen edges), then dispatches the next Borůvka phase, or
// completes once a phase chooses nothing.
func (k *MSTKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if !k.started {
		if err := k.start(g); err != nil {
			return nil, err
		}
	} else if k.g == nil {
		// Restored from a checkpoint: the blob carries components and
		// forest, the graph-derived fields rebind to the session graph.
		if err := k.bind(g); err != nil {
			return nil, err
		}
	}
	if k.state != nil {
		if err := k.harvest(); err != nil {
			return nil, err
		}
		if k.done {
			return nil, nil
		}
	}
	nodes := make([]engine.Node, k.n)
	k.state = make([]mstNode, k.n)
	for i := range k.state {
		k.state[i] = mstNode{k: k}
		nodes[i] = &k.state[i]
	}
	return nodes, nil
}

// start validates the input and initializes the singleton components.
func (k *MSTKernel) start(g *graph.CSR) error {
	if err := k.bind(g); err != nil {
		return err
	}
	k.comp = make([]core.NodeID, k.n)
	for v := range k.comp {
		k.comp[v] = core.NodeID(v)
	}
	k.edges = []MSTEdge{}
	k.started = true
	return nil
}

// bind validates the session graph and derives the graph-bound fields
// (unit-weight view, candidate packing widths) without touching the
// component or forest state — shared by start and the post-restore
// rebind.
func (k *MSTKernel) bind(g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
	}
	if k.started && g.N != k.n {
		return fmt.Errorf("algo: %s state is for n = %d, session graph has n = %d", k.Name(), k.n, g.N)
	}
	gw := g.WithUnitWeights()
	if err := checkNonNegative(k.Name(), gw); err != nil {
		return err
	}
	idBits := uint(core.Log2Ceil(gw.N))
	if idBits == 0 {
		idBits = 1
	}
	if 2*idBits+1 >= 64 {
		return fmt.Errorf("algo: %s cannot pack candidates for n = %d", k.Name(), gw.N)
	}
	wBits := 63 - 2*idBits
	for _, w := range gw.Weights {
		if w >= int64(1)<<wBits {
			return fmt.Errorf("algo: %s weight %d does not fit in the %d-bit candidate field for n = %d", k.Name(), w, wBits, gw.N)
		}
	}
	k.g, k.n, k.idBits, k.wBits = gw, gw.N, idBits, wBits
	return nil
}

// harvest all-gathers the leaders' chosen edges, merges components by
// pointer jumping, and accumulates the forest; a choice-free phase
// completes the kernel. Idempotent once the pass state is consumed, so
// checkpointing can force it at a pass boundary.
func (k *MSTKernel) harvest() error {
	if k.state == nil {
		return nil
	}
	slab := make([]int64, k.n)
	for v := range k.state {
		slab[v] = int64(k.state[v].chosen)
	}
	k.state = nil
	if k.gather != nil && k.n > 0 {
		if err := k.gather.AllGatherRows(slab, 1); err != nil {
			return err
		}
	}

	// ptr is the leader-choice digraph: each choosing leader points at
	// the leader on the other side of its chosen edge.
	ptr := make([]core.NodeID, k.n)
	for v := range ptr {
		ptr[v] = core.NodeID(v)
	}
	chosen := false
	seen := make(map[uint64]bool)
	for v, word := range slab {
		if word == 0 {
			continue
		}
		chosen = true
		w, lo, hi := k.unpackEdge(uint64(word))
		other := k.comp[lo]
		if other == core.NodeID(v) {
			other = k.comp[hi]
		}
		ptr[v] = other
		if !seen[uint64(word)] {
			seen[uint64(word)] = true
			k.edges = append(k.edges, MSTEdge{U: lo, V: hi, W: w})
			k.weight += w
		}
	}
	if !chosen {
		sort.Slice(k.edges, func(i, j int) bool {
			if k.edges[i].U != k.edges[j].U {
				return k.edges[i].U < k.edges[j].U
			}
			return k.edges[i].V < k.edges[j].V
		})
		k.done = true
		return nil
	}
	// Break the mutual-choice 2-cycles toward the smaller ID, then
	// pointer-jump to the roots.
	for v := range ptr {
		u := ptr[v]
		if core.NodeID(v) < u && ptr[u] == core.NodeID(v) {
			ptr[v] = core.NodeID(v)
		}
	}
	for {
		stable := true
		for v := range ptr {
			if t := ptr[ptr[v]]; t != ptr[v] {
				ptr[v] = t
				stable = false
			}
		}
		if stable {
			break
		}
	}
	for v := range k.comp {
		k.comp[v] = ptr[k.comp[v]]
	}
	return nil
}

// Result returns the MSTResult (forest weight plus canonical edge
// list), nil before completion.
func (k *MSTKernel) Result() any {
	if !k.done {
		return nil
	}
	return MSTResult{Weight: k.weight, Edges: k.edges}
}

// Forest returns the typed result; the zero MSTResult before
// completion.
func (k *MSTKernel) Forest() MSTResult {
	if !k.done {
		return MSTResult{}
	}
	return MSTResult{Weight: k.weight, Edges: k.edges}
}

// mstNode is one vertex's per-phase state: it learns its neighbors'
// component labels in round 1, submits its minimum outgoing edge, and —
// if it is a component leader — folds the component's choice in round
// 2.
type mstNode struct {
	k *MSTKernel
	// best is the least candidate seen so far: the node's own in round
	// 1, the component fold for leaders in round 2. 0 means none.
	best uint64
	// chosen is the folded component choice, set on leaders in round 2
	// and harvested by the kernel.
	chosen uint64
}

// Round implements the three-round phase script documented on
// MSTKernel.
func (nd *mstNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	k := nd.k
	me := ctx.ID()
	switch r {
	case 0:
		for _, v := range k.g.Neighbors(me) {
			if err := ctx.Send(v, uint64(k.comp[me])); err != nil {
				return err
			}
		}
	case 1:
		nbComp := make(map[core.NodeID]core.NodeID, len(inbox))
		for _, m := range inbox {
			nbComp[m.Src] = core.NodeID(m.Payload)
		}
		nbrs := k.g.Neighbors(me)
		ws := k.g.NeighborWeights(me)
		for i, v := range nbrs {
			if nbComp[v] == k.comp[me] {
				continue
			}
			lo, hi := me, v
			if lo > hi {
				lo, hi = hi, lo
			}
			if cand := k.packEdge(ws[i], lo, hi); nd.best == 0 || cand < nd.best {
				nd.best = cand
			}
		}
		if nd.best == 0 {
			return nil
		}
		if leader := k.comp[me]; leader != me {
			return ctx.Send(leader, nd.best)
		}
		// Self-leader: hold the candidate and keep the round alive. A
		// candidate implies an edge, so n >= 2 and the target is not us.
		return ctx.Send(core.NodeID((int(me)+1)%k.n), mstKeepalive)
	case 2:
		if k.comp[me] != me {
			return nil
		}
		for _, m := range inbox {
			if m.Payload&(1<<63) == 0 {
				continue // keepalive
			}
			if nd.best == 0 || m.Payload < nd.best {
				nd.best = m.Payload
			}
		}
		nd.chosen = nd.best
	}
	return nil
}

// MSTRef is the sequential minimum-spanning-forest reference: Kruskal
// with the same strict (w, lo, hi) edge order the kernel uses, so the
// unique minimum forest matches the distributed result bit for bit.
func MSTRef(g *graph.CSR) MSTResult {
	gw := g.WithUnitWeights()
	type edge struct {
		w      int64
		lo, hi core.NodeID
	}
	var edges []edge
	for v := 0; v < gw.N; v++ {
		nbrs := gw.Neighbors(core.NodeID(v))
		ws := gw.NeighborWeights(core.NodeID(v))
		for i, u := range nbrs {
			if core.NodeID(v) < u {
				edges = append(edges, edge{w: ws[i], lo: core.NodeID(v), hi: u})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w < edges[j].w
		}
		if edges[i].lo != edges[j].lo {
			return edges[i].lo < edges[j].lo
		}
		return edges[i].hi < edges[j].hi
	})
	parent := make([]core.NodeID, gw.N)
	for v := range parent {
		parent[v] = core.NodeID(v)
	}
	var find func(core.NodeID) core.NodeID
	find = func(v core.NodeID) core.NodeID {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	res := MSTResult{Edges: []MSTEdge{}}
	for _, e := range edges {
		ra, rb := find(e.lo), find(e.hi)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		res.Edges = append(res.Edges, MSTEdge{U: e.lo, V: e.hi, W: e.w})
		res.Weight += e.w
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		if res.Edges[i].U != res.Edges[j].U {
			return res.Edges[i].U < res.Edges[j].U
		}
		return res.Edges[i].V < res.Edges[j].V
	})
	return res
}

// init registers the minimum-spanning-forest kernel.
func init() {
	clique.Register("mst", func(*graph.CSR) (clique.Kernel, error) {
		return NewMSTKernel(), nil
	})
}
