package algo

import (
	"fmt"
	"sort"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// DiameterEstimate is the result of a DiameterEstimateKernel run: the
// maximum eccentricity over the sampled sources, which lower-bounds the
// true diameter (exactly for the exact variant; within the hopset's
// (1+ε) inflation for the approximate one).
type DiameterEstimate struct {
	// Estimate is max_j Ecc[j], or Unreached when any sampled source
	// fails to reach some vertex (a disconnected graph has infinite
	// diameter).
	Estimate int64
	// Sources are the sampled source vertices, ascending.
	Sources []core.NodeID
	// Ecc[j] is the (estimated) eccentricity of Sources[j]: the
	// maximum distance from it, Unreached if some vertex is
	// unreachable.
	Ecc []int64
}

// DiameterEstimateKernel estimates the weighted diameter from sampled-
// source eccentricities over the k-source pipeline: it deterministically
// samples k sources (seeded partial Fisher-Yates), runs the exact
// KSourceKernel — or, for the approximate variant, the hopset-backed
// ApproxKSourceKernel — from them on the same warm session, and reports
// max_j ecc(s_j). For the exact variant the estimate always satisfies
// the bracketing ecc_true(s_j) <= estimate <= diameter; sampling every
// vertex makes it the exact diameter. The approximate variant inflates
// each eccentricity by at most the hopset's (1+ε) factor, so
// ecc_true(s_j) <= estimate <= (1+ε)·diameter. Unweighted session
// graphs are treated as unit-weighted.
type DiameterEstimateKernel struct {
	name   string
	approx bool
	sample int
	seed   int64
	params hopset.Params

	sources []core.NodeID
	innerK  *KSourceKernel
	innerA  *ApproxKSourceKernel
	n       int
	started bool
	done    bool
	est     DiameterEstimate
	gather  engine.Gatherer
}

// SetGatherer forwards the transport's all-gather to the embedded
// k-source pipeline (clique TransportAware hook).
func (k *DiameterEstimateKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.innerK != nil {
		k.innerK.SetGatherer(g)
	}
	if k.innerA != nil {
		k.innerA.SetGatherer(g)
	}
}

// NewDiameterEstimateKernel returns an exact sampled-source diameter
// estimator over `sample` sources (clamped to n) drawn deterministically
// from seed.
func NewDiameterEstimateKernel(sample int, seed int64) *DiameterEstimateKernel {
	return &DiameterEstimateKernel{name: "diameter-est", sample: sample, seed: seed}
}

// NewApproxDiameterEstimateKernel returns a hopset-backed sampled-source
// diameter estimator: eccentricities come from the (1+ε)-approximate
// k-source pipeline with the given hopset parameters (zero-value fields
// select the defaults; see hopset.Params).
func NewApproxDiameterEstimateKernel(sample int, seed int64, p hopset.Params) *DiameterEstimateKernel {
	return &DiameterEstimateKernel{name: "diameter-est-approx", approx: true, sample: sample, seed: seed, params: p}
}

// Name identifies the kernel.
func (k *DiameterEstimateKernel) Name() string { return k.name }

// splitmix64 advances the sampling PRNG state and returns the next
// word — the standard SplitMix64 step, deterministic across platforms.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// sampleSources deterministically draws min(sample, n) distinct
// vertices by a seeded partial Fisher-Yates shuffle, returned
// ascending.
func sampleSources(n, sample int, seed int64) []core.NodeID {
	if sample > n {
		sample = n
	}
	perm := make([]core.NodeID, n)
	for i := range perm {
		perm[i] = core.NodeID(i)
	}
	state := uint64(seed)
	for i := 0; i < sample; i++ {
		j := i + int(splitmix64(&state)%uint64(n-i))
		perm[i], perm[j] = perm[j], perm[i]
	}
	sources := perm[:sample]
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	return sources
}

// Nodes samples the sources and builds the embedded pipeline on the
// first call, then delegates pass by pass until the per-source
// distances are in and the eccentricities can be folded.
func (k *DiameterEstimateKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if !k.started {
		if err := k.start(g); err != nil {
			return nil, err
		}
	}
	nodes, err := k.inner().Nodes(g)
	if err != nil {
		return nil, err
	}
	if nodes != nil {
		return nodes, nil
	}
	k.finish()
	return nil, nil
}

// start validates the input, samples the sources, and builds the
// embedded exact or approximate k-source kernel.
func (k *DiameterEstimateKernel) start(g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
	}
	if k.sample < 1 {
		return fmt.Errorf("algo: %s sample size %d must be >= 1", k.Name(), k.sample)
	}
	if g.N == 0 {
		return fmt.Errorf("algo: %s requires a non-empty graph", k.Name())
	}
	k.n = g.N
	k.sources = sampleSources(g.N, k.sample, k.seed)
	if k.approx {
		k.innerA = NewApproxKSourceKernel(k.sources, k.params)
		k.innerA.SetGatherer(k.gather)
	} else {
		k.innerK = NewKSourceKernel(k.sources, core.Log2Ceil(g.N)+1)
		k.innerK.SetGatherer(k.gather)
	}
	k.started = true
	return nil
}

// inner returns the embedded pipeline as a clique.Kernel.
func (k *DiameterEstimateKernel) inner() clique.Kernel {
	if k.approx {
		return k.innerA
	}
	return k.innerK
}

// innerDist returns the embedded pipeline's distance rows.
func (k *DiameterEstimateKernel) innerDist() [][]int64 {
	if k.approx {
		return k.innerA.Dist()
	}
	return k.innerK.Dist()
}

// finish folds the per-source distance rows into eccentricities and
// the diameter estimate.
func (k *DiameterEstimateKernel) finish() {
	dist := k.innerDist()
	est := DiameterEstimate{Sources: k.sources, Ecc: make([]int64, len(k.sources))}
	for j, row := range dist {
		ecc := int64(0)
		for _, d := range row {
			if d == Unreached {
				ecc = Unreached
				break
			}
			if d > ecc {
				ecc = d
			}
		}
		est.Ecc[j] = ecc
		if ecc == Unreached {
			est.Estimate = Unreached
		}
		if est.Estimate != Unreached && ecc > est.Estimate {
			est.Estimate = ecc
		}
	}
	k.est = est
	k.done = true
}

// MaxRoundsHint forwards the embedded pipeline's round-bound hint.
func (k *DiameterEstimateKernel) MaxRoundsHint() int {
	if k.innerA != nil {
		return k.innerA.MaxRoundsHint()
	}
	if k.innerK != nil {
		return k.innerK.MaxRoundsHint()
	}
	return 0
}

// Result returns the DiameterEstimate, nil before completion.
func (k *DiameterEstimateKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.est
}

// Estimate returns the typed result; the zero DiameterEstimate before
// completion.
func (k *DiameterEstimateKernel) Estimate() DiameterEstimate {
	if !k.done {
		return DiameterEstimate{}
	}
	return k.est
}

// EccentricityRef is the sequential eccentricity reference: the maximum
// Bellman-Ford distance from src (unit weights when g is unweighted),
// Unreached if any vertex is unreachable.
func EccentricityRef(g *graph.CSR, src core.NodeID) int64 {
	dist := BellmanFordRef(g.WithUnitWeights(), src)
	ecc := int64(0)
	for _, d := range dist {
		if d == Unreached {
			return Unreached
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// init registers the diameter estimators with demonstration parameters:
// four sampled sources (clamped to n), a fixed seed, default hopset
// parameters for the approximate variant.
func init() {
	clique.Register("diameter-est", func(*graph.CSR) (clique.Kernel, error) {
		return NewDiameterEstimateKernel(4, 1), nil
	})
	clique.Register("diameter-est-approx", func(*graph.CSR) (clique.Kernel, error) {
		return NewApproxDiameterEstimateKernel(4, 1, hopset.Params{}), nil
	})
}
