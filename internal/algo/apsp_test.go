package algo

import (
	"math/rand"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// hopLimitedRef computes h-hop-limited distances by h rounds of Jacobi
// relaxation from each source: after pass p, dist[v] is the cheapest
// walk of at most p edges. A sequential oracle for HopLimitedDistances.
func hopLimitedRef(g *graph.CSR, h int) [][]int64 {
	out := make([][]int64, g.N)
	for src := 0; src < g.N; src++ {
		dist := make([]int64, g.N)
		next := make([]int64, g.N)
		for i := range dist {
			dist[i] = core.InfWeight
		}
		dist[src] = 0
		for p := 0; p < h; p++ {
			copy(next, dist)
			for u := 0; u < g.N; u++ {
				if dist[u] >= core.InfWeight {
					continue
				}
				cols, ws := g.Row(core.NodeID(u))
				for i, v := range cols {
					if cand := dist[u] + ws[i]; cand < next[v] {
						next[v] = cand
					}
				}
			}
			dist, next = next, dist
		}
		row := make([]int64, g.N)
		for i, d := range dist {
			if d >= core.InfWeight {
				row[i] = Unreached
			} else {
				row[i] = d
			}
		}
		out[src] = row
	}
	return out
}

// TestAPSPPropertyVsBellmanFord is the property test demanded by the
// matmul subsystem: on random G(n,p) instances across densities, every
// row of the distance-product APSP must equal the engine Bellman-Ford
// run (and its sequential reference) from that row's source.
func TestAPSPPropertyVsBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(20200803)) // PODC'20 vintage
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(22)
		p := []float64{0.08, 0.2, 0.45, 0.9}[trial%4]
		seed := rng.Int63()
		g := graph.RandomGNP(n, p, seed).WithUniformRandomWeights(seed+1, 1+int64(rng.Intn(20)))
		dist, stats, err := APSP(g, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d (n=%d p=%.2f seed=%d): APSP: %v", trial, n, p, seed, err)
		}
		if g.NumEdges() > 0 && stats.TotalMsgs == 0 {
			t.Fatalf("trial %d: APSP routed no messages on a non-empty graph", trial)
		}
		for src := 0; src < n; src++ {
			want := BellmanFordRef(g, core.NodeID(src))
			for v := 0; v < n; v++ {
				if dist[src][v] != want[v] {
					t.Fatalf("trial %d (n=%d p=%.2f seed=%d): dist[%d][%d] = %d, BellmanFordRef = %d",
						trial, n, p, seed, src, v, dist[src][v], want[v])
				}
			}
		}
		// One source also against the engine Bellman-Ford, so the two
		// distributed pipelines are checked against each other.
		src := core.NodeID(rng.Intn(n))
		bf, _, err := BellmanFord(g, src, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d: BellmanFord: %v", trial, err)
		}
		for v := 0; v < n; v++ {
			if dist[src][v] != bf[v] {
				t.Fatalf("trial %d: dist[%d][%d] = %d, engine BellmanFord = %d",
					trial, src, v, dist[src][v], bf[v])
			}
		}
	}
}

func TestHopLimitedDistancesMatchesRef(t *testing.T) {
	g := graph.RandomGNP(18, 0.18, 77).WithUniformRandomWeights(78, 9)
	for _, h := range []int{0, 1, 2, 3, 5, 17} {
		got, _, err := HopLimitedDistances(g, h, engine.Options{})
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		want := hopLimitedRef(g, h)
		for u := 0; u < g.N; u++ {
			for v := 0; v < g.N; v++ {
				if got[u][v] != want[u][v] {
					t.Fatalf("h=%d: d[%d][%d] = %d, want %d", h, u, v, got[u][v], want[u][v])
				}
			}
		}
	}
}

// TestHopLimitedConvergesToAPSP: once h reaches n-1 the truncation is
// vacuous and hop-limited distances are exact.
func TestHopLimitedConvergesToAPSP(t *testing.T) {
	g := graph.Path(9).WithUniformRandomWeights(5, 7)
	exact, _, err := APSP(g, engine.Options{})
	if err != nil {
		t.Fatalf("APSP: %v", err)
	}
	hl, _, err := HopLimitedDistances(g, g.N-1, engine.Options{})
	if err != nil {
		t.Fatalf("HopLimitedDistances: %v", err)
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if hl[u][v] != exact[u][v] {
				t.Fatalf("d[%d][%d] = %d, want %d", u, v, hl[u][v], exact[u][v])
			}
		}
	}
	// On a path, the hop horizon genuinely binds below n-1: vertex 0
	// cannot see vertex 8 within 3 hops.
	short, _, err := HopLimitedDistances(g, 3, engine.Options{})
	if err != nil {
		t.Fatalf("HopLimitedDistances(3): %v", err)
	}
	if short[0][8] != Unreached {
		t.Fatalf("3-hop d[0][8] = %d, want Unreached", short[0][8])
	}
	if short[0][2] != exact[0][2] {
		t.Fatalf("3-hop d[0][2] = %d, want exact %d", short[0][2], exact[0][2])
	}
}

// TestHopLimitedClampsOversizedBound: h beyond n-1 cannot change the
// answer (the reflexive power has stabilized), so it must neither alter
// results nor spend extra engine products.
func TestHopLimitedClampsOversizedBound(t *testing.T) {
	g := graph.RandomGNP(14, 0.25, 31).WithUniformRandomWeights(32, 6)
	exact, exactStats, err := HopLimitedDistances(g, g.N-1, engine.Options{})
	if err != nil {
		t.Fatalf("h=n-1: %v", err)
	}
	huge, hugeStats, err := HopLimitedDistances(g, 1<<30, engine.Options{})
	if err != nil {
		t.Fatalf("h=1<<30: %v", err)
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if huge[u][v] != exact[u][v] {
				t.Fatalf("d[%d][%d] = %d, want %d", u, v, huge[u][v], exact[u][v])
			}
		}
	}
	if hugeStats.Rounds != exactStats.Rounds {
		t.Fatalf("oversized h ran %d rounds, clamp to n-1 should give %d",
			hugeStats.Rounds, exactStats.Rounds)
	}
}

func TestAPSPRejectsBadInput(t *testing.T) {
	if _, _, err := APSP(graph.Path(4), engine.Options{}); err == nil {
		t.Fatal("APSP accepted an unweighted graph")
	}
	if _, _, err := HopLimitedDistances(graph.Path(4).WithUniformRandomWeights(1, 3), -1, engine.Options{}); err == nil {
		t.Fatal("HopLimitedDistances accepted a negative hop bound")
	}
}
