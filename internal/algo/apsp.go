package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// distMatrix converts a (min,+) matrix of distances into dense rows
// with the package's Unreached sentinel for absent (infinite) entries.
func distMatrix(m *matmul.Matrix) [][]int64 {
	out := make([][]int64, m.N)
	for v := 0; v < m.N; v++ {
		row := make([]int64, m.N)
		for j := range row {
			row[j] = Unreached
		}
		cols, vals := m.Row(core.NodeID(v))
		for i, j := range cols {
			if vals[i] < core.InfWeight {
				row[j] = vals[i]
			}
		}
		out[v] = row
	}
	return out
}

// APSP computes exact all-pairs shortest-path distances on a weighted g
// (non-negative integer weights) by distance-product repeated squaring
// over the round engine: D_1 = A (the reflexive (min,+) adjacency
// matrix), D_2h = D_h ⊗ D_h, stopping once the hop horizon reaches n-1.
// Overshooting the horizon is harmless — the reflexive power has
// stabilized — so exactly ceil(log2(n-1)) engine products run, the
// algebraic skeleton of the Dory-Parter pipeline, where sparsified
// products and hopsets shrink each product's cost further. Distances
// are returned as dense rows with Unreached for disconnected pairs, and
// the stats aggregate every product's rounds and routed words. APSP is
// a thin wrapper over running an APSPKernel on a single-use clique
// session.
func APSP(g *graph.CSR, opts engine.Options) ([][]int64, *engine.Stats, error) {
	if err := checkDistanceInput(g); err != nil {
		return nil, nil, err
	}
	k := NewAPSPKernel()
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// HopLimitedDistances computes the truncated distance matrix d^h:
// d^h(u,v) is the minimum weight of a u-v path with at most h edges,
// or Unreached if no such path exists. This is the paper's h-hop
// distance operator — the object hopsets exist to shrink h for — and it
// equals the h-th (min,+) power of the reflexive adjacency matrix,
// computed here by square-and-multiply in O(log h) engine products.
// HopLimitedDistances is a thin wrapper over running a HopLimitedKernel
// on a single-use clique session.
func HopLimitedDistances(g *graph.CSR, h int, opts engine.Options) ([][]int64, *engine.Stats, error) {
	if h < 0 {
		return nil, nil, fmt.Errorf("algo: negative hop bound %d", h)
	}
	if err := checkDistanceInput(g); err != nil {
		return nil, nil, err
	}
	k := NewHopLimitedKernel(h)
	stats, err := runGraphKernel(g, k, opts)
	if err != nil {
		return nil, stats, err
	}
	return k.Dist(), stats, nil
}

// checkDistanceInput enforces the historical strictness of the
// distance-product free functions: the graph must be explicitly
// weighted (registry-constructed kernels instead fall back to unit
// weights). Weight non-negativity is validated once inside the kernel
// (minplusAdjacency), not re-scanned here.
func checkDistanceInput(g *graph.CSR) error {
	if !g.Weighted() {
		return fmt.Errorf("algo: distance products require a weighted graph")
	}
	return nil
}

// minplusAdjacency validates g and builds its reflexive (min,+)
// adjacency matrix, the shared starting point of every distance-product
// pipeline here.
func minplusAdjacency(g *graph.CSR) (*matmul.Matrix, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("algo: distance products require a weighted graph")
	}
	if err := checkNonNegative("distance products", g); err != nil {
		return nil, err
	}
	return matmul.FromGraph(g, core.MinPlus(), true)
}
