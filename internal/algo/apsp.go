package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// accumulate folds one product's engine stats into a running total.
// Per-round detail is deliberately dropped: round numbers restart at
// zero for every product, so concatenating them would mislead.
func accumulate(total *engine.Stats, s *engine.Stats) {
	if s == nil {
		return
	}
	total.Rounds += s.Rounds
	total.TotalMsgs += s.TotalMsgs
	total.TotalBytes += s.TotalBytes
	total.Wall += s.Wall
}

// distMatrix converts a (min,+) matrix of distances into dense rows
// with the package's Unreached sentinel for absent (infinite) entries.
func distMatrix(m *matmul.Matrix) [][]int64 {
	out := make([][]int64, m.N)
	for v := 0; v < m.N; v++ {
		row := make([]int64, m.N)
		for j := range row {
			row[j] = Unreached
		}
		cols, vals := m.Row(core.NodeID(v))
		for i, j := range cols {
			if vals[i] < core.InfWeight {
				row[j] = vals[i]
			}
		}
		out[v] = row
	}
	return out
}

// APSP computes exact all-pairs shortest-path distances on a weighted g
// (non-negative integer weights) by distance-product repeated squaring
// over the round engine: D_1 = A (the reflexive (min,+) adjacency
// matrix), D_2h = D_h ⊗ D_h, stopping once the hop horizon reaches n-1.
// Overshooting the horizon is harmless — the reflexive power has
// stabilized — so exactly ceil(log2(n-1)) engine products run, the
// algebraic skeleton of the Dory-Parter pipeline, where sparsified
// products and hopsets shrink each product's cost further. Distances
// are returned as dense rows with Unreached for disconnected pairs, and
// the stats aggregate every product's rounds and routed words.
func APSP(g *graph.CSR, opts engine.Options) ([][]int64, *engine.Stats, error) {
	a, err := minplusAdjacency(g)
	if err != nil {
		return nil, nil, err
	}
	stats := &engine.Stats{}
	mopts := matmul.Options{Engine: opts}
	d := a
	for span := 1; span < g.N-1; span *= 2 {
		var s *engine.Stats
		d, s, err = matmul.Mul(d, d, mopts)
		accumulate(stats, s)
		if err != nil {
			return nil, stats, err
		}
	}
	return distMatrix(d), stats, nil
}

// HopLimitedDistances computes the truncated distance matrix d^h:
// d^h(u,v) is the minimum weight of a u-v path with at most h edges,
// or Unreached if no such path exists. This is the paper's h-hop
// distance operator — the object hopsets exist to shrink h for — and it
// equals the h-th (min,+) power of the reflexive adjacency matrix,
// computed here by square-and-multiply in O(log h) engine products.
func HopLimitedDistances(g *graph.CSR, h int, opts engine.Options) ([][]int64, *engine.Stats, error) {
	if h < 0 {
		return nil, nil, fmt.Errorf("algo: negative hop bound %d", h)
	}
	d, stats, err := minplusPower(g, h, opts)
	if err != nil {
		return nil, stats, err
	}
	return distMatrix(d), stats, nil
}

// minplusAdjacency validates g and builds its reflexive (min,+)
// adjacency matrix, the shared starting point of every distance-product
// pipeline here.
func minplusAdjacency(g *graph.CSR) (*matmul.Matrix, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("algo: distance products require a weighted graph")
	}
	for _, w := range g.Weights {
		if w < 0 {
			return nil, fmt.Errorf("algo: distance products require non-negative weights, got %d", w)
		}
	}
	return matmul.FromGraph(g, core.MinPlus(), true)
}

// minplusPower returns A^h over (min,+), where A is the reflexive
// adjacency matrix of g, via square-and-multiply on the engine (exact
// exponentiation, as hop-limited semantics require). h = 0 yields the
// identity (every vertex at distance 0 from itself only).
func minplusPower(g *graph.CSR, h int, opts engine.Options) (*matmul.Matrix, *engine.Stats, error) {
	// The reflexive (min,+) power stabilizes at A^(n-1) — every simple
	// shortest path has at most n-1 edges — so larger exponents would
	// only spend engine products on bit-identical results.
	if limit := g.N - 1; h > limit {
		if limit < 0 {
			limit = 0
		}
		h = limit
	}
	a, err := minplusAdjacency(g)
	if err != nil {
		return nil, nil, err
	}
	sr := core.MinPlus()
	stats := &engine.Stats{}
	mopts := matmul.Options{Engine: opts}
	// Square-and-multiply over the semiring. result stays nil until the
	// first set bit so we never pay an Identity ⊗ A product.
	var result *matmul.Matrix
	base := a
	for e := h; e > 0; e >>= 1 {
		if e&1 == 1 {
			if result == nil {
				result = base
			} else {
				var s *engine.Stats
				result, s, err = matmul.Mul(result, base, mopts)
				accumulate(stats, s)
				if err != nil {
					return nil, stats, err
				}
			}
		}
		if e > 1 {
			var s *engine.Stats
			base, s, err = matmul.Mul(base, base, mopts)
			accumulate(stats, s)
			if err != nil {
				return nil, stats, err
			}
		}
	}
	if result == nil {
		result = matmul.Identity(g.N, sr)
	}
	return result, stats, nil
}
