package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// This file is the kernel layer of the algorithm package: every
// algorithm is expressed as a clique.Kernel so that callers compose
// them on one warm Session, and the historical free functions (BFS,
// BellmanFord, APSP, ...) are thin wrappers that run a kernel on a
// single-use session. Kernels constructed by the registry adapt to any
// input graph (unweighted graphs are treated as unit-weighted); the
// free functions keep their stricter historical validation.

// runGraphKernel runs kernel k on a single-use session over g and
// returns the session's cumulative engine stats (see clique.OneShot
// for the stats contract).
func runGraphKernel(g *graph.CSR, k clique.Kernel, eopts engine.Options) (*engine.Stats, error) {
	s, err := clique.New(g, clique.WithEngineOptions(eopts))
	if err != nil {
		return nil, err
	}
	return clique.OneShot(s, k)
}

// checkSource validates a source vertex against the session graph.
func checkSource(name string, src core.NodeID, g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", name)
	}
	if src < 0 || int(src) >= g.N {
		return fmt.Errorf("algo: %s source %d out of range [0,%d)", name, src, g.N)
	}
	return nil
}

// checkNonNegative rejects negative arc weights, which the unsigned
// message words (and the non-negativity assumptions of every algorithm
// here) cannot represent.
func checkNonNegative(name string, g *graph.CSR) error {
	for _, w := range g.Weights {
		if w < 0 {
			return fmt.Errorf("algo: %s requires non-negative weights, got %d", name, w)
		}
	}
	return nil
}

// BFSKernel computes single-source hop distances by a parallel
// breadth-first flood — one engine pass. Result/Dist hold the distance
// vector (Unreached for unreachable vertices) after completion.
type BFSKernel struct {
	src    core.NodeID
	state  []bfsNode
	dist   []int64
	done   bool
	gather engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so the
// harvest assembles the full distance vector on every rank (clique
// TransportAware hook).
func (k *BFSKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewBFSKernel returns a BFS kernel flooding from src.
func NewBFSKernel(src core.NodeID) *BFSKernel { return &BFSKernel{src: src} }

// Name identifies the kernel.
func (k *BFSKernel) Name() string { return "bfs" }

// Nodes builds the flood node set on the first call and harvests the
// distance vector on the second.
func (k *BFSKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.state != nil {
		k.dist = make([]int64, len(k.state))
		for i := range k.state {
			k.dist[i] = k.state[i].dist
		}
		if k.gather != nil && len(k.dist) > 0 {
			if err := k.gather.AllGatherRows(k.dist, 1); err != nil {
				return nil, err
			}
		}
		k.done = true
		return nil, nil
	}
	if err := checkSource(k.Name(), k.src, g); err != nil {
		return nil, err
	}
	nodes := make([]engine.Node, g.N)
	k.state = make([]bfsNode, g.N)
	for i := range k.state {
		k.state[i] = bfsNode{g: g, src: k.src, dist: Unreached}
		nodes[i] = &k.state[i]
	}
	return nodes, nil
}

// Result returns the distance vector ([]int64), nil before completion.
func (k *BFSKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance vector, nil before completion.
func (k *BFSKernel) Dist() []int64 { return k.dist }

// BellmanFordKernel computes single-source shortest-path distances by
// iterated parallel relaxation — one engine pass. Unweighted session
// graphs are treated as unit-weighted, so the kernel runs on any input;
// negative weights are rejected.
type BellmanFordKernel struct {
	src    core.NodeID
	state  []bfordNode
	dist   []int64
	done   bool
	gather engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so the
// harvest assembles the full distance vector on every rank (clique
// TransportAware hook).
func (k *BellmanFordKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewBellmanFordKernel returns a Bellman-Ford kernel relaxing from src.
func NewBellmanFordKernel(src core.NodeID) *BellmanFordKernel {
	return &BellmanFordKernel{src: src}
}

// Name identifies the kernel.
func (k *BellmanFordKernel) Name() string { return "bellman-ford" }

// Nodes builds the relaxation node set on the first call and harvests
// the distance vector on the second.
func (k *BellmanFordKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.state != nil {
		k.dist = make([]int64, len(k.state))
		for i := range k.state {
			k.dist[i] = k.state[i].dist
		}
		if k.gather != nil && len(k.dist) > 0 {
			if err := k.gather.AllGatherRows(k.dist, 1); err != nil {
				return nil, err
			}
		}
		k.done = true
		return nil, nil
	}
	if err := checkSource(k.Name(), k.src, g); err != nil {
		return nil, err
	}
	gw := g.WithUnitWeights()
	if err := checkNonNegative(k.Name(), gw); err != nil {
		return nil, err
	}
	nodes := make([]engine.Node, gw.N)
	k.state = make([]bfordNode, gw.N)
	for i := range k.state {
		k.state[i] = bfordNode{g: gw, src: k.src, dist: Unreached}
		nodes[i] = &k.state[i]
	}
	return nodes, nil
}

// Result returns the distance vector ([]int64), nil before completion.
func (k *BellmanFordKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance vector, nil before completion.
func (k *BellmanFordKernel) Dist() []int64 { return k.dist }

// powerState iterates the reflexive (min,+) power A^h by
// square-and-multiply, one engine product per step — the
// square-and-multiply loop of the original implementation unrolled
// into an explicit pass iterator so that session kernels can interleave
// it with other stages. result stays nil until the first set exponent
// bit so an Identity ⊗ A product is never paid.
type powerState struct {
	n            int
	e            int
	base, result *matmul.Matrix
	pass         *matmul.Pass
	passIsSquare bool
	// phase 0: the current exponent bit's multiply step is pending;
	// phase 1: it is done and the squaring step is pending.
	phase int
	// gather is injected into every pass so harvests assemble the full
	// product across transport ranks.
	gather engine.Gatherer
}

// newPowerState prepares the power A^h over graph g, clamping h to n-1:
// the reflexive power stabilizes there (every simple shortest path has
// at most n-1 edges), so larger exponents would only spend engine
// products on bit-identical results.
func newPowerState(g *graph.CSR, h int) (*powerState, error) {
	a, err := minplusAdjacency(g)
	if err != nil {
		return nil, err
	}
	return newPowerStateOf(a, h), nil
}

// newPowerStateOf prepares the power a^h of an arbitrary reflexive
// semiring matrix, clamping h to a.N-1 as newPowerState does. This is
// the semiring-generic entry point: the widest-path pipeline powers a
// (max,min) adjacency through it, closure a boolean one.
func newPowerStateOf(a *matmul.Matrix, h int) *powerState {
	if limit := a.N - 1; h > limit {
		if limit < 0 {
			limit = 0
		}
		h = limit
	}
	return &powerState{n: a.N, e: h, base: a}
}

// harvest folds the completed in-flight pass (if any) back into the
// square-and-multiply state, gathering the product across transport
// ranks first. Idempotent — harvesting twice is a no-op — so
// checkpointing can force it at a pass boundary before the next Nodes
// call would.
func (ps *powerState) harvest() error {
	if ps.pass == nil {
		return nil
	}
	if err := ps.pass.Gather(); err != nil {
		return err
	}
	m := ps.pass.Sparse()
	if ps.passIsSquare {
		ps.base = m
	} else {
		ps.result = m
	}
	ps.pass = nil
	return nil
}

// next harvests the pass returned by the previous call (if any) and
// returns the next product pass, or nil once A^h is fully computed.
func (ps *powerState) next() (*matmul.Pass, error) {
	if err := ps.harvest(); err != nil {
		return nil, err
	}
	for ps.e > 0 {
		if ps.phase == 0 {
			ps.phase = 1
			if ps.e&1 == 1 {
				if ps.result == nil {
					ps.result = ps.base
				} else {
					p, err := matmul.NewPass(ps.result, ps.base, false)
					if err != nil {
						return nil, err
					}
					p.SetGatherer(ps.gather)
					ps.pass, ps.passIsSquare = p, false
					return p, nil
				}
			}
		}
		if ps.e > 1 {
			ps.phase = 0
			ps.e >>= 1
			p, err := matmul.NewPass(ps.base, ps.base, false)
			if err != nil {
				return nil, err
			}
			p.SetGatherer(ps.gather)
			ps.pass, ps.passIsSquare = p, true
			return p, nil
		}
		ps.e = 0
	}
	return nil, nil
}

// matrix returns A^h after next has returned nil. h = 0 yields the
// identity in the base matrix's semiring (every vertex related only to
// itself, with value One).
func (ps *powerState) matrix() *matmul.Matrix {
	if ps.result == nil {
		sr := core.MinPlus()
		if ps.base != nil {
			sr = ps.base.Sr
		}
		return matmul.Identity(ps.n, sr)
	}
	return ps.result
}

// hint forwards the in-flight pass's round-bound hint.
func (ps *powerState) hint() int {
	if ps.pass == nil {
		return 0
	}
	return ps.pass.MaxRoundsHint()
}

// APSPKernel computes exact all-pairs shortest-path distances by
// distance-product repeated squaring: D_1 = A (the reflexive (min,+)
// adjacency matrix), D_2h = D_h ⊗ D_h, one engine pass per squaring on
// the same warm session, stopping once the hop horizon reaches n-1.
// Unweighted session graphs are treated as unit-weighted.
type APSPKernel struct {
	n       int
	span    int
	d       *matmul.Matrix
	pass    *matmul.Pass
	dist    [][]int64
	started bool
	done    bool
	gather  engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so every
// squaring's harvest assembles the full product on every rank (clique
// TransportAware hook).
func (k *APSPKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewAPSPKernel returns an all-pairs shortest-path kernel.
func NewAPSPKernel() *APSPKernel { return &APSPKernel{} }

// Name identifies the kernel.
func (k *APSPKernel) Name() string { return "apsp" }

// Nodes returns one squaring pass per call until the hop horizon covers
// n-1, then harvests the distance matrix.
func (k *APSPKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if !k.started {
		if g == nil {
			return nil, fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
		}
		a, err := minplusAdjacency(g.WithUnitWeights())
		if err != nil {
			return nil, err
		}
		k.d, k.n, k.span, k.started = a, g.N, 1, true
	}
	if err := k.harvest(); err != nil {
		return nil, err
	}
	if k.span >= k.n-1 {
		k.dist = distMatrix(k.d)
		k.done = true
		return nil, nil
	}
	pass, err := matmul.NewPass(k.d, k.d, false)
	if err != nil {
		return nil, err
	}
	pass.SetGatherer(k.gather)
	k.pass = pass
	return pass.Nodes(), nil
}

// harvest folds the completed squaring pass (if any) into the distance
// matrix and doubles the covered hop horizon, gathering the product
// across transport ranks first. Idempotent, so checkpointing can force
// it at a pass boundary.
func (k *APSPKernel) harvest() error {
	if k.pass == nil {
		return nil
	}
	if err := k.pass.Gather(); err != nil {
		return err
	}
	k.d = k.pass.Sparse()
	k.pass = nil
	k.span *= 2
	return nil
}

// MaxRoundsHint forwards the in-flight squaring's round-bound hint.
func (k *APSPKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the distance matrix ([][]int64, Unreached for
// disconnected pairs), nil before completion.
func (k *APSPKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance matrix, nil before completion.
func (k *APSPKernel) Dist() [][]int64 { return k.dist }

// HopLimitedKernel computes the truncated distance matrix d^h — the
// minimum weight of a u-v path with at most h edges — as the h-th
// (min,+) power of the reflexive adjacency matrix, one engine product
// per square-and-multiply step. Unweighted session graphs are treated
// as unit-weighted.
type HopLimitedKernel struct {
	h      int
	ps     *powerState
	dist   [][]int64
	done   bool
	gather engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so every
// power step's harvest assembles the full product on every rank
// (clique TransportAware hook).
func (k *HopLimitedKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.ps != nil {
		k.ps.gather = g
	}
}

// NewHopLimitedKernel returns a kernel computing h-hop-limited
// distances; h must be non-negative.
func NewHopLimitedKernel(h int) *HopLimitedKernel { return &HopLimitedKernel{h: h} }

// Name identifies the kernel.
func (k *HopLimitedKernel) Name() string { return "hop-limited" }

// Nodes returns one power-iteration pass per call, then harvests the
// truncated distance matrix.
func (k *HopLimitedKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.ps == nil {
		if k.h < 0 {
			return nil, fmt.Errorf("algo: negative hop bound %d", k.h)
		}
		if g == nil {
			return nil, fmt.Errorf("algo: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
		}
		ps, err := newPowerState(g.WithUnitWeights(), k.h)
		if err != nil {
			return nil, err
		}
		ps.gather = k.gather
		k.ps = ps
	}
	pass, err := k.ps.next()
	if err != nil {
		return nil, err
	}
	if pass == nil {
		k.dist = distMatrix(k.ps.matrix())
		k.done = true
		return nil, nil
	}
	return pass.Nodes(), nil
}

// MaxRoundsHint forwards the in-flight product's round-bound hint.
func (k *HopLimitedKernel) MaxRoundsHint() int {
	if k.ps == nil {
		return 0
	}
	return k.ps.hint()
}

// Result returns the truncated distance matrix ([][]int64), nil before
// completion.
func (k *HopLimitedKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.dist
}

// Dist returns the typed truncated distance matrix, nil before
// completion.
func (k *HopLimitedKernel) Dist() [][]int64 { return k.dist }

// init registers the algorithm kernels with demonstration parameters
// chosen from the graph, so ccbench -kernel and the registry test
// sweep can run every algorithm on any input.
func init() {
	clique.Register("bfs", func(*graph.CSR) (clique.Kernel, error) {
		return NewBFSKernel(0), nil
	})
	clique.Register("bellman-ford", func(*graph.CSR) (clique.Kernel, error) {
		return NewBellmanFordKernel(0), nil
	})
	clique.Register("apsp", func(*graph.CSR) (clique.Kernel, error) {
		return NewAPSPKernel(), nil
	})
	clique.Register("hop-limited", func(g *graph.CSR) (clique.Kernel, error) {
		// A hop bound around log n is the regime hopsets target; any
		// value is correct, this is just a representative demo choice.
		return NewHopLimitedKernel(core.Log2Ceil(g.N) + 1), nil
	})
	clique.Register("ksource", func(g *graph.CSR) (clique.Kernel, error) {
		sources := []core.NodeID{}
		if g.N > 0 {
			sources = append(sources, 0)
		}
		if g.N > 2 {
			sources = append(sources, core.NodeID(g.N/2))
		}
		return NewKSourceKernel(sources, core.Log2Ceil(g.N)+1), nil
	})
}
