package algo

import (
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// relaxState iterates the per-source relaxation stage shared by the
// exact and approximate k-source pipelines: starting from the source
// indicator columns, run `remaining` dense products B_{t+1} = S ⊗ B_t
// over a fixed matrix S, one engine pass per product. KSourceKernel
// instantiates it with S = A^h and ceil((n-1)/h) products for
// exactness; the approximate kernels with S = the hopset-augmented
// adjacency and ceil(β) products.
type relaxState struct {
	s         *matmul.Matrix
	cur       *matmul.Dense
	pass      *matmul.Pass
	remaining int
	// gather is injected into every pass so harvests assemble the full
	// product across transport ranks.
	gather engine.Gatherer
}

// newRelaxState prepares `remaining` relaxation products of s against
// the indicator columns of the given sources in s's semiring: One at
// the source (0 over (min,+), InfWidth over (max,min)), Zero
// elsewhere.
func newRelaxState(s *matmul.Matrix, sources []core.NodeID, remaining int) *relaxState {
	b := matmul.NewDense(s.N, len(sources), s.Sr)
	for j, src := range sources {
		b.Row(src)[j] = s.Sr.One
	}
	return &relaxState{s: s, cur: b, remaining: remaining}
}

// harvest folds the completed in-flight product (if any) into the
// current columns, gathering it across transport ranks first.
// Idempotent, so checkpointing can force it at a pass boundary before
// the next call would.
func (rs *relaxState) harvest() error {
	if rs.pass == nil {
		return nil
	}
	if err := rs.pass.Gather(); err != nil {
		return err
	}
	rs.cur = rs.pass.Dense()
	rs.pass = nil
	rs.remaining--
	return nil
}

// next harvests the pass returned by the previous call (if any) and
// returns the next relaxation pass, or nil once all products have run.
func (rs *relaxState) next() (*matmul.Pass, error) {
	if err := rs.harvest(); err != nil {
		return nil, err
	}
	if rs.remaining <= 0 {
		return nil, nil
	}
	pass, err := matmul.NewDensePass(rs.s, rs.cur, false)
	if err != nil {
		return nil, err
	}
	pass.SetGatherer(rs.gather)
	rs.pass = pass
	return pass, nil
}

// hint forwards the in-flight product's round-bound hint.
func (rs *relaxState) hint() int {
	if rs.pass == nil {
		return 0
	}
	return rs.pass.MaxRoundsHint()
}

// valueRows transposes the final n x k columns into per-source rows of
// raw semiring values, no sentinel translation — the harvest for
// pipelines whose semiring has a directly meaningful Zero (the
// (max,min) width 0 means "unreachable" on its own).
func (rs *relaxState) valueRows() [][]int64 {
	k := rs.cur.K
	rows := make([][]int64, k)
	for j := range rows {
		rows[j] = make([]int64, rs.cur.N)
	}
	for v := 0; v < rs.cur.N; v++ {
		row := rs.cur.Row(core.NodeID(v))
		for j := 0; j < k; j++ {
			rows[j][v] = row[j]
		}
	}
	return rows
}

// distRows transposes the final n x k distance columns into per-source
// rows with the Unreached sentinel.
func (rs *relaxState) distRows() [][]int64 {
	k := rs.cur.K
	dist := make([][]int64, k)
	for j := range dist {
		dist[j] = make([]int64, rs.cur.N)
	}
	for v := 0; v < rs.cur.N; v++ {
		row := rs.cur.Row(core.NodeID(v))
		for j := 0; j < k; j++ {
			if row[j] >= core.InfWeight {
				dist[j][v] = Unreached
			} else {
				dist[j][v] = row[j]
			}
		}
	}
	return dist
}
