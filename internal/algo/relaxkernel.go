package algo

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// RelaxKernel runs only the per-source relaxation stage of the
// k-source pipeline over a caller-supplied (min,+) matrix S: starting
// from the source indicator columns, it iterates `products` dense
// engine products B_{t+1} = S ⊗ B_t and reports the resulting
// distance rows. It is exactly stage 2 of ApproxKSourceKernel (and of
// KSourceKernel) with stage 1 skipped — the steady-state fast path of
// ccserve's hopset-augmented adjacency cache: construct the hopset
// once, cache S = Augment(base, hopset) with products = min(β, n-1),
// and every later (1+ε)-approximate query pays zero stage-1 rounds
// while returning bit-identical distances to a full pipeline run.
//
// The kernel runs on any session of size S.N (graph-bound or
// clique.NewSize); the session graph is ignored.
type RelaxKernel struct {
	s        *matmul.Matrix
	sources  []core.NodeID
	products int

	rx     *relaxState
	done   bool
	dist   [][]int64
	gather engine.Gatherer
}

// NewRelaxKernel returns a relaxation-only kernel over matrix s from
// the given sources, running `products` dense products. For
// bit-identity with ApproxKSourceKernel at hopset bound β, pass
// products = min(β, s.N-1).
func NewRelaxKernel(s *matmul.Matrix, sources []core.NodeID, products int) *RelaxKernel {
	return &RelaxKernel{s: s, sources: sources, products: products}
}

// SetGatherer injects the session transport's all-gather so harvests
// assemble the full product on every rank (clique TransportAware
// hook).
func (k *RelaxKernel) SetGatherer(g engine.Gatherer) {
	k.gather = g
	if k.rx != nil {
		k.rx.gather = g
	}
}

// Name identifies the kernel.
func (k *RelaxKernel) Name() string { return "relax" }

// Nodes validates the inputs on the first call and then returns one
// relaxation product per call until `products` have run.
func (k *RelaxKernel) Nodes(*graph.CSR) ([]engine.Node, error) {
	if k.done {
		return nil, nil
	}
	if k.rx == nil {
		if k.s == nil {
			return nil, fmt.Errorf("algo: %s kernel requires a matrix", k.Name())
		}
		if k.products < 0 {
			return nil, fmt.Errorf("algo: %s product count %d must be >= 0", k.Name(), k.products)
		}
		for _, src := range k.sources {
			if src < 0 || int(src) >= k.s.N {
				return nil, fmt.Errorf("algo: %s source %d out of range [0,%d)", k.Name(), src, k.s.N)
			}
		}
		k.rx = newRelaxState(k.s, k.sources, k.products)
		k.rx.gather = k.gather
	}
	pass, err := k.rx.next()
	if err != nil {
		return nil, err
	}
	if pass != nil {
		return pass.Nodes(), nil
	}
	k.dist = k.rx.distRows()
	k.done = true
	return nil, nil
}

// MaxRoundsHint forwards the in-flight product's round-bound hint.
func (k *RelaxKernel) MaxRoundsHint() int {
	if k.rx == nil {
		return 0
	}
	return k.rx.hint()
}

// Result returns the distance rows ([][]int64, dist[j][v] = the
// relaxed distance from sources[j] to v, Unreached when the product
// horizon never reached v), nil before completion.
func (k *RelaxKernel) Result() any {
	if !k.done {
		return nil
	}
	return k.dist
}

// Dist returns the typed distance rows, nil before completion.
func (k *RelaxKernel) Dist() [][]int64 { return k.dist }

// RelaxProducts returns the product count that makes a RelaxKernel
// over a hopset-augmented matrix bit-identical to the approximate
// pipeline's stage 2: the hop bound β clamped to n-1 (no shortest
// path has more hops than that even without shortcuts).
func RelaxProducts(beta, n int) int {
	if limit := n - 1; beta > limit {
		return limit
	}
	if beta < 0 {
		return 0
	}
	return beta
}

var _ clique.Kernel = (*RelaxKernel)(nil)
