package algo

import (
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestTransitiveClosureMatchesRef checks the boolean squaring kernel
// bit for bit against per-source BFS reachability.
func TestTransitiveClosureMatchesRef(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"gnp_sparse":    graph.RandomGNP(18, 0.1, 3),
		"gnp_dense":     graph.RandomGNP(12, 0.5, 5),
		"gnp_weighted":  graph.RandomGNPWeighted(15, 0.2, 9, 8),
		"path":          graph.Path(10),
		"single":        graph.Path(1),
		"edgeless":      graph.RandomGNP(7, 0, 1),
		"two_component": twoComponents(),
	}
	for name, g := range graphs {
		g := g
		t.Run(name, func(t *testing.T) {
			k := NewTransitiveClosureKernel()
			runKernel(t, g, k)
			reach := k.Reach()
			if reach == nil {
				t.Fatal("no result after completion")
			}
			for src := 0; src < g.N; src++ {
				want := ClosureRef(g, core.NodeID(src))
				if !reflect.DeepEqual(reach[src], want) {
					t.Fatalf("row %d: kernel %v, oracle %v", src, reach[src], want)
				}
			}
		})
	}
}

// twoComponents builds two disjoint paths in one graph, so closure has
// genuinely unreachable cross-pairs.
func twoComponents() *graph.CSR {
	g, err := graph.LoadEdgeList(strings.NewReader(
		"p 8\n0 1\n1 2\n2 3\n4 5\n5 6\n6 7\n"))
	if err != nil {
		panic(err)
	}
	return g
}

// TestClosureIsReflexiveAndSymmetricOnUndirected pins structural
// properties of the result: every vertex reaches itself, and on the
// undirected graphs this repo models, reachability is symmetric.
func TestClosureIsReflexiveAndSymmetricOnUndirected(t *testing.T) {
	g := graph.RandomGNP(20, 0.12, 4)
	k := NewTransitiveClosureKernel()
	runKernel(t, g, k)
	reach := k.Reach()
	for u := range reach {
		if !reach[u][u] {
			t.Fatalf("vertex %d does not reach itself", u)
		}
		for v := range reach[u] {
			if reach[u][v] != reach[v][u] {
				t.Fatalf("reachability asymmetric on (%d,%d)", u, v)
			}
		}
	}
}
