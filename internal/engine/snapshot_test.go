package engine

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// tokenRingNode is a deterministic handler whose behavior is a pure function
// of (round, inbox) — exactly the property that makes an engine-level
// snapshot sufficient for resume: a fresh tokenRingNode continues a restored
// run identically. Round 0 seeds one token per node; every later round
// forwards each token to the next node with a mixed payload, until
// round limit quiesces the system.
type tokenRingNode struct {
	id    core.NodeID
	limit core.Round
}

func (n *tokenRingNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if r >= n.limit {
		return nil
	}
	if r == 0 {
		return ctx.Send(core.NodeID((int(n.id)+1)%ctx.NumNodes()), uint64(n.id)+1)
	}
	for _, m := range inbox {
		next := core.NodeID((int(n.id) + 1) % ctx.NumNodes())
		if err := ctx.Send(next, m.Payload*31+uint64(m.Src)+1); err != nil {
			return err
		}
	}
	return nil
}

func tokenRingNodes(n int, limit core.Round) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &tokenRingNode{id: core.NodeID(i), limit: limit}
	}
	return nodes
}

// TestSnapshotRestoreEquivalence is the engine-level replay property:
// run to completion once for reference, then run the same system to a
// mid-run barrier, snapshot, serialize, restore into a *fresh* engine,
// finish — and require bit-identical per-round digests and identical
// cumulative message counts.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const n, limit = 9, 12
	opts := Options{Workers: 3, RecordDigests: true}

	ref, err := New(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refStats, err := ref.Run(context.Background(), tokenRingNodes(n, limit))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refDigests := ref.Digests()
	if len(refDigests) != refStats.Rounds {
		t.Fatalf("reference recorded %d digests over %d rounds", len(refDigests), refStats.Rounds)
	}

	for cut := 1; cut < refStats.Rounds; cut += 3 {
		e1, err := New(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e1.RunBounded(context.Background(), tokenRingNodes(n, limit), cut); !errors.Is(err, ErrMaxRounds) {
			e1.Close()
			t.Fatalf("cut=%d: bounded run err = %v, want ErrMaxRounds", cut, err)
		}
		snap, err := e1.Snapshot()
		e1.Close()
		if err != nil {
			t.Fatalf("cut=%d: Snapshot: %v", cut, err)
		}

		var buf bytes.Buffer
		if _, err := snap.WriteTo(&buf); err != nil {
			t.Fatalf("cut=%d: WriteTo: %v", cut, err)
		}
		loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("cut=%d: ReadSnapshot: %v", cut, err)
		}
		if !reflect.DeepEqual(normalizeSnap(snap), normalizeSnap(loaded)) {
			t.Fatalf("cut=%d: snapshot did not round-trip through serialization", cut)
		}

		// A different worker count exercises the sent-counter refold and
		// proves digests are schedule-independent.
		e2, err := New(n, Options{Workers: 2, RecordDigests: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.RestoreSnapshot(loaded); err != nil {
			e2.Close()
			t.Fatalf("cut=%d: RestoreSnapshot: %v", cut, err)
		}
		stats, err := e2.Run(context.Background(), tokenRingNodes(n, limit))
		if err != nil {
			e2.Close()
			t.Fatalf("cut=%d: resumed run: %v", cut, err)
		}
		got := e2.Digests()
		e2.Close()
		if !reflect.DeepEqual(got, refDigests) {
			t.Fatalf("cut=%d: resumed digest chain diverged\n got %v\nwant %v", cut, got, refDigests)
		}
		if stats.Rounds != refStats.Rounds || stats.TotalMsgs != refStats.TotalMsgs {
			t.Fatalf("cut=%d: resumed totals (rounds=%d msgs=%d) != reference (rounds=%d msgs=%d)",
				cut, stats.Rounds, stats.TotalMsgs, refStats.Rounds, refStats.TotalMsgs)
		}
	}
}

// normalizeSnap maps empty and nil inbox slices to a canonical form so
// DeepEqual compares content, not allocation history.
func normalizeSnap(s *Snapshot) *Snapshot {
	c := *s
	c.Inbox = make([][]Message, len(s.Inbox))
	for i, box := range s.Inbox {
		if len(box) > 0 {
			c.Inbox[i] = box
		}
	}
	if len(c.Sent) == 0 {
		c.Sent = nil
	}
	if len(c.Digests) == 0 {
		c.Digests = nil
	}
	return &c
}

// TestRunBoundedAbsoluteAfterResume: after RestoreSnapshot, maxRounds
// is an absolute round number, so a resumed run bounded at the cut
// round executes zero further rounds.
func TestRunBoundedAbsoluteAfterResume(t *testing.T) {
	const n, limit = 5, 8
	e, err := New(n, Options{RecordDigests: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunBounded(context.Background(), tokenRingNodes(n, limit), 3); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunBounded(context.Background(), tokenRingNodes(n, limit), 3)
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("resumed err = %v, want ErrMaxRounds at the same absolute bound", err)
	}
	if stats.Rounds != 3 || len(stats.PerRound) != 0 {
		t.Fatalf("resumed run executed %d new rounds (totals %d), want 0 (totals 3)", len(stats.PerRound), stats.Rounds)
	}
}

// TestRestoreMismatchRejected: snapshots only restore into engines of
// the same clique size and bandwidth budget.
func TestRestoreMismatchRejected(t *testing.T) {
	e, err := New(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other, err := New(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.RestoreSnapshot(snap); err == nil {
		t.Error("restore into a differently sized engine succeeded")
	}

	fat, err := New(4, Options{Budget: core.Budget{BitsPerLink: 1024, MsgBits: 64}})
	if err != nil {
		t.Fatal(err)
	}
	defer fat.Close()
	if err := fat.RestoreSnapshot(snap); err == nil {
		t.Error("restore into a differently budgeted engine succeeded")
	}
}

// TestSnapshotClosedEngine: Snapshot and RestoreSnapshot on a closed
// engine fail with ErrClosed instead of touching released slabs.
func TestSnapshotClosedEngine(t *testing.T) {
	e, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Errorf("Snapshot after Close: err = %v, want ErrClosed", err)
	}
	if err := e.RestoreSnapshot(snap); !errors.Is(err, ErrClosed) {
		t.Errorf("RestoreSnapshot after Close: err = %v, want ErrClosed", err)
	}
}

// TestReadSnapshotRejectsGarbage: wrong magic, wrong version, and a
// truncated tail all fail with descriptive errors.
func TestReadSnapshotRejectsGarbage(t *testing.T) {
	e, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	if _, err := ReadSnapshot(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("garbage magic accepted")
	}
	for _, cut := range []int{0, 8, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// TestRoundHookPanicSurfaced: a panicking RoundHook fails the run with
// ErrRoundHookPanic and leaves the engine usable — the regression test
// for hook panics wedging the barrier.
func TestRoundHookPanicSurfaced(t *testing.T) {
	const n = 4
	calls := 0
	e, err := New(n, Options{
		RoundHook: func(RoundStats) {
			calls++
			if calls == 2 {
				panic("hook boom")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err = e.Run(context.Background(), tokenRingNodes(n, 6))
	if !errors.Is(err, ErrRoundHookPanic) {
		t.Fatalf("err = %v, want ErrRoundHookPanic", err)
	}

	// The engine must survive: a fresh run on the same engine completes.
	calls = -1 << 30
	if _, err := e.Run(context.Background(), tokenRingNodes(n, 3)); err != nil {
		t.Fatalf("run after hook panic: %v", err)
	}
}

// panicNode panics in a chosen round.
type panicNode struct {
	id core.NodeID
	at core.Round
}

func (p *panicNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if r == p.at && p.id == 1 {
		panic("node boom")
	}
	if r < p.at+2 {
		return ctx.Send(core.NodeID((int(p.id)+1)%ctx.NumNodes()), 7)
	}
	return nil
}

// TestHandlerPanicSurfaced: a panicking node handler is recovered on
// the worker, surfaced as *HandlerPanicError with the node and round,
// and the warm engine survives to run the next node set.
func TestHandlerPanicSurfaced(t *testing.T) {
	const n = 6
	e, err := New(n, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &panicNode{id: core.NodeID(i), at: 2}
	}
	_, err = e.Run(context.Background(), nodes)
	var hp *HandlerPanicError
	if !errors.As(err, &hp) {
		t.Fatalf("err = %v, want *HandlerPanicError", err)
	}
	if hp.Node != 1 || hp.Round != 2 {
		t.Errorf("panic located at node %d round %d, want node 1 round 2", hp.Node, hp.Round)
	}
	if _, err := e.Run(context.Background(), tokenRingNodes(n, 3)); err != nil {
		t.Fatalf("run after handler panic: %v", err)
	}
}
