package engine

import (
	"encoding/json"
	"time"
)

// statsJSON is the stable wire shape of Stats: the cumulative scalars
// only, with the wall clock in integer nanoseconds. PerRound detail is
// deliberately not serialized — round-by-round streams belong to
// RoundHook taps, not to summary documents — so the encoding stays
// stable as per-round instrumentation grows.
type statsJSON struct {
	Rounds int    `json:"rounds"`
	Msgs   uint64 `json:"msgs"`
	Bytes  uint64 `json:"bytes"`
	WallNs int64  `json:"wall_ns"`
}

// MarshalJSON encodes the stats in the repository's one stable JSON
// shape — {"rounds","msgs","bytes","wall_ns"} — shared by ccbench
// kernel reports, ccnode rank reports, and ccserve's /stats responses.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		Rounds: s.Rounds,
		Msgs:   s.TotalMsgs,
		Bytes:  s.TotalBytes,
		WallNs: int64(s.Wall),
	})
}

// UnmarshalJSON decodes the stable shape written by MarshalJSON.
// PerRound is left nil: the wire format carries summaries only.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var sj statsJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	*s = Stats{
		Rounds:     sj.Rounds,
		TotalMsgs:  sj.Msgs,
		TotalBytes: sj.Bytes,
		Wall:       time.Duration(sj.WallNs),
	}
	return nil
}
