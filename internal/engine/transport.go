// The Transport interface is the seam between the engine's round loop
// and the fabric that completes a round's all-to-all exchange. The
// Dory–Parter round structure only assumes a synchronous all-to-all of
// B = O(log n)-bit words; everything below that — in-process slabs,
// sockets between processes — is a Transport implementation detail.
//
// Contract (enforced by the conformance suite in
// transportconformance_test.go):
//
//   - Partition(n) returns the contiguous node range [lo, hi) this
//     transport instance executes locally. The in-process transport
//     owns all of [0, n); a k-rank transport owns one ceil-partition
//     shard. Handlers run only for local nodes.
//   - Bind attaches the transport to one engine via a Binding and, for
//     multi-rank transports, establishes the peer mesh.
//   - Exchange completes round r: it moves every message queued this
//     round (locally and on every peer rank) into the engine's inbox
//     bank, swaps the banks, and returns the GLOBAL message count of
//     the round — the engine's quiescence condition, so every rank
//     exits its round loop at the same round. After Exchange, the
//     inbox bank must hold the complete round traffic for all n
//     destinations, per destination in source-ascending order with
//     each source's messages in send order — the exact order
//     MemTransport produces, which is what makes replay digest chains
//     bit-comparable across transports.
//   - AllGatherRows synchronizes a row-major n x rowLen result slab
//     across ranks at a harvest point (each rank contributes the rows
//     of its local node range). A no-op for single-rank transports.
//   - Abort tears the current round down loudly after a local error so
//     peer ranks blocked in Exchange fail instead of hanging. It is
//     not called for deterministic global events (quiescence,
//     ErrMaxRounds): every rank observes those on its own and exits in
//     lockstep.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// Gatherer is the result-synchronization face of a Transport: kernels
// that harvest row-major per-node state call AllGatherRows at pass
// boundaries so every rank holds the complete result. The clique
// session injects the session's transport into kernels implementing
// clique.TransportAware.
type Gatherer interface {
	// AllGatherRows synchronizes flat, a row-major slab of n rows of
	// rowLen int64 words each (len(flat) == n*rowLen): each rank
	// contributes rows [lo, hi) of its Partition and receives every
	// other rank's rows in place. Deterministic and synchronous: every
	// rank must call it the same number of times with the same shape.
	AllGatherRows(flat []int64, rowLen int) error
}

// Transport moves one round's messages between the node shards of one
// logical clique. Implementations must be driven by exactly one engine
// (Bind pairs them); all methods are called from the engine's run loop,
// never concurrently. See the package comment of this file for the
// full contract and transportconformance_test.go for its executable
// form.
type Transport interface {
	Gatherer
	// Name identifies the transport ("mem", "socket-tcp", ...).
	Name() string
	// Partition returns the local node range [lo, hi) for a clique of
	// n nodes. Called once by engine.New before Bind.
	Partition(n int) (lo, hi int)
	// Bind attaches the transport to the engine behind b and, for
	// multi-rank transports, performs the peer handshake.
	Bind(b *Binding) error
	// Exchange completes round r. localMsgs is the number of messages
	// queued locally this round; the return value is the global count
	// across all ranks (equal to localMsgs for single-rank
	// transports). On error the round is broken and the engine run
	// fails; the engine then calls Abort.
	Exchange(r core.Round, localMsgs uint64) (uint64, error)
	// Abort tears down the current exchange after a local engine error
	// (handler error, context cancellation, hook panic) so peers fail
	// loudly instead of deadlocking. Idempotent; a no-op for
	// single-rank transports.
	Abort(reason error)
	// Close releases sockets/listeners. The transport must not be used
	// afterwards; Close is idempotent.
	Close() error
}

// Binding is the engine-side surface a Transport drives. It exposes
// exactly the router operations a transport needs — scatter locally,
// drain the out-slabs, refill and swap the inbox banks — without
// exporting router internals.
type Binding struct {
	e *Engine
}

// N returns the clique size of the bound engine.
func (b *Binding) N() int { return b.e.n }

// Budget returns the bound engine's per-link bandwidth budget (for
// cross-rank handshake validation).
func (b *Binding) Budget() core.Budget { return b.e.opts.Budget }

// ParallelScatter scatters this round's out-slabs into the spare inbox
// bank using the engine's worker pool (shard s by worker s) — the
// in-process fast path. Must be followed by FinishRound.
func (b *Binding) ParallelScatter() { b.e.parallelScatter() }

// FinishRound swaps the inbox banks and advances the router's
// bandwidth epoch; call it exactly once per Exchange after the spare
// bank holds the round's complete traffic.
func (b *Binding) FinishRound() { b.e.rt.finishRound() }

// DrainOut streams every message queued in the local out-slabs this
// round — worker-major, shard-major, append order within a slab, which
// per destination is exactly the router's deterministic delivery order
// — and truncates the slabs. Used by transports that serialize the
// round instead of scattering in place.
func (b *Binding) DrainOut(emit func(dst, src core.NodeID, payload uint64)) {
	rt := b.e.rt
	for w := range rt.out {
		for s := range rt.out[w] {
			buf := rt.out[w][s]
			for i := range buf {
				m := &buf[i]
				emit(m.dst, m.src, m.payload)
			}
			if buf != nil {
				rt.out[w][s] = buf[:0]
			}
		}
	}
}

// ClearSpare truncates every destination's spare inbox ahead of
// Deliver refill (capacity retained).
func (b *Binding) ClearSpare() {
	rt := b.e.rt
	for d := range rt.spare {
		rt.spare[d] = rt.spare[d][:0]
	}
}

// Deliver appends one message to dst's spare inbox. Callers are
// responsible for global delivery order: streams must be replayed in
// rank order so per-destination order matches MemTransport.
func (b *Binding) Deliver(dst, src core.NodeID, payload uint64) {
	rt := b.e.rt
	rt.spare[dst] = append(rt.spare[dst], Message{Src: src, Payload: payload})
}

// MemTransport is the in-process transport: the engine's sharded slab
// router already implements the exchange, so Exchange is exactly the
// parallel scatter plus the bank swap the pre-Transport engine did
// inline — same code path, same 0 allocs/op. It is the default when
// Options.Transport is nil.
type MemTransport struct {
	b *Binding
}

// NewMemTransport returns the in-process transport.
func NewMemTransport() *MemTransport { return &MemTransport{} }

// Name identifies the transport.
func (t *MemTransport) Name() string { return "mem" }

// Partition owns the whole clique: [0, n).
func (t *MemTransport) Partition(n int) (lo, hi int) { return 0, n }

// Bind attaches the transport to its engine.
func (t *MemTransport) Bind(b *Binding) error {
	t.b = b
	return nil
}

// Exchange scatters the round's slabs in parallel and swaps the inbox
// banks. All traffic is local, so the global count is localMsgs.
func (t *MemTransport) Exchange(r core.Round, localMsgs uint64) (uint64, error) {
	t.b.ParallelScatter()
	t.b.FinishRound()
	return localMsgs, nil
}

// AllGatherRows is a no-op: a single rank already holds every row.
func (t *MemTransport) AllGatherRows(flat []int64, rowLen int) error { return nil }

// Abort is a no-op: there are no peers to notify.
func (t *MemTransport) Abort(reason error) {}

// Close is a no-op.
func (t *MemTransport) Close() error { return nil }

// RankBounds returns the contiguous node range [lo, hi) owned by rank
// of a clique of n nodes split across ranks processes — the same ceil
// partition the router uses for shard bounds, so rank boundaries and
// shard boundaries agree when they must.
func RankBounds(n, rank, ranks int) (lo, hi int) {
	lo = (rank*n + ranks - 1) / ranks
	hi = ((rank+1)*n + ranks - 1) / ranks
	return lo, hi
}

// ClusterFactory builds the ranks linked transports of one logical
// clique, index i being rank i's. Used by the transport registry so
// conformance tests and ccbench can instantiate any registered
// transport uniformly.
type ClusterFactory func(ranks int) ([]Transport, error)

var (
	transportMu  sync.Mutex
	transportReg = map[string]ClusterFactory{}
)

// RegisterTransport registers a transport cluster factory under name.
// Duplicate names panic (registration is an init-time event).
func RegisterTransport(name string, f ClusterFactory) {
	transportMu.Lock()
	defer transportMu.Unlock()
	if _, dup := transportReg[name]; dup {
		panic(fmt.Sprintf("engine: duplicate transport %q", name))
	}
	transportReg[name] = f
}

// NewTransportCluster builds the ranks linked transports of the named
// registered transport.
func NewTransportCluster(name string, ranks int) ([]Transport, error) {
	transportMu.Lock()
	f, ok := transportReg[name]
	transportMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown transport %q (have %v)", name, TransportNames())
	}
	if ranks < 1 {
		return nil, fmt.Errorf("engine: transport cluster needs >= 1 rank, got %d", ranks)
	}
	return f(ranks)
}

// TransportNames lists the registered transports, sorted.
func TransportNames() []string {
	transportMu.Lock()
	defer transportMu.Unlock()
	names := make([]string, 0, len(transportReg))
	for name := range transportReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterTransport("mem", func(ranks int) ([]Transport, error) {
		if ranks != 1 {
			return nil, fmt.Errorf("engine: mem transport is single-rank, got %d ranks", ranks)
		}
		return []Transport{NewMemTransport()}, nil
	})
	RegisterTransport("socket-tcp", func(ranks int) ([]Transport, error) {
		return LoopbackCluster(ranks, "tcp", 0)
	})
	RegisterTransport("socket-unix", func(ranks int) ([]Transport, error) {
		return LoopbackCluster(ranks, "unix", 0)
	})
}
