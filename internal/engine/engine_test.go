package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// ringNode forwards a token around the ring for a fixed number of hops.
type ringNode struct {
	n    int
	hops int
}

func (rn *ringNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if r == 0 && ctx.ID() == 0 {
		return ctx.Send(1%core.NodeID(rn.n), 1)
	}
	for _, m := range inbox {
		hop := m.Payload
		if int(hop) >= rn.hops {
			return nil
		}
		next := (ctx.ID() + 1) % core.NodeID(rn.n)
		return ctx.Send(next, hop+1)
	}
	return nil
}

func TestRingToken(t *testing.T) {
	const n, hops = 16, 40
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{n: n, hops: hops}
	}
	stats, err := RunOnce(nodes, Options{MaxRounds: hops + 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMsgs != hops {
		t.Errorf("TotalMsgs = %d, want %d", stats.TotalMsgs, hops)
	}
	// hops send-rounds plus the final quiet round.
	if stats.Rounds != hops+1 {
		t.Errorf("Rounds = %d, want %d", stats.Rounds, hops+1)
	}
	if stats.TotalBytes != hops*core.WordBits/8 {
		t.Errorf("TotalBytes = %d, want %d", stats.TotalBytes, hops*core.WordBits/8)
	}
	if len(stats.PerRound) != stats.Rounds {
		t.Errorf("len(PerRound) = %d, want %d", len(stats.PerRound), stats.Rounds)
	}
}

func TestMaxRounds(t *testing.T) {
	// Two nodes ping-pong forever; MaxRounds must stop them.
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			return ctx.Send(1, uint64(r))
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
	}
	stats, err := RunOnce(nodes, Options{MaxRounds: 12})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if stats.Rounds != 12 {
		t.Errorf("Rounds = %d, want 12", stats.Rounds)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r == 2 {
				return boom
			}
			return ctx.Send(0, 0)
		}),
	}
	_, err := RunOnce(nodes, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestEmptyEngine(t *testing.T) {
	stats, err := RunOnce(nil, Options{})
	if err != nil || stats.Rounds != 0 {
		t.Fatalf("empty engine: stats=%+v err=%v", stats, err)
	}
}

// TestOptionsValidate: negative worker/round counts and sub-word
// budgets must be rejected at New with a descriptive error instead of
// slipping through to weird runtime behavior.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring the error must mention
	}{
		{"negative workers", Options{Workers: -3}, "Workers"},
		{"negative max rounds", Options{MaxRounds: -1}, "MaxRounds"},
		{"budget below one word", Options{Budget: core.Budget{BitsPerLink: 32, MsgBits: 64}}, "Budget"},
		{"budget with zero msg bits", Options{Budget: core.Budget{BitsPerLink: 64}}, "Budget"},
		{"budget with negative msg bits", Options{Budget: core.Budget{BitsPerLink: 64, MsgBits: -8}}, "Budget"},
	}
	for _, tc := range cases {
		if err := tc.opts.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.opts)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := New(4, tc.opts); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.opts)
		}
	}
	// The zero value and explicit sane values must still pass.
	for _, ok := range []Options{{}, {Workers: 2, MaxRounds: 10}, {Budget: core.DefaultBudget(4)}} {
		if err := ok.Validate(); err != nil {
			t.Errorf("Validate rejected valid options %+v: %v", ok, err)
		}
	}
	if _, err := New(-1, Options{}); err == nil {
		t.Error("New accepted a negative clique size")
	}
}

// TestRunContextCancellation: a node set that never quiesces must be
// stopped at the round barrier by the context deadline, returning
// ctx.Err() with valid partial stats.
func TestRunContextCancellation(t *testing.T) {
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			return ctx.Send(1, uint64(r))
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
	}
	e, err := New(len(nodes), Options{MaxRounds: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	stats, err := e.Run(ctx, nodes)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if stats.Rounds == 0 {
		t.Error("no rounds executed before the deadline hit")
	}
	// A pre-cancelled context stops the run before round 0.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	stats, err = e.Run(pre, nodes)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if stats.Rounds != 0 {
		t.Errorf("pre-cancelled run executed %d rounds, want 0", stats.Rounds)
	}
	// The engine must stay usable after cancellation: a fresh run on
	// the same warm workers completes normally.
	done := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r == 0 {
				return ctx.Send(1, 42)
			}
			return nil
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			for _, m := range inbox {
				if m.Payload != 42 {
					t.Errorf("stale payload %d leaked into the next run", m.Payload)
				}
			}
			return nil
		}),
	}
	stats, err = e.Run(context.Background(), done)
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if stats.TotalMsgs != 1 {
		t.Errorf("TotalMsgs = %d, want 1", stats.TotalMsgs)
	}
}

// TestEngineReuseMatchesFresh: repeated Run calls on one warm engine
// must produce the same results and stats as fresh engines, and a run
// after Close must fail with ErrClosed.
func TestEngineReuseMatchesFresh(t *testing.T) {
	const n, hops = 16, 40
	build := func() []Node {
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &ringNode{n: n, hops: hops}
		}
		return nodes
	}
	e, err := New(n, Options{MaxRounds: hops + 8})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		stats, err := e.Run(context.Background(), build())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.TotalMsgs != hops || stats.Rounds != hops+1 {
			t.Fatalf("trial %d: msgs=%d rounds=%d, want %d/%d",
				trial, stats.TotalMsgs, stats.Rounds, hops, hops+1)
		}
	}
	e.Close()
	if _, err := e.Run(context.Background(), build()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	e.Close() // idempotent
}

// TestRoundHookStreams: the hook must observe every executed round, in
// order, with stats matching the run's PerRound record.
func TestRoundHookStreams(t *testing.T) {
	const n, hops = 8, 12
	var seen []RoundStats
	opts := Options{
		MaxRounds: hops + 8,
		RoundHook: func(rs RoundStats) { seen = append(seen, rs) },
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{n: n, hops: hops}
	}
	stats, err := RunOnce(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != stats.Rounds {
		t.Fatalf("hook saw %d rounds, want %d", len(seen), stats.Rounds)
	}
	for i, rs := range seen {
		if rs.Round != core.Round(i) || rs.Msgs != stats.PerRound[i].Msgs {
			t.Fatalf("hook round %d = %+v, PerRound = %+v", i, rs, stats.PerRound[i])
		}
	}
}

// echoNode broadcasts a deterministic function of its inbox; used to
// check that inbox contents (including ordering) are identical across
// runs and worker counts.
type echoNode struct {
	n     int
	trace map[core.NodeID][]string
	mu    *sync.Mutex
}

func (en *echoNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	en.mu.Lock()
	en.trace[ctx.ID()] = append(en.trace[ctx.ID()], fmt.Sprint(r, inbox))
	en.mu.Unlock()
	if int(r) >= 4 {
		return nil
	}
	id := int(ctx.ID())
	for k := 1; k <= 3; k++ {
		dst := core.NodeID((id + k*7) % en.n)
		if dst == ctx.ID() {
			continue
		}
		if err := ctx.Send(dst, uint64(id*1000+int(r)*10+k)); err != nil {
			return err
		}
	}
	return nil
}

func runEcho(t *testing.T, n, workers int) map[core.NodeID][]string {
	t.Helper()
	var mu sync.Mutex
	trace := map[core.NodeID][]string{}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &echoNode{n: n, trace: trace, mu: &mu}
	}
	if _, err := RunOnce(nodes, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestDeterministicInboxOrder: because workers append in node-ID order
// and the scatter drains worker buffers in index order, inbox contents
// are a pure function of the algorithm — independent of scheduling and
// of the worker count.
func TestDeterministicInboxOrder(t *testing.T) {
	base := runEcho(t, 53, 1)
	for _, workers := range []int{2, 3, 8} {
		got := runEcho(t, 53, workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("inbox traces differ between 1 worker and %d workers", workers)
		}
	}
	again := runEcho(t, 53, 8)
	if !reflect.DeepEqual(base, again) {
		t.Fatal("inbox traces differ between identical runs")
	}
}
