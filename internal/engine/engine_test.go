package engine

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// ringNode forwards a token around the ring for a fixed number of hops.
type ringNode struct {
	n    int
	hops int
}

func (rn *ringNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if r == 0 && ctx.ID() == 0 {
		return ctx.Send(1%core.NodeID(rn.n), 1)
	}
	for _, m := range inbox {
		hop := m.Payload
		if int(hop) >= rn.hops {
			return nil
		}
		next := (ctx.ID() + 1) % core.NodeID(rn.n)
		return ctx.Send(next, hop+1)
	}
	return nil
}

func TestRingToken(t *testing.T) {
	const n, hops = 16, 40
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{n: n, hops: hops}
	}
	stats, err := New(nodes, Options{MaxRounds: hops + 8}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMsgs != hops {
		t.Errorf("TotalMsgs = %d, want %d", stats.TotalMsgs, hops)
	}
	// hops send-rounds plus the final quiet round.
	if stats.Rounds != hops+1 {
		t.Errorf("Rounds = %d, want %d", stats.Rounds, hops+1)
	}
	if stats.TotalBytes != hops*core.WordBits/8 {
		t.Errorf("TotalBytes = %d, want %d", stats.TotalBytes, hops*core.WordBits/8)
	}
	if len(stats.PerRound) != stats.Rounds {
		t.Errorf("len(PerRound) = %d, want %d", len(stats.PerRound), stats.Rounds)
	}
}

func TestMaxRounds(t *testing.T) {
	// Two nodes ping-pong forever; MaxRounds must stop them.
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			return ctx.Send(1, uint64(r))
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
	}
	stats, err := New(nodes, Options{MaxRounds: 12}).Run()
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if stats.Rounds != 12 {
		t.Errorf("Rounds = %d, want 12", stats.Rounds)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r == 2 {
				return boom
			}
			return ctx.Send(0, 0)
		}),
	}
	_, err := New(nodes, Options{}).Run()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestEmptyEngine(t *testing.T) {
	stats, err := New(nil, Options{}).Run()
	if err != nil || stats.Rounds != 0 {
		t.Fatalf("empty engine: stats=%+v err=%v", stats, err)
	}
}

// echoNode broadcasts a deterministic function of its inbox; used to
// check that inbox contents (including ordering) are identical across
// runs and worker counts.
type echoNode struct {
	n     int
	trace map[core.NodeID][]string
	mu    *sync.Mutex
}

func (en *echoNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	en.mu.Lock()
	en.trace[ctx.ID()] = append(en.trace[ctx.ID()], fmt.Sprint(r, inbox))
	en.mu.Unlock()
	if int(r) >= 4 {
		return nil
	}
	id := int(ctx.ID())
	for k := 1; k <= 3; k++ {
		dst := core.NodeID((id + k*7) % en.n)
		if dst == ctx.ID() {
			continue
		}
		if err := ctx.Send(dst, uint64(id*1000+int(r)*10+k)); err != nil {
			return err
		}
	}
	return nil
}

func runEcho(t *testing.T, n, workers int) map[core.NodeID][]string {
	t.Helper()
	var mu sync.Mutex
	trace := map[core.NodeID][]string{}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &echoNode{n: n, trace: trace, mu: &mu}
	}
	if _, err := New(nodes, Options{Workers: workers}).Run(); err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestDeterministicInboxOrder: because workers append in node-ID order
// and the scatter drains worker buffers in index order, inbox contents
// are a pure function of the algorithm — independent of scheduling and
// of the worker count.
func TestDeterministicInboxOrder(t *testing.T) {
	base := runEcho(t, 53, 1)
	for _, workers := range []int{2, 3, 8} {
		got := runEcho(t, 53, workers)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("inbox traces differ between 1 worker and %d workers", workers)
		}
	}
	again := runEcho(t, 53, 8)
	if !reflect.DeepEqual(base, again) {
		t.Fatal("inbox traces differ between identical runs")
	}
}
