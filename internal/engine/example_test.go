package engine_test

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// ringNode forwards a token once around a small ring: node 0 launches
// it in round 0, and whoever holds it passes it to the next node until
// it returns to the origin.
type ringNode struct {
	n    int
	hops uint64
}

func (nd *ringNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	if r == 0 && ctx.ID() == 0 {
		return ctx.Send(1, 1) // launch the token with one hop on it
	}
	for _, m := range inbox {
		nd.hops = m.Payload
		next := (int(ctx.ID()) + 1) % nd.n
		if int(ctx.ID()) == 0 {
			return nil // token came home; send nothing and quiesce
		}
		return ctx.Send(core.NodeID(next), m.Payload+1)
	}
	return nil
}

// Example runs a 4-node clique to quiescence: the engine executes
// synchronous rounds, delivers each round's sends at the start of the
// next round, and stops on the first all-quiet round.
func Example() {
	const n = 4
	nodes := make([]engine.Node, n)
	state := make([]ringNode, n)
	for i := range state {
		state[i] = ringNode{n: n}
		nodes[i] = &state[i]
	}
	stats, err := engine.RunOnce(nodes, engine.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds executed:", stats.Rounds)
	fmt.Println("words routed:", stats.TotalMsgs)
	fmt.Println("token hops at origin:", state[0].hops)
	// Output:
	// rounds executed: 5
	// words routed: 4
	// token hops at origin: 4
}
