package engine

import (
	"errors"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// obNode drains a pre-filled Outbox via Flush each round and records
// everything it receives.
type obNode struct {
	ob   *Outbox
	got  map[core.NodeID][]uint64
	over bool // if set, burn the whole link budget to dst 1 before flushing
}

func (nd *obNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	for _, m := range inbox {
		if nd.got == nil {
			nd.got = make(map[core.NodeID][]uint64)
		}
		nd.got[m.Src] = append(nd.got[m.Src], m.Payload)
	}
	if nd.ob == nil {
		return nil
	}
	if nd.over && ctx.ID() == 0 {
		for k := 0; k < ctx.LinkMsgCap(); k++ {
			if err := ctx.Send(1, 0xdead); err != nil {
				return err
			}
		}
	}
	return nd.ob.Flush(ctx)
}

// TestOutboxDrainsUnderBudget queues far more words per destination
// than one round's budget and checks that every word arrives, in order,
// without any BandwidthError.
func TestOutboxDrainsUnderBudget(t *testing.T) {
	const n = 8
	const perDst = 10
	nodes := make([]Node, n)
	state := make([]obNode, n)
	ob := NewOutbox(n)
	for dst := 1; dst < n; dst++ {
		for k := 0; k < perDst; k++ {
			ob.Push(core.NodeID(dst), uint64(dst*100+k))
		}
	}
	want := ob.Pending()
	if want != (n-1)*perDst {
		t.Fatalf("Pending = %d, want %d", want, (n-1)*perDst)
	}
	state[0].ob = ob
	for i := range state {
		nodes[i] = &state[i]
	}
	stats, err := RunOnce(nodes, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ob.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", ob.Pending())
	}
	if stats.TotalMsgs != uint64(want) {
		t.Fatalf("TotalMsgs = %d, want %d", stats.TotalMsgs, want)
	}
	// One message per link per round => draining perDst words per
	// destination needs at least perDst send-rounds.
	if stats.Rounds < perDst {
		t.Fatalf("Rounds = %d, want >= %d (budget-paced drain)", stats.Rounds, perDst)
	}
	for dst := 1; dst < n; dst++ {
		got := state[dst].got[0]
		if len(got) != perDst {
			t.Fatalf("dst %d received %d words, want %d", dst, len(got), perDst)
		}
		for k, w := range got {
			if w != uint64(dst*100+k) {
				t.Fatalf("dst %d word %d = %d, want %d (order violated)", dst, k, w, dst*100+k)
			}
		}
	}
}

// TestOutboxSurfacesBandwidthError checks that when the node spends its
// link budget outside the Outbox, Flush surfaces the router's
// *BandwidthError instead of panicking or silently dropping.
func TestOutboxSurfacesBandwidthError(t *testing.T) {
	const n = 4
	nodes := make([]Node, n)
	state := make([]obNode, n)
	ob := NewOutbox(n)
	ob.Push(1, 7)
	state[0].ob = ob
	state[0].over = true
	for i := range state {
		nodes[i] = &state[i]
	}
	_, err := RunOnce(nodes, Options{})
	var bwe *BandwidthError
	if !errors.As(err, &bwe) {
		t.Fatalf("Run error = %v, want *BandwidthError", err)
	}
	if ob.Pending() != 1 {
		t.Fatalf("Pending = %d after failed flush, want 1 (word retained)", ob.Pending())
	}
}

// TestOutboxPushSharedBroadcast streams one shared slice to every other
// node without copying and checks complete in-order delivery, plus the
// documented ordering: copied words before shared segments.
func TestOutboxPushSharedBroadcast(t *testing.T) {
	const n = 6
	row := make([]uint64, 9)
	for i := range row {
		row[i] = uint64(1000 + i)
	}
	nodes := make([]Node, n)
	state := make([]obNode, n)
	ob := NewOutbox(n)
	for dst := 1; dst < n; dst++ {
		ob.Push(core.NodeID(dst), 7) // copied word, delivered first
		ob.PushShared(core.NodeID(dst), row)
	}
	wantTotal := (n - 1) * (1 + len(row))
	if ob.Pending() != wantTotal {
		t.Fatalf("Pending = %d, want %d", ob.Pending(), wantTotal)
	}
	state[0].ob = ob
	for i := range state {
		nodes[i] = &state[i]
	}
	stats, err := RunOnce(nodes, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.TotalMsgs != uint64(wantTotal) || ob.Pending() != 0 {
		t.Fatalf("TotalMsgs = %d (pending %d), want %d (0)", stats.TotalMsgs, ob.Pending(), wantTotal)
	}
	for dst := 1; dst < n; dst++ {
		got := state[dst].got[0]
		if len(got) != 1+len(row) {
			t.Fatalf("dst %d received %d words, want %d", dst, len(got), 1+len(row))
		}
		if got[0] != 7 {
			t.Fatalf("dst %d word 0 = %d, want copied word 7 first", dst, got[0])
		}
		for i, w := range got[1:] {
			if w != row[i] {
				t.Fatalf("dst %d shared word %d = %d, want %d", dst, i, w, row[i])
			}
		}
	}
}

// TestOutboxPushSharedSegments queues multiple shared segments for one
// destination and checks FIFO across segments under pacing.
func TestOutboxPushSharedSegments(t *testing.T) {
	const n = 4
	nodes := make([]Node, n)
	state := make([]obNode, n)
	ob := NewOutbox(n)
	ob.PushShared(2, []uint64{1, 2, 3})
	ob.PushShared(2, nil) // no-op
	ob.PushShared(2, []uint64{4, 5})
	if ob.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", ob.Pending())
	}
	state[0].ob = ob
	for i := range state {
		nodes[i] = &state[i]
	}
	if _, err := RunOnce(nodes, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := state[2].got[0]
	for i, w := range got {
		if w != uint64(i+1) {
			t.Fatalf("word %d = %d, want %d (FIFO across segments)", i, w, i+1)
		}
	}
	if len(got) != 5 {
		t.Fatalf("received %d words, want 5", len(got))
	}
}

// TestOutboxReuse pushes, drains, and pushes again to exercise the
// compaction path.
func TestOutboxReuse(t *testing.T) {
	ob := NewOutbox(4)
	ob.Push(2, 1)
	ob.Push(2, 2)
	if ob.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", ob.Pending())
	}
	// Drain manually via the internal bookkeeping used by Flush.
	ob.head[2] = 2
	ob.total = 0
	ob.active = ob.active[:0]
	ob.Push(2, 3)
	if ob.Pending() != 1 || len(ob.active) != 1 {
		t.Fatalf("after reuse: Pending=%d active=%d, want 1/1", ob.Pending(), len(ob.active))
	}
	if got := ob.pending[2][ob.head[2]]; got != 3 {
		t.Fatalf("head word = %d, want 3", got)
	}
}

// TestOutboxFlushesExactlyLinkCapPerRound is the off-by-one boundary
// test at the bandwidth cap: with a budget of exactly 3 message words
// per link per round, a Flush-driven drain must send exactly
// LinkMsgCap() words on every full round — never cap-1 (a pacing
// undershoot) and never cap+1 (a budget violation) — with the
// remainder, and only the remainder, in the final send round. Both the
// exact-multiple and the one-extra-word queue lengths are covered.
func TestOutboxFlushesExactlyLinkCapPerRound(t *testing.T) {
	const capWords = 3
	budget := core.Budget{BitsPerLink: capWords * core.WordBits, MsgBits: core.WordBits}
	for _, tc := range []struct {
		queued    int
		wantMsgs  []uint64 // per-round message counts, including the quiet round
		wantTotal int
	}{
		{queued: 3 * capWords, wantMsgs: []uint64{capWords, capWords, capWords, 0}},
		{queued: 3*capWords + 1, wantMsgs: []uint64{capWords, capWords, capWords, 1, 0}},
		{queued: capWords - 1, wantMsgs: []uint64{capWords - 1, 0}},
	} {
		const n = 2
		nodes := make([]Node, n)
		state := make([]obNode, n)
		ob := NewOutbox(n)
		for k := 0; k < tc.queued; k++ {
			ob.Push(1, uint64(k))
		}
		state[0].ob = ob
		for i := range state {
			nodes[i] = &state[i]
		}
		stats, err := RunOnce(nodes, Options{Budget: budget})
		if err != nil {
			t.Fatalf("queued=%d: %v", tc.queued, err)
		}
		if got := state[0].ob.Pending(); got != 0 {
			t.Fatalf("queued=%d: %d words still pending", tc.queued, got)
		}
		if stats.Rounds != len(tc.wantMsgs) {
			t.Fatalf("queued=%d: %d rounds, want %d", tc.queued, stats.Rounds, len(tc.wantMsgs))
		}
		for r, want := range tc.wantMsgs {
			if got := stats.PerRound[r].Msgs; got != want {
				t.Fatalf("queued=%d: round %d sent %d words, want exactly %d",
					tc.queued, r, got, want)
			}
		}
		// Everything arrived, in order.
		got := state[1].got[0]
		if len(got) != tc.queued {
			t.Fatalf("queued=%d: delivered %d", tc.queued, len(got))
		}
		for k, w := range got {
			if w != uint64(k) {
				t.Fatalf("queued=%d: word %d = %d (order violated)", tc.queued, k, w)
			}
		}
	}
}
