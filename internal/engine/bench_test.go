package engine

import (
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// BenchmarkRouter measures the router hot path in isolation: send with
// bandwidth accounting + sharded scatter + round flip. One op is a full
// round in which every node sends to `fanout` destinations. Steady
// state must be zero allocations per op (and therefore per message):
// slabs and inbox rows retain capacity across rounds.
func BenchmarkRouter(b *testing.B) {
	const (
		n      = 256
		shards = 8
		fanout = 16
	)
	rt := newRouter(n, 1, shards, core.DefaultBudget(n))
	round := func() {
		for src := 0; src < n; src++ {
			for k := 1; k <= fanout; k++ {
				dst := core.NodeID((src + k) % n)
				if err := rt.send(0, core.NodeID(src), dst, uint64(src)); err != nil {
					b.Fatal(err)
				}
			}
		}
		for s := 0; s < rt.shards; s++ {
			rt.scatterShard(s)
		}
		rt.finishRound()
	}
	// Warm up so every slab and inbox row reaches steady-state capacity.
	for i := 0; i < 3; i++ {
		round()
	}
	b.ReportAllocs()
	b.SetBytes(int64(n * fanout * 16)) // outMsg is 16 bytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
	b.StopTimer()
	rt.release()
	msgs := float64(n * fanout)
	b.ReportMetric(msgs*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(msgs*float64(b.N)), "ns/msg")
}

// floodBenchNode sends to a fixed fanout of ring successors each round.
type floodBenchNode struct {
	n, fanout, rounds int
}

func (fn *floodBenchNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if int(r) >= fn.rounds {
		return nil
	}
	id := int(ctx.ID())
	for k := 1; k <= fn.fanout; k++ {
		if err := ctx.Send(core.NodeID((id+k)%fn.n), uint64(id)); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkEngineFlood measures the full engine (parallel handlers,
// barriers, scatter, stats) under an all-nodes-flooding workload.
func BenchmarkEngineFlood(b *testing.B) {
	const (
		n      = 256
		fanout = 32
		rounds = 16
	)
	b.ReportAllocs()
	var totalMsgs uint64
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, n)
		for j := range nodes {
			nodes[j] = &floodBenchNode{n: n, fanout: fanout, rounds: rounds}
		}
		stats, err := RunOnce(nodes, Options{MaxRounds: rounds + 2})
		if err != nil {
			b.Fatal(err)
		}
		totalMsgs += stats.TotalMsgs
	}
	b.ReportMetric(float64(totalMsgs)/b.Elapsed().Seconds(), "msgs/s")
}
