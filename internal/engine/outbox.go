package engine

import "github.com/paper-repo-growth/doryp20/internal/core"

// Outbox is the batched-exchange helper for all-to-all communication
// patterns: a node queues an arbitrary multiset of (destination, word)
// messages and drains it across as many rounds as the bandwidth budget
// requires, sending at most the per-link message cap to each
// destination per round. This is the balanced (Lenzen-style) pacing
// that lets higher layers — the sparse matrix products in
// internal/matmul foremost — express "send this whole row to these
// nodes" without ever tripping a *BandwidthError.
//
// Words are queued two ways: Push copies individual words into
// per-destination buffers, and PushShared enqueues a borrowed read-only
// slice by reference — the broadcast case (the same row streamed to
// many destinations) then costs O(1) memory per destination instead of
// one copy each. For a given destination, copied words are delivered
// in Push order, then shared segments in PushShared order.
//
// An Outbox belongs to exactly one node and must only be touched from
// that node's Round handler (the same single-goroutine-per-round
// discipline the engine already imposes on node state).
type Outbox struct {
	// pending[dst] holds copied words for dst; head[dst] indexes the
	// first unsent one. Slices retain capacity across drain/refill
	// cycles, so steady-state Push/Flush does not allocate.
	pending [][]uint64
	head    []int
	// shared[dst] is a FIFO of borrowed segments; soff[dst] indexes the
	// first unsent word of the front segment. Callers must not mutate a
	// segment until the Outbox has drained it.
	shared [][][]uint64
	soff   []int
	// active lists the destinations with unsent words, each exactly
	// once.
	active []core.NodeID
	total  int
}

// NewOutbox returns an empty Outbox for a clique of n nodes.
func NewOutbox(n int) *Outbox {
	return &Outbox{
		pending: make([][]uint64, n),
		head:    make([]int, n),
		shared:  make([][][]uint64, n),
		soff:    make([]int, n),
	}
}

// hasUnsent reports whether dst still has queued words (and therefore
// sits on the active list).
func (o *Outbox) hasUnsent(dst core.NodeID) bool {
	return o.head[dst] < len(o.pending[dst]) || len(o.shared[dst]) > 0
}

// activate compacts dst's drained buffers and puts it on the active
// list. Callers must have checked !hasUnsent(dst).
func (o *Outbox) activate(dst core.NodeID) {
	o.pending[dst] = o.pending[dst][:0]
	o.head[dst] = 0
	o.active = append(o.active, dst)
}

// Push queues one word for dst (copied). It panics on an out-of-range
// destination; self-sends are the caller's responsibility to avoid
// (the router rejects them at Flush time).
func (o *Outbox) Push(dst core.NodeID, word uint64) {
	if !o.hasUnsent(dst) {
		o.activate(dst)
	}
	o.pending[dst] = append(o.pending[dst], word)
	o.total++
}

// PushShared queues words for dst by reference, without copying — the
// right call when broadcasting one large slice (a matrix row) to many
// destinations. The slice must stay unmodified until the Outbox drains;
// it is read, never written. Shared segments for a destination are
// delivered after any copied words queued via Push.
func (o *Outbox) PushShared(dst core.NodeID, words []uint64) {
	if len(words) == 0 {
		return
	}
	if !o.hasUnsent(dst) {
		o.activate(dst)
	}
	o.shared[dst] = append(o.shared[dst], words)
	o.total += len(words)
}

// Pending returns the number of queued, not-yet-sent words.
func (o *Outbox) Pending() int { return o.total }

// drainDst sends up to budget words to dst — copied words first, then
// shared segments. It returns the number sent and the first send error.
func (o *Outbox) drainDst(ctx *Ctx, dst core.NodeID, budget int) (int, error) {
	sent := 0
	q, h := o.pending[dst], o.head[dst]
	for h < len(q) && sent < budget {
		if err := ctx.Send(dst, q[h]); err != nil {
			o.head[dst] = h
			return sent, err
		}
		h++
		sent++
	}
	o.head[dst] = h
	for len(o.shared[dst]) > 0 && sent < budget {
		seg := o.shared[dst][0]
		off := o.soff[dst]
		for off < len(seg) && sent < budget {
			if err := ctx.Send(dst, seg[off]); err != nil {
				o.soff[dst] = off
				return sent, err
			}
			off++
			sent++
		}
		if off == len(seg) {
			// Pop the finished segment, releasing the reference.
			o.shared[dst][0] = nil
			o.shared[dst] = o.shared[dst][1:]
			o.soff[dst] = 0
		} else {
			o.soff[dst] = off
		}
	}
	return sent, nil
}

// Flush sends up to the per-link message cap to every destination with
// queued words, in one engine round. Call it once per Round handler
// invocation until Pending reaches zero. Because Flush never exceeds
// the cap, it cannot provoke a *BandwidthError of its own — but it can
// surface one if the node already spent link budget this round outside
// the Outbox. On error the Outbox bookkeeping stays consistent: words
// accepted by the router are dequeued, the rest remain pending.
func (o *Outbox) Flush(ctx *Ctx) error {
	if o.total == 0 {
		return nil
	}
	capMsgs := ctx.LinkMsgCap()
	kept := o.active[:0]
	for i, dst := range o.active {
		sent, err := o.drainDst(ctx, dst, capMsgs)
		o.total -= sent
		if o.hasUnsent(dst) {
			kept = append(kept, dst)
		} else {
			o.pending[dst] = o.pending[dst][:0]
			o.head[dst] = 0
		}
		if err != nil {
			// Preserve the untouched tail of the active list. kept and
			// o.active share storage; copy-forward via append is safe.
			kept = append(kept, o.active[i+1:]...)
			o.active = kept
			return err
		}
	}
	o.active = kept
	return nil
}
