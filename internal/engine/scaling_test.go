// GOMAXPROCS scaling guards: the router's zero-allocation steady state
// and the engine's flood throughput must hold at 1, 2, and 4 procs —
// parallelism must never cost allocations, and adding workers must
// never collapse throughput.
package engine

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// scalingProcs is the proc ladder both guards walk.
var scalingProcs = []int{1, 2, 4}

// routerRound drives one full router round of the BenchmarkRouter
// workload: every node sends to fanout ring successors, all shards
// scatter, banks flip.
func routerRound(t *testing.T, rt *router, n, fanout int) {
	t.Helper()
	for src := 0; src < n; src++ {
		for k := 1; k <= fanout; k++ {
			dst := core.NodeID((src + k) % n)
			if err := rt.send(0, core.NodeID(src), dst, uint64(src)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for s := 0; s < rt.shards; s++ {
		rt.scatterShard(s)
	}
	rt.finishRound()
}

// TestRouterZeroAllocsAcrossProcs pins the router hot path's steady
// state at zero allocations per round at every rung of the proc
// ladder: slabs and inbox rows must retain capacity regardless of how
// much parallelism surrounds them.
func TestRouterZeroAllocsAcrossProcs(t *testing.T) {
	const (
		n      = 256
		shards = 8
		fanout = 16
	)
	for _, procs := range scalingProcs {
		t.Run(fmt.Sprintf("procs-%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			rt := newRouter(n, 1, shards, core.DefaultBudget(n))
			defer rt.release()
			for i := 0; i < 3; i++ {
				routerRound(t, rt, n, fanout) // reach steady-state capacity
			}
			allocs := testing.AllocsPerRun(10, func() {
				routerRound(t, rt, n, fanout)
			})
			if allocs != 0 {
				t.Errorf("router round allocates %.1f times at GOMAXPROCS=%d, want 0", allocs, procs)
			}
		})
	}
}

// floodThroughput measures the flood workload's messages per second at
// the given GOMAXPROCS, best of three runs to shave scheduler noise.
func floodThroughput(t *testing.T, procs int) float64 {
	t.Helper()
	const (
		n      = 256
		fanout = 32
		rounds = 16
	)
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	best := 0.0
	for i := 0; i < 3; i++ {
		nodes := make([]Node, n)
		for j := range nodes {
			nodes[j] = &floodBenchNode{n: n, fanout: fanout, rounds: rounds}
		}
		stats, err := RunOnce(nodes, Options{MaxRounds: rounds + 2})
		if err != nil {
			t.Fatal(err)
		}
		if secs := stats.Wall.Seconds(); secs > 0 {
			if rate := float64(stats.TotalMsgs) / secs; rate > best {
				best = rate
			}
		}
	}
	if best == 0 {
		t.Fatal("flood throughput measured as zero")
	}
	return best
}

// TestFloodThroughputNonDegrading checks that adding workers never
// collapses engine throughput: msgs/sec at 2 and 4 procs must stay
// within a generous slack of the single-proc rate. This is a
// regression tripwire for barrier or scatter serialization, not a
// speedup assertion — shared CI runners are too noisy to demand
// linear scaling.
func TestFloodThroughputNonDegrading(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("single-CPU host: scaling comparison is meaningless")
	}
	base := floodThroughput(t, scalingProcs[0])
	for _, procs := range scalingProcs[1:] {
		rate := floodThroughput(t, procs)
		if rate < base*0.35 {
			t.Errorf("flood throughput at GOMAXPROCS=%d is %.0f msgs/s, degraded beyond slack from %.0f at GOMAXPROCS=1",
				procs, rate, base)
		}
	}
}
