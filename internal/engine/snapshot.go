// Snapshot/RestoreSnapshot: crash-safe capture of an Engine's complete
// between-rounds state. The Congested Clique's synchronous barrier is
// the one point where the global state is closed under serialization:
// every handler for round r-1 has returned, every message it sent sits
// in the double-buffered inbox bank for round r, and nothing is in
// flight. A snapshot taken there — round number, inbox bank, per-worker
// send counters, cumulative stats, and the chained per-round FNV replay
// digests — is therefore sufficient to continue the run bit-identically
// on any engine of the same shape (clique size and bandwidth budget),
// which RestoreSnapshot + RunBounded do. The serialized form is the
// versioned binary format of internal/ckptio with an integrity trailer.
package engine

import (
	"fmt"
	"io"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
)

// digestSeed is the initial value of the per-run replay digest chain.
const digestSeed = ckptio.FNVOffset

// fnv1aWord folds one 64-bit word into a running FNV-1a hash,
// little-endian byte order, without allocating.
func fnv1aWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// snapshotMagic and snapshotVersion stamp the serialized snapshot
// format; ReadSnapshot rejects mismatches with a descriptive error
// instead of decoding garbage.
const (
	snapshotMagic   uint64 = 0x43435350_30303153 // "CCSP001S"
	snapshotVersion uint64 = 1
)

// Snapshot is an Engine's complete state at a round barrier: everything
// RunBounded needs to continue the run from round Round as if it had
// never stopped. Snapshots are plain data — they stay valid after the
// engine that produced them advances or closes — and serialize with
// WriteTo / ReadSnapshot.
type Snapshot struct {
	// N is the clique size the snapshot was taken at; RestoreSnapshot
	// rejects engines of a different size.
	N int
	// Budget is the bandwidth budget in force; RestoreSnapshot rejects
	// engines with a different budget (the round-by-round schedule, and
	// with it the replay digests, depend on it).
	Budget core.Budget
	// Round is the next round to execute.
	Round core.Round
	// Sent holds the per-worker cumulative send counters; their sum
	// feeds the quiescence detector and the per-round message deltas.
	Sent []uint64
	// Stats are the cumulative run stats up to the barrier (PerRound
	// detail is not carried; Digests preserves the replay chain).
	Stats Stats
	// Inbox is the message bank awaiting delivery in round Round, in
	// the router's deterministic per-destination order.
	Inbox [][]Message
	// Digests is the chained per-round FNV-1a replay digest sequence of
	// rounds 0..Round-1 (empty unless Options.RecordDigests was set).
	Digests []uint64
}

// Snapshot captures the engine's state at the current round barrier.
// The engine API is synchronous, so any call site outside a running
// round — between Run calls, after an ErrMaxRounds or cancellation
// return, or inside Options.RoundHook (which runs exactly at the
// barrier) — is a valid barrier. The returned Snapshot deep-copies all
// state and never aliases engine internals.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if e.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{
		N:       e.n,
		Budget:  e.opts.Budget,
		Round:   e.round,
		Sent:    make([]uint64, len(e.ctxs)),
		Inbox:   make([][]Message, e.n),
		Digests: append([]uint64(nil), e.digests...),
		Stats:   e.curStats,
	}
	for i, c := range e.ctxs {
		s.Sent[i] = c.sent
	}
	for d := 0; d < e.n; d++ {
		if box := e.rt.inbox[d]; len(box) > 0 {
			s.Inbox[d] = append([]Message(nil), box...)
		}
	}
	return s, nil
}

// RestoreSnapshot loads s into the engine and arms the next RunBounded
// to continue from s.Round (see RunBounded). The engine must have the
// same clique size and budget the snapshot was taken with; mismatches
// are rejected with a descriptive error and leave the engine untouched.
// The caller supplies the node set to the subsequent RunBounded — node
// handler state is the kernel layer's to checkpoint (see
// clique.Checkpointable); handlers whose behavior is a pure function of
// delivered messages resume exactly.
func (e *Engine) RestoreSnapshot(s *Snapshot) error {
	if e.closed {
		return ErrClosed
	}
	if s.N != e.n {
		return fmt.Errorf("engine: snapshot of a clique sized %d cannot restore into an engine sized %d", s.N, e.n)
	}
	if s.Budget != e.opts.Budget {
		return fmt.Errorf("engine: snapshot budget %+v does not match engine budget %+v", s.Budget, e.opts.Budget)
	}
	e.rt.reset()
	for d := 0; d < e.n; d++ {
		if d < len(s.Inbox) {
			e.rt.inbox[d] = append(e.rt.inbox[d][:0], s.Inbox[d]...)
		}
	}
	e.round = s.Round
	e.rt.round = s.Round
	for _, c := range e.ctxs {
		c.sent = 0
	}
	if len(s.Sent) == len(e.ctxs) {
		for i, c := range e.ctxs {
			c.sent = s.Sent[i]
		}
	} else if len(e.ctxs) > 0 {
		// Worker counts differ (e.g. restored on another machine): only
		// the sum feeds quiescence detection, so fold it into worker 0.
		var total uint64
		for _, v := range s.Sent {
			total += v
		}
		e.ctxs[0].sent = total
	}
	e.digests = append(e.digests[:0], s.Digests...)
	e.lastDigest = digestSeed
	if len(e.digests) > 0 {
		e.lastDigest = e.digests[len(e.digests)-1]
	}
	e.restoredStats = s.Stats
	e.restoredStats.PerRound = nil
	e.resumed = true
	return nil
}

// Digests returns a copy of the chained per-round replay digests of the
// current (or most recent) run; empty unless Options.RecordDigests.
func (e *Engine) Digests() []uint64 { return append([]uint64(nil), e.digests...) }

// Budget returns the per-link bandwidth budget the engine enforces
// (after defaulting) — checkpoint headers record it so a resume onto a
// differently-budgeted session is rejected instead of silently
// replaying a different schedule.
func (e *Engine) Budget() core.Budget { return e.opts.Budget }

// WriteTo serializes the snapshot in the versioned binary format:
// magic, version, shape (n, budget), round, counters, stats, digests,
// inbox bank, and a trailing FNV-1a integrity digest of everything
// before it. It implements io.WriterTo.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := ckptio.NewWriter(w)
	cw.U64(snapshotMagic)
	cw.U64(snapshotVersion)
	cw.I64(int64(s.N))
	cw.I64(int64(s.Budget.BitsPerLink))
	cw.I64(int64(s.Budget.MsgBits))
	cw.I64(int64(s.Round))
	cw.U64s(s.Sent)
	cw.I64(int64(s.Stats.Rounds))
	cw.U64(s.Stats.TotalMsgs)
	cw.U64(s.Stats.TotalBytes)
	cw.I64(int64(s.Stats.Wall))
	cw.U64s(s.Digests)
	cw.U64(uint64(len(s.Inbox)))
	for _, box := range s.Inbox {
		cw.U64(uint64(len(box)))
		for _, m := range box {
			cw.I64(int64(m.Src))
			cw.U64(m.Payload)
		}
	}
	cw.SumTrailer()
	return cw.Count(), cw.Err()
}

// ReadSnapshot deserializes a snapshot written by WriteTo, verifying
// magic, version, and the integrity trailer.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	cr := ckptio.NewReader(r)
	if magic := cr.U64(); cr.Err() == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("engine: not an engine snapshot (magic %#x)", magic)
	}
	if v := cr.U64(); cr.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("engine: snapshot format version %d, this build reads version %d", v, snapshotVersion)
	}
	s := &Snapshot{}
	s.N = int(cr.I64())
	s.Budget.BitsPerLink = int(cr.I64())
	s.Budget.MsgBits = int(cr.I64())
	s.Round = core.Round(cr.I64())
	s.Sent = cr.U64s()
	s.Stats.Rounds = int(cr.I64())
	s.Stats.TotalMsgs = cr.U64()
	s.Stats.TotalBytes = cr.U64()
	s.Stats.Wall = time.Duration(cr.I64())
	s.Digests = cr.U64s()
	nBoxes := int(cr.U64())
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if nBoxes < 0 || nBoxes != s.N {
		return nil, fmt.Errorf("engine: snapshot inbox bank has %d destinations for n=%d", nBoxes, s.N)
	}
	s.Inbox = make([][]Message, nBoxes)
	for d := 0; d < nBoxes; d++ {
		cnt := int(cr.U64())
		if cr.Err() != nil {
			return nil, cr.Err()
		}
		if cnt < 0 || cnt > s.N*1<<16 {
			return nil, fmt.Errorf("engine: snapshot inbox %d claims %d messages (corrupt?)", d, cnt)
		}
		if cnt == 0 {
			continue
		}
		box := make([]Message, cnt)
		for i := range box {
			box[i].Src = core.NodeID(cr.I64())
			box[i].Payload = cr.U64()
		}
		s.Inbox[d] = box
	}
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
