// Cross-transport conformance suite: the executable form of the
// Transport contract (see transport.go). Every registered transport is
// driven through the same table of properties — exactly-once delivery
// in the router's deterministic per-destination order, global
// quiescence and stats, loud *BandwidthError surfacing at cap+1 and
// silence at the cap, snapshot/restore round-trips, and bit-identical
// replay digest chains — with the single-rank MemTransport as ground
// truth. A transport that passes this suite is interchangeable with
// the in-process router for every kernel in the repository.
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// confCase names one registered transport and the rank count the suite
// exercises it at. Rank counts are chosen to force uneven partitions
// (n not divisible by ranks) and cross-rank traffic.
type confCase struct {
	transport string
	ranks     int
}

// conformanceCases enumerates every registered transport, so a new
// registration is automatically under contract.
func conformanceCases() []confCase {
	var cases []confCase
	for _, name := range TransportNames() {
		ranks := 2
		switch name {
		case "mem":
			ranks = 1
		case "socket-tcp":
			ranks = 3
		}
		cases = append(cases, confCase{transport: name, ranks: ranks})
	}
	return cases
}

// runCluster builds a c.ranks-rank cluster of c.transport and drives
// body once per rank on its own goroutine — engine construction
// included, because multi-rank Bind handshakes block until every peer
// arrives. Each body owns its engine (and must Close it). The returned
// slice holds body's error per rank.
func runCluster(t *testing.T, c confCase, body func(rank int, tr Transport) error) []error {
	t.Helper()
	trs, err := NewTransportCluster(c.transport, c.ranks)
	if err != nil {
		t.Fatalf("NewTransportCluster(%q, %d): %v", c.transport, c.ranks, err)
	}
	errs := make([]error, len(trs))
	var wg sync.WaitGroup
	for i := range trs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = body(rank, trs[rank])
		}(i)
	}
	wg.Wait()
	return errs
}

// confTraffic is the deterministic conformance workload: in each round
// r < rounds, node v sends one word to (v + r%(n-1) + 1) % n and — when
// it is a distinct destination — one to (v + (2*r+3)%(n-1) + 1) % n,
// payloads a pure function of (v, r). Handler state is empty, so the
// traffic resumes exactly after a snapshot restore.
type confTraffic struct {
	n, rounds int
}

func (tn *confTraffic) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if int(r) >= tn.rounds || tn.n < 2 {
		return nil
	}
	v := uint64(ctx.ID())
	d1 := (ctx.ID() + core.NodeID(int(r)%(tn.n-1)+1)) % core.NodeID(tn.n)
	if err := ctx.Send(d1, v*100003+uint64(r)*31+7); err != nil {
		return err
	}
	d2 := (ctx.ID() + core.NodeID((2*int(r)+3)%(tn.n-1)+1)) % core.NodeID(tn.n)
	if d2 != d1 {
		return ctx.Send(d2, v*89+uint64(r)*1009+3)
	}
	return nil
}

// recEntry is one delivered message as a recorder node saw it.
type recEntry struct {
	round   core.Round
	src     core.NodeID
	payload uint64
}

// recNode generates confTraffic and records every delivered message in
// arrival order — the observable the delivery test compares across
// transports.
type recNode struct {
	confTraffic
	log []recEntry
}

func (rn *recNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	for _, m := range inbox {
		rn.log = append(rn.log, recEntry{round: r, src: m.Src, payload: m.Payload})
	}
	return rn.confTraffic.Round(ctx, r, inbox)
}

// confOpts is the engine configuration the suite runs under: digests
// on (the bit-identity observable), a 4-msg link cap so the two-fanout
// traffic never brushes the budget.
func confOpts(tr Transport) Options {
	return Options{
		Transport:     tr,
		RecordDigests: true,
		Budget:        core.Budget{BitsPerLink: 4 * core.WordBits, MsgBits: core.WordBits},
	}
}

// memGroundTruth runs the recorder workload on a fresh single-rank
// MemTransport engine and returns the per-node delivery logs, the
// digest chain, and the run stats.
func memGroundTruth(t *testing.T, n, rounds int) ([][]recEntry, []uint64, *Stats) {
	t.Helper()
	nodes := make([]Node, n)
	recs := make([]*recNode, n)
	for i := range nodes {
		recs[i] = &recNode{confTraffic: confTraffic{n: n, rounds: rounds}}
		nodes[i] = recs[i]
	}
	e, err := New(n, confOpts(NewMemTransport()))
	if err != nil {
		t.Fatalf("mem engine: %v", err)
	}
	defer e.Close()
	stats, err := e.Run(context.Background(), nodes)
	if err != nil {
		t.Fatalf("mem run: %v", err)
	}
	logs := make([][]recEntry, n)
	for i, rn := range recs {
		logs[i] = rn.log
	}
	return logs, e.Digests(), stats
}

// TestTransportConformanceDelivery checks, for every registered
// transport, that each node receives exactly the messages the
// in-process router delivers — same multiset, same per-destination
// order, same rounds (exactly-once, deterministic order) — and that
// digest chains, global message totals, and round counts are
// bit-identical to the MemTransport ground truth on every rank.
func TestTransportConformanceDelivery(t *testing.T) {
	const n, rounds = 17, 5
	wantLogs, wantDigests, wantStats := memGroundTruth(t, n, rounds)
	for _, c := range conformanceCases() {
		t.Run(fmt.Sprintf("%s-r%d", c.transport, c.ranks), func(t *testing.T) {
			gotLogs := make([][]recEntry, n)
			gotDigests := make([][]uint64, c.ranks)
			gotStats := make([]*Stats, c.ranks)
			errs := runCluster(t, c, func(rank int, tr Transport) error {
				nodes := make([]Node, n)
				recs := make([]*recNode, n)
				for i := range nodes {
					recs[i] = &recNode{confTraffic: confTraffic{n: n, rounds: rounds}}
					nodes[i] = recs[i]
				}
				e, err := New(n, confOpts(tr))
				if err != nil {
					tr.Close()
					return err
				}
				defer e.Close()
				stats, err := e.Run(context.Background(), nodes)
				if err != nil {
					return err
				}
				gotStats[rank] = stats
				gotDigests[rank] = e.Digests()
				lo, hi := e.Partition()
				if wlo, whi := RankBounds(n, rank, c.ranks); lo != wlo || hi != whi {
					return fmt.Errorf("partition [%d,%d), want [%d,%d)", lo, hi, wlo, whi)
				}
				for i := lo; i < hi; i++ {
					gotLogs[i] = recs[i].log
				}
				return nil
			})
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}
			for v := 0; v < n; v++ {
				if !reflect.DeepEqual(gotLogs[v], wantLogs[v]) {
					t.Fatalf("node %d delivery log diverges from mem ground truth:\n got %v\nwant %v", v, gotLogs[v], wantLogs[v])
				}
			}
			for rank := 0; rank < c.ranks; rank++ {
				if !reflect.DeepEqual(gotDigests[rank], wantDigests) {
					t.Errorf("rank %d digest chain diverges from mem ground truth", rank)
				}
				if got := gotStats[rank]; got.TotalMsgs != wantStats.TotalMsgs || got.Rounds != wantStats.Rounds {
					t.Errorf("rank %d stats (msgs %d, rounds %d), want (%d, %d)",
						rank, got.TotalMsgs, got.Rounds, wantStats.TotalMsgs, wantStats.Rounds)
				}
			}
		})
	}
}

// capNode sends burst messages from node 0 to node n-1 in round 0 and
// records node n-1's delivered count.
type capNode struct {
	n, burst int
	got      int
}

func (cn *capNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	if int(ctx.ID()) == cn.n-1 {
		cn.got += len(inbox)
	}
	if r != 0 || ctx.ID() != 0 {
		return nil
	}
	for i := 0; i < cn.burst; i++ {
		if err := ctx.Send(core.NodeID(cn.n-1), uint64(i)); err != nil {
			return err
		}
	}
	return nil
}

// TestTransportConformanceBandwidth checks the budget boundary on every
// transport: a burst exactly at the link cap is delivered in full with
// no error on any rank; one message past the cap surfaces as a
// *BandwidthError on the sending rank and a loud (non-nil) error on
// every peer rank — never a hang, never silent loss.
func TestTransportConformanceBandwidth(t *testing.T) {
	const n = 10
	budget := core.Budget{BitsPerLink: 4 * core.WordBits, MsgBits: core.WordBits}
	cap := budget.MsgsPerLink()
	for _, c := range conformanceCases() {
		for _, over := range []bool{false, true} {
			burst := cap
			label := "at-cap"
			if over {
				burst, label = cap+1, "cap-plus-1"
			}
			t.Run(fmt.Sprintf("%s-r%d-%s", c.transport, c.ranks, label), func(t *testing.T) {
				got := make([]int, c.ranks)
				errs := runCluster(t, c, func(rank int, tr Transport) error {
					nodes := make([]Node, n)
					caps := make([]*capNode, n)
					for i := range nodes {
						caps[i] = &capNode{n: n, burst: burst}
						nodes[i] = caps[i]
					}
					e, err := New(n, Options{Transport: tr, Budget: budget})
					if err != nil {
						tr.Close()
						return err
					}
					defer e.Close()
					_, err = e.Run(context.Background(), nodes)
					got[rank] = caps[n-1].got
					return err
				})
				if !over {
					for rank, err := range errs {
						if err != nil {
							t.Fatalf("rank %d: burst at cap errored: %v", rank, err)
						}
					}
					lastOwner := c.ranks - 1
					if got[lastOwner] != cap {
						t.Errorf("node %d received %d messages, want the full cap %d", n-1, got[lastOwner], cap)
					}
					return
				}
				// Node 0 lives on rank 0: its engine must surface the
				// typed budget violation; every other rank must fail
				// loudly rather than block on the broken round.
				var bw *BandwidthError
				if !errors.As(errs[0], &bw) {
					t.Fatalf("rank 0: err = %v, want a *BandwidthError", errs[0])
				}
				if bw.Src != 0 || int(bw.Dst) != n-1 || bw.Cap != cap {
					t.Errorf("BandwidthError = %+v, want src 0, dst %d, cap %d", bw, n-1, cap)
				}
				for rank := 1; rank < c.ranks; rank++ {
					if errs[rank] == nil {
						t.Errorf("rank %d: peer of a budget-violating rank returned nil error", rank)
					}
				}
			})
		}
	}
}

// TestTransportConformanceSnapshotRestore checks the pause/resume
// contract on every transport: bound the run so every rank stops with
// ErrMaxRounds at the same barrier (a deterministic global event — no
// abort), snapshot each rank through the serialized WriteTo/
// ReadSnapshot form, restore into a freshly built cluster, run to
// quiescence, and require the full digest chain — restored prefix plus
// continuation — to be bit-identical to an uninterrupted MemTransport
// run on every rank.
func TestTransportConformanceSnapshotRestore(t *testing.T) {
	const n, rounds, pause = 17, 8, 3
	_, wantDigests, _ := memGroundTruth(t, n, rounds)
	mkNodes := func() []Node {
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &confTraffic{n: n, rounds: rounds}
		}
		return nodes
	}
	for _, c := range conformanceCases() {
		t.Run(fmt.Sprintf("%s-r%d", c.transport, c.ranks), func(t *testing.T) {
			snaps := make([][]byte, c.ranks)
			errs := runCluster(t, c, func(rank int, tr Transport) error {
				e, err := New(n, confOpts(tr))
				if err != nil {
					tr.Close()
					return err
				}
				defer e.Close()
				if _, err := e.RunBounded(context.Background(), mkNodes(), pause); !errors.Is(err, ErrMaxRounds) {
					return fmt.Errorf("bounded run: err = %v, want ErrMaxRounds", err)
				}
				snap, err := e.Snapshot()
				if err != nil {
					return err
				}
				var buf bytes.Buffer
				if _, err := snap.WriteTo(&buf); err != nil {
					return err
				}
				snaps[rank] = buf.Bytes()
				return nil
			})
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("pause phase, rank %d: %v", rank, err)
				}
			}
			gotDigests := make([][]uint64, c.ranks)
			errs = runCluster(t, c, func(rank int, tr Transport) error {
				e, err := New(n, confOpts(tr))
				if err != nil {
					tr.Close()
					return err
				}
				defer e.Close()
				snap, err := ReadSnapshot(bytes.NewReader(snaps[rank]))
				if err != nil {
					return err
				}
				if err := e.RestoreSnapshot(snap); err != nil {
					return err
				}
				if _, err := e.RunBounded(context.Background(), mkNodes(), 0); err != nil {
					return err
				}
				gotDigests[rank] = e.Digests()
				return nil
			})
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("resume phase, rank %d: %v", rank, err)
				}
			}
			for rank := 0; rank < c.ranks; rank++ {
				if !reflect.DeepEqual(gotDigests[rank], wantDigests) {
					t.Errorf("rank %d resumed digest chain diverges from the uninterrupted mem run:\n got %v\nwant %v",
						rank, gotDigests[rank], wantDigests)
				}
			}
		})
	}
}

// TestTransportConformanceGather checks AllGatherRows on every
// transport: each rank fills only its own partition's rows of an
// n x rowLen slab, and after one gather every rank holds the complete
// slab. MemTransport's no-op trivially satisfies this (its partition
// is everything).
func TestTransportConformanceGather(t *testing.T) {
	const n, rowLen = 17, 3
	fill := func(v, j int) int64 { return int64(v*1000 + j + 1) }
	for _, c := range conformanceCases() {
		t.Run(fmt.Sprintf("%s-r%d", c.transport, c.ranks), func(t *testing.T) {
			flats := make([][]int64, c.ranks)
			errs := runCluster(t, c, func(rank int, tr Transport) error {
				e, err := New(n, confOpts(tr))
				if err != nil {
					tr.Close()
					return err
				}
				defer e.Close()
				lo, hi := e.Partition()
				flat := make([]int64, n*rowLen)
				for v := lo; v < hi; v++ {
					for j := 0; j < rowLen; j++ {
						flat[v*rowLen+j] = fill(v, j)
					}
				}
				if err := e.Transport().AllGatherRows(flat, rowLen); err != nil {
					return err
				}
				flats[rank] = flat
				return nil
			})
			for rank, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", rank, err)
				}
			}
			for rank, flat := range flats {
				for v := 0; v < n; v++ {
					for j := 0; j < rowLen; j++ {
						if got, want := flat[v*rowLen+j], fill(v, j); got != want {
							t.Fatalf("rank %d: gathered[%d][%d] = %d, want %d", rank, v, j, got, want)
						}
					}
				}
			}
		})
	}
}
