// Package engine is a synchronous round-based Congested Clique
// simulator engineered for throughput. Nodes implement the Node
// interface; the engine runs all round handlers in parallel across a
// fixed pool of persistent worker goroutines with a barrier between
// rounds, routes messages through a sharded, double-buffered,
// zero-allocation router (see router.go), enforces the model's
// O(log n)-bit per-link bandwidth budget, and collects per-round stats.
//
// An Engine is reusable: New sizes it for a clique of n nodes, each
// Run(ctx, nodes) executes one node set to quiescence, and the worker
// pool, router slabs, and bandwidth counters stay warm across runs.
// The clique package (the public session API) layers kernel dispatch
// and cumulative accounting on top of exactly this reuse. Close
// releases the workers and slabs; RunOnce bundles New/Run/Close for
// single-shot callers.
//
// The Outbox helper (outbox.go) layers balanced, budget-paced
// all-to-all exchange on top of Ctx.Send: queue any multiset of
// (destination, word) messages and flush them over as many rounds as
// the per-link cap requires. See docs/architecture.md for the message
// lifecycle and the exact point where the budget is enforced.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/trace"
)

// Node is one clique participant. Round is invoked exactly once per
// synchronous round with the messages addressed to this node in the
// previous round; messages sent via ctx are delivered at the start of
// the next round. A handler runs on a single goroutine but concurrently
// with other nodes' handlers, so it must not touch other nodes' state.
type Node interface {
	Round(ctx *Ctx, r core.Round, inbox []Message) error
}

// Options configures an Engine. The zero value selects sensible
// defaults: GOMAXPROCS workers, the canonical one-word-per-link budget,
// and a MaxRounds of 4n+64.
type Options struct {
	// Workers is the number of scheduler workers (and router shards).
	// Defaults to runtime.GOMAXPROCS(0), clamped to n. Negative values
	// are rejected by Validate/New.
	Workers int
	// MaxRounds bounds each run; Run returns ErrMaxRounds if the
	// system has not quiesced by then. Defaults to 4n+64. Negative
	// values are rejected by Validate/New.
	MaxRounds int
	// Budget is the per-link bandwidth allowance. The zero value means
	// core.DefaultBudget(n); any other value must be able to carry at
	// least one whole message (BitsPerLink >= MsgBits >= 1) or
	// Validate/New rejects it.
	Budget core.Budget
	// RoundHook, when non-nil, is invoked synchronously from the run
	// loop after every executed round (including the final quiet one)
	// with that round's stats — the streaming-observability tap the
	// clique session API exposes via WithRoundHook. It must not call
	// back into the engine, with one sanctioned exception: Snapshot,
	// which is exactly a round-barrier operation (the hook runs at the
	// barrier). A panicking hook does not wedge the run: the panic is
	// recovered and surfaced as the run's error (ErrRoundHookPanic).
	RoundHook func(RoundStats)
	// RecordDigests enables deterministic-replay verification: after
	// every round the engine folds the freshly scattered inbox bank —
	// every (destination, source, payload) triple in the router's
	// deterministic delivery order — into a chained per-round FNV-1a
	// digest, exposed via RoundStats.Digest and carried by Snapshot.
	// Two runs are bit-identical exactly when their digest sequences
	// match. Off by default: the round loop then pays a single branch
	// and never touches the delivered messages.
	RecordDigests bool
	// Trace, when non-nil, receives per-round spans — one whole-round
	// envelope plus the compute/scatter/exchange phase breakdown — into
	// its ring buffer. Nil (the default) disables tracing at the cost of
	// one nil check per round, the same discipline as testHooks; span
	// recording never allocates either way. Enabling Trace additionally
	// turns on per-worker barrier-wait sampling (RoundStats.BarrierWait).
	Trace *trace.Recorder
	// Transport selects the fabric that completes each round's
	// all-to-all exchange (see transport.go). Nil selects the
	// in-process MemTransport — the zero-allocation slab scatter. A
	// multi-rank transport (SocketTransport) makes this engine one
	// rank of a larger logical clique: it executes only the
	// transport's Partition of the node set and exchanges round frames
	// with its peers. The engine takes ownership: Close closes the
	// transport.
	Transport Transport
}

// Validate rejects option values that would otherwise slip through to
// confusing runtime behavior: negative worker or round counts, and
// non-default budgets too small to carry a single message word.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("engine: Options.Workers %d is negative (0 selects the GOMAXPROCS default)", o.Workers)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("engine: Options.MaxRounds %d is negative (0 selects the 4n+64 default)", o.MaxRounds)
	}
	if o.Budget != (core.Budget{}) {
		if o.Budget.MsgBits < 1 {
			return fmt.Errorf("engine: Options.Budget.MsgBits %d cannot frame a message (want >= 1, or the zero Budget for the default)", o.Budget.MsgBits)
		}
		if o.Budget.BitsPerLink < o.Budget.MsgBits {
			return fmt.Errorf("engine: Options.Budget allows %d bits per link, below one %d-bit message word", o.Budget.BitsPerLink, o.Budget.MsgBits)
		}
	}
	return nil
}

// ErrMaxRounds is returned by Run when MaxRounds elapse before the
// system quiesces (a round in which no node sends any message).
var ErrMaxRounds = errors.New("engine: MaxRounds reached before quiescence")

// ErrClosed is returned by Run after Close has released the engine.
var ErrClosed = errors.New("engine: Run on a closed Engine")

// ErrRoundHookPanic wraps a panic recovered from Options.RoundHook: the
// run stops at the barrier with this error instead of wedging the
// worker pool, and the engine stays usable for further runs.
var ErrRoundHookPanic = errors.New("engine: RoundHook panicked")

// HandlerPanicError reports a node handler (Node.Round) that panicked.
// The run loop recovers it on the worker, releases the phase barrier
// normally, and returns it from Run — one misbehaving node set cannot
// take down the shared worker pool, so a warm engine (and the clique
// session above it) survives to run the next kernel.
type HandlerPanicError struct {
	// Node is the handler that panicked.
	Node core.NodeID
	// Round is the round it panicked in.
	Round core.Round
	// Value is the recovered panic value.
	Value any
}

// Error formats the panicking node, round, and panic value.
func (e *HandlerPanicError) Error() string {
	return fmt.Sprintf("engine: node %d panicked in round %d: %v", e.Node, e.Round, e.Value)
}

// RoundStats records one executed round.
type RoundStats struct {
	Round core.Round
	Msgs  uint64
	Bytes uint64
	Wall  time.Duration
	// Compute is phase A: all local node handlers dispatched to the
	// worker pool, up to the phase barrier.
	Compute time.Duration
	// Exchange is phase B: the transport completing the round — the
	// in-process slab scatter, or a socket transport's frame exchange.
	Exchange time.Duration
	// Scatter is the in-process parallel-scatter portion of Exchange
	// (equal to nearly all of it on MemTransport, the local share on a
	// socket transport that scatters after its frame exchange).
	Scatter time.Duration
	// BarrierWait is the mean per-worker idle time at the phase-A
	// barrier — the load-imbalance signal: compute time is wasted when
	// most workers finish their node range early and wait for the
	// slowest. Measured only when Options.Trace is set, 0 otherwise.
	BarrierWait time.Duration
	// Digest is the chained FNV-1a replay digest of the round's
	// delivered traffic when Options.RecordDigests is set, 0 otherwise.
	// See Options.RecordDigests for the exact bytes folded.
	Digest uint64
}

// Stats aggregates an entire run.
type Stats struct {
	Rounds     int
	TotalMsgs  uint64
	TotalBytes uint64
	Wall       time.Duration
	PerRound   []RoundStats
}

// Ctx is a node's handle to the communication substrate. One Ctx exists
// per worker; the engine rebinds it to each node before invoking its
// handler, so handlers must not retain it across rounds.
type Ctx struct {
	rt   *router
	w    int
	src  core.NodeID
	sent uint64
	n    int
}

// ID returns the node the context is currently bound to.
func (c *Ctx) ID() core.NodeID { return c.src }

// NumNodes returns the clique size n.
func (c *Ctx) NumNodes() int { return c.n }

// LinkMsgCap returns the enforced whole-message capacity of one
// directed link in one round — Options.Budget.MsgsPerLink() after the
// router's internal clamping. Pacing layers (Outbox) size their
// per-round bursts with it.
func (c *Ctx) LinkMsgCap() int { return c.rt.linkCap }

// Send queues one payload word to dst for delivery next round. It
// returns a *BandwidthError if the per-link budget for this round is
// exhausted, or an error for an invalid destination (out of range or
// self). The message is not queued when an error is returned.
func (c *Ctx) Send(dst core.NodeID, payload uint64) error {
	if err := c.rt.send(c.w, c.src, dst, payload); err != nil {
		return err
	}
	c.sent++
	return nil
}

// workerCmd sequences the two parallel phases of a round.
type workerCmd uint8

const (
	cmdRunNodes workerCmd = iota
	cmdScatter
)

// Engine runs node sets under the Congested Clique round model. It is
// sized for a fixed clique of n nodes at New and may execute any number
// of sequential Run calls (each with its own node set) before Close;
// the worker goroutines, router slabs, and inbox banks are reused
// across runs. An Engine is not safe for concurrent use.
type Engine struct {
	n       int
	opts    Options
	workers int
	rt      *router
	ctxs    []*Ctx
	lo, hi  []int // node ranges per worker
	errs    []error
	nodes   []Node
	round   core.Round

	// transport completes each round's exchange; binding is the
	// engine-side surface it drives. partLo/partHi is the local node
	// range the transport assigned this engine.
	transport      Transport
	binding        *Binding
	partLo, partHi int

	cmds    []chan workerCmd
	barrier sync.WaitGroup
	started bool
	closed  bool

	// Phase-timing scratch. doneAt[w] is worker w's phase-A finish
	// stamp, written by the worker and read by the run loop strictly
	// after the barrier — no lock needed. scatterAt/scatterDur time the
	// in-process parallel scatter, written inside the transport's
	// Exchange (via Binding.ParallelScatter) and read after it returns.
	doneAt     []time.Time
	scatterAt  time.Time
	scatterDur time.Duration

	// Replay-digest chain of the current run (RecordDigests only):
	// digests[r] summarizes rounds 0..r, lastDigest is the chain head.
	digests    []uint64
	lastDigest uint64
	// Restore state armed by RestoreSnapshot and consumed by the next
	// RunBounded, which then continues from e.round instead of
	// rewinding to round 0.
	resumed       bool
	restoredStats Stats
	// curStats mirrors the current run's cumulative totals (PerRound
	// excluded) at the last completed round barrier, so Snapshot can
	// carry them without reaching into RunBounded's locals.
	curStats Stats
}

// New builds an engine for a clique of n nodes after validating opts.
// Worker goroutines are spawned lazily on the first Run, so an Engine
// that never runs holds no resources beyond memory; after the first Run
// the pool stays warm until Close.
func New(n int, opts Options) (*Engine, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative clique size %d", n)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers > n && n > 0 {
		opts.Workers = n
	}
	if n == 0 {
		opts.Workers = 1
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 4*n + 64
	}
	if opts.Budget == (core.Budget{}) {
		opts.Budget = core.DefaultBudget(n)
	}
	tr := opts.Transport
	if tr == nil {
		tr = NewMemTransport()
	}
	partLo, partHi := tr.Partition(n)
	if partLo < 0 || partHi < partLo || partHi > n {
		return nil, fmt.Errorf("engine: transport %s partition [%d, %d) outside [0, %d)", tr.Name(), partLo, partHi, n)
	}
	w := opts.Workers
	e := &Engine{
		n:         n,
		opts:      opts,
		workers:   w,
		rt:        newRouter(n, w, w, opts.Budget),
		ctxs:      make([]*Ctx, w),
		lo:        make([]int, w),
		hi:        make([]int, w),
		errs:      make([]error, w),
		cmds:      make([]chan workerCmd, w),
		doneAt:    make([]time.Time, w),
		transport: tr,
		partLo:    partLo,
		partHi:    partHi,
	}
	for i := 0; i < w; i++ {
		// Contiguous node ranges over the transport's local partition,
		// in the same ceil split as the router's shard bounds — for the
		// full partition [0, n) (MemTransport) worker i's range is
		// exactly shard i, and handlers always run nodes in ID order.
		local := partHi - partLo
		e.lo[i] = partLo + (i*local+w-1)/w
		e.hi[i] = partLo + ((i+1)*local+w-1)/w
		e.ctxs[i] = &Ctx{rt: e.rt, w: i, n: n}
	}
	e.binding = &Binding{e: e}
	if err := tr.Bind(e.binding); err != nil {
		e.rt.release()
		return nil, fmt.Errorf("engine: binding transport %s: %w", tr.Name(), err)
	}
	return e, nil
}

// Transport returns the engine's bound transport — the Gatherer
// kernels use to synchronize harvested results across ranks.
func (e *Engine) Transport() Transport { return e.transport }

// Partition returns the contiguous local node range [lo, hi) this
// engine executes — all of [0, n) for the in-process transport, one
// rank's shard otherwise.
func (e *Engine) Partition() (lo, hi int) { return e.partLo, e.partHi }

// NumNodes returns the clique size the engine was built for.
func (e *Engine) NumNodes() int { return e.n }

// start spawns the persistent workers: one buffered command channel
// each, a shared WaitGroup as the phase barrier. No goroutine spawns
// and no channel allocations happen inside the round loop.
func (e *Engine) start() {
	for w := 0; w < e.workers; w++ {
		e.cmds[w] = make(chan workerCmd, 1)
		go func(w int) {
			for cmd := range e.cmds[w] {
				if h := testHooks; h != nil && h.WorkerPhase != nil {
					h.WorkerPhase(w, int(cmd))
				}
				switch cmd {
				case cmdRunNodes:
					e.runNodes(w)
					// Barrier-wait sampling: stamp after the handlers
					// (including the panic-recovered path) so the run
					// loop can compute this worker's idle time at the
					// barrier. Gated on tracing — one nil check.
					if e.opts.Trace != nil {
						e.doneAt[w] = time.Now()
					}
				case cmdScatter:
					e.rt.scatterShard(w)
				}
				e.barrier.Done()
			}
		}(w)
	}
	e.started = true
}

// Close shuts down the worker pool, returns the router's slabs to the
// shared pool, and closes the bound transport. The engine must not be
// used afterwards; Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.started {
		for _, ch := range e.cmds {
			close(ch)
		}
	}
	e.rt.release()
	if e.transport != nil {
		e.transport.Close() //nolint:errcheck // teardown is best-effort
	}
}

// parallelScatter runs phase B on the worker pool: shard s is
// scattered by worker s. Exposed to transports via Binding.
func (e *Engine) parallelScatter() {
	e.scatterAt = time.Now()
	e.barrier.Add(e.workers)
	for _, ch := range e.cmds {
		ch <- cmdScatter
	}
	e.barrier.Wait()
	e.scatterDur = time.Since(e.scatterAt)
}

// runNodes executes phase A for worker w: invoke every owned node's
// handler for the current round. A handler panic is recovered here — on
// the worker, before the phase barrier is released — and surfaced as a
// *HandlerPanicError run error, so a panicking kernel can never wedge
// the pool mid-barrier.
func (e *Engine) runNodes(w int) {
	ctx := e.ctxs[w]
	r := e.round
	defer func() {
		if p := recover(); p != nil {
			e.errs[w] = &HandlerPanicError{Node: ctx.src, Round: r, Value: p}
		}
	}()
	hooks := testHooks
	for id := e.lo[w]; id < e.hi[w]; id++ {
		ctx.src = core.NodeID(id)
		if hooks != nil && hooks.NodeError != nil {
			if err := hooks.NodeError(core.NodeID(id), r); err != nil {
				e.errs[w] = fmt.Errorf("node %d round %d: %w", id, r, err)
				return
			}
		}
		if err := e.nodes[id].Round(ctx, r, e.rt.inbox[id]); err != nil {
			e.errs[w] = fmt.Errorf("node %d round %d: %w", id, r, err)
			return
		}
	}
}

// callRoundHook invokes the configured RoundHook with panic recovery,
// converting a hook panic into an ErrRoundHookPanic run error.
func (e *Engine) callRoundHook(rs RoundStats) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w at round %d: %v", ErrRoundHookPanic, rs.Round, p)
		}
	}()
	e.opts.RoundHook(rs)
	return nil
}

// foldInboxDigest chains the freshly scattered inbox bank into the
// replay digest: for every destination in ID order, the destination,
// its message count, and each (source, payload) pair in the router's
// deterministic delivery order. Allocation-free; called once per round
// and only when RecordDigests is set.
func (e *Engine) foldInboxDigest() uint64 {
	h := e.lastDigest
	for d := 0; d < e.n; d++ {
		box := e.rt.inbox[d]
		h = fnv1aWord(h, uint64(d))
		h = fnv1aWord(h, uint64(len(box)))
		for i := range box {
			h = fnv1aWord(h, uint64(box[i].Src))
			h = fnv1aWord(h, box[i].Payload)
		}
	}
	return h
}

// Run executes one node set from round 0 until quiescence (a round in
// which zero messages are sent), a node handler error, context
// cancellation, or MaxRounds (ErrMaxRounds). len(nodes) must equal the
// clique size the engine was built for; nodes[i] handles NodeID i.
//
// Cancellation is observed at the round barrier: the deadline or cancel
// of ctx stops the run before the next round starts and Run returns
// ctx.Err(). Handlers are never interrupted mid-round — the model is
// synchronous — so a cancelled run leaves the engine in a clean
// between-rounds state, ready for the next Run.
//
// The returned Stats are valid in all cases and cover every executed
// round of this run.
func (e *Engine) Run(ctx context.Context, nodes []Node) (*Stats, error) {
	return e.RunBounded(ctx, nodes, 0)
}

// RunBounded is Run with a per-run round bound: maxRounds > 0 overrides
// Options.MaxRounds for this run only (kernels with wide streaming
// phases raise it via the clique session's MaxRoundsHint protocol);
// maxRounds <= 0 keeps the configured value.
//
// When the engine was primed by RestoreSnapshot, the next RunBounded
// continues the restored run instead of starting fresh: rounds resume
// from the snapshot's round number against the snapshot's inbox bank,
// the bound is interpreted as an absolute round number (so a resumed
// run gets exactly the rounds the uninterrupted one had left), and the
// returned Stats carry the snapshot's cumulative totals forward.
func (e *Engine) RunBounded(ctx context.Context, nodes []Node, maxRounds int) (*Stats, error) {
	stats := &Stats{}
	if e.closed {
		return stats, ErrClosed
	}
	if len(nodes) != e.n {
		return stats, fmt.Errorf("engine: %d nodes for a clique sized %d", len(nodes), e.n)
	}
	if maxRounds <= 0 {
		maxRounds = e.opts.MaxRounds
	}
	if e.n == 0 {
		return stats, nil
	}

	resumed := e.resumed
	e.resumed = false
	if resumed {
		// RestoreSnapshot already loaded the inbox bank, round counter,
		// send counters, and digest chain; only the node set and error
		// slots need (re)binding, and the carried-over cumulative stats
		// seed this run's totals so accounting spans the whole logical
		// run. MaxRounds stays an absolute round bound, so a resumed
		// run gets exactly the rounds the uninterrupted one had left.
		stats.Rounds = e.restoredStats.Rounds
		stats.TotalMsgs = e.restoredStats.TotalMsgs
		stats.TotalBytes = e.restoredStats.TotalBytes
		stats.Wall = e.restoredStats.Wall
		e.restoredStats = Stats{}
	} else {
		// Rewind to a pristine round 0: clear any state a previous run
		// left behind (stale inbox banks or out-buffers from an error
		// or a cancelled run), reset the per-worker send counters, and
		// restart the digest chain. Slab and inbox capacity is
		// retained, so reuse stays allocation-free in steady state.
		e.round = 0
		e.rt.reset()
		for _, c := range e.ctxs {
			c.sent = 0
		}
		e.digests = e.digests[:0]
		e.lastDigest = digestSeed
	}
	e.curStats = Stats{
		Rounds:     stats.Rounds,
		TotalMsgs:  stats.TotalMsgs,
		TotalBytes: stats.TotalBytes,
		Wall:       stats.Wall,
	}
	e.nodes = nodes
	for i := range e.errs {
		e.errs[i] = nil
	}
	if !e.started {
		e.start()
	}
	defer func() { e.nodes = nil }()

	runStart := time.Now()
	baseWall := stats.Wall
	var prevSent uint64
	for _, c := range e.ctxs {
		prevSent += c.sent
	}
	for int(e.round) < maxRounds {
		if h := testHooks; h != nil && h.BarrierEnter != nil {
			h.BarrierEnter(e.round)
		}
		if err := ctx.Err(); err != nil {
			// A cancelled rank must not leave peers blocked in their
			// exchange: tear the round down loudly before returning.
			e.transport.Abort(err)
			stats.Wall = baseWall + time.Since(runStart)
			return stats, err
		}
		t0 := time.Now()

		// Phase A: all locally-owned round handlers in parallel.
		e.barrier.Add(e.workers)
		for _, ch := range e.cmds {
			ch <- cmdRunNodes
		}
		e.barrier.Wait()
		tA := time.Now()
		for _, err := range e.errs {
			if err != nil {
				e.transport.Abort(err)
				stats.Wall = baseWall + time.Since(runStart)
				return stats, err
			}
		}

		// Phase B: the transport completes the round — the in-process
		// transport scatters the slabs in parallel (shard s by worker
		// s); a multi-rank transport exchanges round frames with its
		// peers. Either way the inbox banks are swapped and the global
		// message count comes back, so quiescence is a cluster-wide
		// event every rank observes on the same round.
		var sentTotal uint64
		for _, c := range e.ctxs {
			sentTotal += c.sent
		}
		localMsgs := sentTotal - prevSent
		prevSent = sentTotal
		e.scatterAt, e.scatterDur = time.Time{}, 0
		tX := time.Now()
		roundMsgs, xerr := e.transport.Exchange(e.round, localMsgs)
		if xerr != nil {
			e.transport.Abort(xerr)
			stats.Wall = baseWall + time.Since(runStart)
			return stats, xerr
		}

		tEnd := time.Now()
		rs := RoundStats{
			Round:    e.round,
			Msgs:     roundMsgs,
			Bytes:    roundMsgs * uint64(e.opts.Budget.MsgBits) / 8,
			Wall:     tEnd.Sub(t0),
			Compute:  tA.Sub(t0),
			Exchange: tEnd.Sub(tX),
			Scatter:  e.scatterDur,
		}
		if tr := e.opts.Trace; tr != nil {
			// Mean worker idle at the phase-A barrier: how much compute
			// time load imbalance wasted this round. doneAt was stamped
			// by each worker before it released the barrier.
			var idle time.Duration
			for _, d := range e.doneAt {
				if !d.IsZero() && d.Before(tA) {
					idle += tA.Sub(d)
				}
			}
			rs.BarrierWait = idle / time.Duration(e.workers)
			round := int64(e.round)
			tr.Record(trace.Span{Name: trace.NameRound, Cat: trace.CatRound, Lane: trace.LaneRounds,
				Start: tr.Since(t0), Dur: int64(rs.Wall), Round: round, Arg: rs.Msgs})
			tr.Record(trace.Span{Name: trace.NameCompute, Cat: trace.CatPhase, Lane: trace.LanePhases,
				Start: tr.Since(t0), Dur: int64(rs.Compute), Round: round, Arg: uint64(rs.BarrierWait)})
			tr.Record(trace.Span{Name: trace.NameExchange, Cat: trace.CatPhase, Lane: trace.LanePhases,
				Start: tr.Since(tX), Dur: int64(rs.Exchange), Round: round})
			if !e.scatterAt.IsZero() {
				tr.Record(trace.Span{Name: trace.NameScatter, Cat: trace.CatPhase, Lane: trace.LanePhases,
					Start: tr.Since(e.scatterAt), Dur: int64(rs.Scatter), Round: round})
			}
		}
		if e.opts.RecordDigests {
			e.lastDigest = e.foldInboxDigest()
			e.digests = append(e.digests, e.lastDigest)
			rs.Digest = e.lastDigest
		}
		e.round++
		stats.PerRound = append(stats.PerRound, rs)
		stats.Rounds++
		stats.TotalMsgs += rs.Msgs
		stats.TotalBytes += rs.Bytes
		e.curStats = Stats{
			Rounds:     stats.Rounds,
			TotalMsgs:  stats.TotalMsgs,
			TotalBytes: stats.TotalBytes,
			Wall:       baseWall + time.Since(runStart),
		}
		if e.opts.RoundHook != nil {
			if err := e.callRoundHook(rs); err != nil {
				e.transport.Abort(err)
				stats.Wall = baseWall + time.Since(runStart)
				return stats, err
			}
		}

		if roundMsgs == 0 {
			stats.Wall = baseWall + time.Since(runStart)
			return stats, nil
		}
	}
	stats.Wall = baseWall + time.Since(runStart)
	return stats, ErrMaxRounds
}

// RunOnce builds a single-use engine over nodes, runs it to quiescence
// with a background context, and tears it down — the convenience path
// for callers that do not reuse the worker pool across runs.
func RunOnce(nodes []Node, opts Options) (*Stats, error) {
	e, err := New(len(nodes), opts)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Run(context.Background(), nodes)
}
