// Package engine is a synchronous round-based Congested Clique
// simulator engineered for throughput. Nodes implement the Node
// interface; the engine runs all round handlers in parallel across a
// fixed pool of persistent worker goroutines with a barrier between
// rounds, routes messages through a sharded, double-buffered,
// zero-allocation router (see router.go), enforces the model's
// O(log n)-bit per-link bandwidth budget, and collects per-round stats.
//
// The Outbox helper (outbox.go) layers balanced, budget-paced
// all-to-all exchange on top of Ctx.Send: queue any multiset of
// (destination, word) messages and flush them over as many rounds as
// the per-link cap requires. See docs/architecture.md for the message
// lifecycle and the exact point where the budget is enforced.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// Node is one clique participant. Round is invoked exactly once per
// synchronous round with the messages addressed to this node in the
// previous round; messages sent via ctx are delivered at the start of
// the next round. A handler runs on a single goroutine but concurrently
// with other nodes' handlers, so it must not touch other nodes' state.
type Node interface {
	Round(ctx *Ctx, r core.Round, inbox []Message) error
}

// Options configures an Engine. The zero value selects sensible
// defaults: GOMAXPROCS workers, the canonical one-word-per-link budget,
// and a MaxRounds of 4n+64.
type Options struct {
	// Workers is the number of scheduler workers (and router shards).
	// Defaults to runtime.GOMAXPROCS(0), clamped to n.
	Workers int
	// MaxRounds bounds the execution; Run returns ErrMaxRounds if the
	// system has not quiesced by then. Defaults to 4n+64.
	MaxRounds int
	// Budget is the per-link bandwidth allowance. Zero value means
	// core.DefaultBudget(n).
	Budget core.Budget
}

// ErrMaxRounds is returned by Run when MaxRounds elapse before the
// system quiesces (a round in which no node sends any message).
var ErrMaxRounds = errors.New("engine: MaxRounds reached before quiescence")

// RoundStats records one executed round.
type RoundStats struct {
	Round core.Round
	Msgs  uint64
	Bytes uint64
	Wall  time.Duration
}

// Stats aggregates an entire run.
type Stats struct {
	Rounds     int
	TotalMsgs  uint64
	TotalBytes uint64
	Wall       time.Duration
	PerRound   []RoundStats
}

// Ctx is a node's handle to the communication substrate. One Ctx exists
// per worker; the engine rebinds it to each node before invoking its
// handler, so handlers must not retain it across rounds.
type Ctx struct {
	rt   *router
	w    int
	src  core.NodeID
	sent uint64
	n    int
}

// ID returns the node the context is currently bound to.
func (c *Ctx) ID() core.NodeID { return c.src }

// NumNodes returns the clique size n.
func (c *Ctx) NumNodes() int { return c.n }

// LinkMsgCap returns the enforced whole-message capacity of one
// directed link in one round — Options.Budget.MsgsPerLink() after the
// router's internal clamping. Pacing layers (Outbox) size their
// per-round bursts with it.
func (c *Ctx) LinkMsgCap() int { return c.rt.linkCap }

// Send queues one payload word to dst for delivery next round. It
// returns a *BandwidthError if the per-link budget for this round is
// exhausted, or an error for an invalid destination (out of range or
// self). The message is not queued when an error is returned.
func (c *Ctx) Send(dst core.NodeID, payload uint64) error {
	if err := c.rt.send(c.w, c.src, dst, payload); err != nil {
		return err
	}
	c.sent++
	return nil
}

// workerCmd sequences the two parallel phases of a round.
type workerCmd uint8

const (
	cmdRunNodes workerCmd = iota
	cmdScatter
)

// Engine runs a set of nodes under the Congested Clique round model.
type Engine struct {
	n       int
	nodes   []Node
	opts    Options
	workers int
	rt      *router
	ctxs    []*Ctx
	lo, hi  []int // node ranges per worker
	errs    []error
	round   core.Round
}

// New builds an engine over the given nodes. len(nodes) is the clique
// size n; nodes[i] is the handler for NodeID i.
func New(nodes []Node, opts Options) *Engine {
	n := len(nodes)
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers > n && n > 0 {
		opts.Workers = n
	}
	if n == 0 {
		opts.Workers = 1
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 4*n + 64
	}
	if opts.Budget == (core.Budget{}) {
		opts.Budget = core.DefaultBudget(n)
	}
	w := opts.Workers
	e := &Engine{
		n:       n,
		nodes:   nodes,
		opts:    opts,
		workers: w,
		rt:      newRouter(n, w, w, opts.Budget),
		ctxs:    make([]*Ctx, w),
		lo:      make([]int, w),
		hi:      make([]int, w),
		errs:    make([]error, w),
	}
	for i := 0; i < w; i++ {
		// Contiguous node ranges, aligned with the router's shard
		// bounds so worker i also scatters shard i.
		e.lo[i] = int(e.rt.bounds[i])
		e.hi[i] = int(e.rt.bounds[i+1])
		e.ctxs[i] = &Ctx{rt: e.rt, w: i, n: n}
	}
	return e
}

// runNodes executes phase A for worker w: invoke every owned node's
// handler for the current round.
func (e *Engine) runNodes(w int) {
	ctx := e.ctxs[w]
	r := e.round
	for id := e.lo[w]; id < e.hi[w]; id++ {
		ctx.src = core.NodeID(id)
		if err := e.nodes[id].Round(ctx, r, e.rt.inbox[id]); err != nil {
			e.errs[w] = fmt.Errorf("node %d round %d: %w", id, r, err)
			return
		}
	}
}

// Run executes rounds until quiescence (a round in which zero messages
// are sent), a node handler returns an error, or MaxRounds elapse
// (ErrMaxRounds). The returned Stats are valid in all cases and cover
// every executed round.
func (e *Engine) Run() (*Stats, error) {
	stats := &Stats{}
	if e.n == 0 {
		return stats, nil
	}
	defer e.rt.release()

	// Persistent workers: one buffered command channel each, a shared
	// WaitGroup as the phase barrier. No goroutine spawns and no
	// channel allocations inside the round loop.
	cmds := make([]chan workerCmd, e.workers)
	var barrier sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		cmds[w] = make(chan workerCmd, 1)
		go func(w int) {
			for cmd := range cmds[w] {
				switch cmd {
				case cmdRunNodes:
					e.runNodes(w)
				case cmdScatter:
					e.rt.scatterShard(w)
				}
				barrier.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range cmds {
			close(ch)
		}
	}()

	runStart := time.Now()
	var prevSent uint64
	for i := 0; i < e.opts.MaxRounds; i++ {
		t0 := time.Now()

		// Phase A: all round handlers in parallel.
		barrier.Add(e.workers)
		for _, ch := range cmds {
			ch <- cmdRunNodes
		}
		barrier.Wait()
		for _, err := range e.errs {
			if err != nil {
				stats.Wall = time.Since(runStart)
				return stats, err
			}
		}

		// Phase B: parallel scatter, shard s by worker s.
		barrier.Add(e.workers)
		for _, ch := range cmds {
			ch <- cmdScatter
		}
		barrier.Wait()
		e.rt.finishRound()

		var sentTotal uint64
		for _, c := range e.ctxs {
			sentTotal += c.sent
		}
		roundMsgs := sentTotal - prevSent
		prevSent = sentTotal

		rs := RoundStats{
			Round: e.round,
			Msgs:  roundMsgs,
			Bytes: roundMsgs * uint64(e.opts.Budget.MsgBits) / 8,
			Wall:  time.Since(t0),
		}
		e.round++
		stats.PerRound = append(stats.PerRound, rs)
		stats.Rounds++
		stats.TotalMsgs += rs.Msgs
		stats.TotalBytes += rs.Bytes

		if roundMsgs == 0 {
			stats.Wall = time.Since(runStart)
			return stats, nil
		}
	}
	stats.Wall = time.Since(runStart)
	return stats, ErrMaxRounds
}
