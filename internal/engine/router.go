// The sharded message router is the performance core of the simulator.
//
// Layout: the n destination mailboxes are partitioned into S contiguous
// shards. During a round, each of the W scheduler workers appends the
// messages its nodes send into W x S private out-buffers (no locks, no
// per-message allocation: the buffers are sync.Pool-backed slabs whose
// capacity is retained across rounds). At the round barrier each shard
// goroutine scatters the S-th column of that matrix into per-destination
// inboxes it exclusively owns, again lock-free. Inboxes are
// double-buffered: nodes read round r's inboxes while the scatter phase
// fills round r+1's, and the two banks are swapped at finishRound.
//
// Bandwidth accounting: the Congested Clique allows B = O(log n) bits
// per directed link per round. The router charges Budget.MsgBits per
// message and rejects a send that would exceed the link capacity with a
// *BandwidthError instead of silently dropping. The per-link counters
// are epoch-stamped (one uint32 epoch + uint16 count per ordered pair)
// so that resetting them between rounds is a single epoch increment,
// not an O(n^2) clear.
package engine

import (
	"fmt"
	"sync"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// Message is a delivered simulator message: one Theta(log n)-bit
// payload word plus its sender. The destination is implicit in which
// inbox the message sits in.
type Message struct {
	Src     core.NodeID
	Payload uint64
}

// outMsg is the in-flight representation inside the router's
// out-buffers, which still needs the explicit destination.
type outMsg struct {
	dst     core.NodeID
	src     core.NodeID
	payload uint64
}

// slabCap is the initial capacity of a pooled out-buffer slab. 1024
// messages x 16 bytes = 16 KiB, large enough that steady-state growth
// is rare and small enough that idle shards are cheap.
const slabCap = 1024

var slabPool = sync.Pool{
	New: func() any {
		s := make([]outMsg, 0, slabCap)
		return &s
	},
}

// BandwidthError reports a send that exceeded the per-link, per-round
// message budget.
type BandwidthError struct {
	Src, Dst core.NodeID
	Round    core.Round
	Cap      int
}

// Error formats the violated link, round, and cap.
func (e *BandwidthError) Error() string {
	return fmt.Sprintf("engine: bandwidth cap exceeded on link %d->%d in round %d (cap %d msgs/round)",
		e.Src, e.Dst, e.Round, e.Cap)
}

// router owns all message storage for one engine instance. It is a
// passive data structure: all parallelism (which worker appends where,
// which goroutine scatters which shard) is orchestrated by the engine,
// so every method here is allocation-free on the steady-state hot path.
type router struct {
	n       int
	shards  int
	budget  core.Budget
	linkCap int

	// bounds[s] is the first destination owned by shard s;
	// shard s owns dsts in [bounds[s], bounds[s+1]).
	bounds []int32

	// out[w][s] holds messages appended by worker w for shard s.
	out [][][]outMsg

	// inbox is the bank nodes read this round; spare is the bank the
	// scatter phase fills for next round. Swapped by finishRound.
	inbox [][]Message
	spare [][]Message

	// Per-ordered-pair bandwidth accounting, epoch-stamped so a round
	// change is an O(1) reset. Index is src*n + dst. Epochs wrap after
	// 2^32 rounds; a false positive then would require a pair to be
	// untouched for exactly 2^32 rounds, which we accept.
	curEpoch uint32
	epoch    []uint32
	count    []uint16

	round core.Round
}

func newRouter(n, workers, shards int, budget core.Budget) *router {
	if shards < 1 {
		shards = 1
	}
	if shards > n && n > 0 {
		shards = n
	}
	linkCap := budget.MsgsPerLink()
	if linkCap > 65535 {
		linkCap = 65535 // count is uint16; 64K msgs/link/round is far beyond any O(log n) budget
	}
	rt := &router{
		n:       n,
		shards:  shards,
		budget:  budget,
		linkCap: linkCap,
		bounds:  make([]int32, shards+1),
		out:     make([][][]outMsg, workers),
		inbox:   make([][]Message, n),
		spare:   make([][]Message, n),
		epoch:   make([]uint32, n*n),
		count:   make([]uint16, n*n),
	}
	for s := 0; s <= shards; s++ {
		rt.bounds[s] = int32((s*n + shards - 1) / shards)
	}
	for w := range rt.out {
		rt.out[w] = make([][]outMsg, shards)
	}
	rt.curEpoch = 1
	return rt
}

// shardOf maps a destination to its owning shard, consistent with
// bounds: for dst in [bounds[s], bounds[s+1]), shardOf(dst) == s.
func (rt *router) shardOf(dst core.NodeID) int {
	return int(dst) * rt.shards / rt.n
}

// send appends one message to worker w's buffer for the destination's
// shard, enforcing the link budget. Callers must ensure that all sends
// with a given src happen on a single goroutine (the engine runs each
// node's handler on exactly one worker), which makes the per-src rows
// of the accounting arrays data-race free without atomics.
func (rt *router) send(w int, src, dst core.NodeID, payload uint64) error {
	if dst < 0 || int(dst) >= rt.n || dst == src {
		return fmt.Errorf("engine: invalid destination %d for sender %d (n=%d)", dst, src, rt.n)
	}
	idx := int(src)*rt.n + int(dst)
	if rt.epoch[idx] != rt.curEpoch {
		rt.epoch[idx] = rt.curEpoch
		rt.count[idx] = 0
	}
	if int(rt.count[idx]) >= rt.linkCap {
		return &BandwidthError{Src: src, Dst: dst, Round: rt.round, Cap: rt.linkCap}
	}
	rt.count[idx]++
	s := rt.shardOf(dst)
	buf := rt.out[w][s]
	if buf == nil {
		buf = *slabPool.Get().(*[]outMsg)
	}
	rt.out[w][s] = append(buf, outMsg{dst: dst, src: src, payload: payload})
	return nil
}

// scatterShard drains every worker's buffer for shard s into the spare
// inbox bank. Only one goroutine may run scatterShard(s) for a given s
// per round; distinct shards touch disjoint destination ranges, so all
// shards scatter in parallel without locks. Iterating workers in index
// order (and each worker having appended its nodes in ID order) makes
// inbox ordering fully deterministic regardless of scheduling.
func (rt *router) scatterShard(s int) {
	lo, hi := rt.bounds[s], rt.bounds[s+1]
	for d := lo; d < hi; d++ {
		rt.spare[d] = rt.spare[d][:0]
	}
	for w := range rt.out {
		buf := rt.out[w][s]
		for i := range buf {
			m := &buf[i]
			rt.spare[m.dst] = append(rt.spare[m.dst], Message{Src: m.src, Payload: m.payload})
		}
		if buf != nil {
			rt.out[w][s] = buf[:0]
		}
	}
}

// reset rewinds the router to a pristine round 0 for engine reuse:
// both inbox banks and all out-buffers are truncated (capacity kept,
// so reuse allocates nothing), the bandwidth epoch advances so every
// per-link counter reads as zero, and the round counter restarts. A
// run that ended in quiescence leaves nothing to clear, but a run cut
// short by a handler error or context cancellation can leave queued
// out-buffer messages and a filled spare bank behind.
func (rt *router) reset() {
	for d := 0; d < rt.n; d++ {
		rt.inbox[d] = rt.inbox[d][:0]
		rt.spare[d] = rt.spare[d][:0]
	}
	for w := range rt.out {
		for s := range rt.out[w] {
			if buf := rt.out[w][s]; buf != nil {
				rt.out[w][s] = buf[:0]
			}
		}
	}
	rt.curEpoch++
	rt.round = 0
}

// finishRound swaps the inbox banks and advances the bandwidth epoch.
// Must be called after every shard's scatterShard has completed.
func (rt *router) finishRound() {
	rt.inbox, rt.spare = rt.spare, rt.inbox
	rt.curEpoch++
	rt.round++
}

// release returns all out-buffer slabs to the pool. The router must not
// be used afterwards.
func (rt *router) release() {
	for w := range rt.out {
		for s := range rt.out[w] {
			if buf := rt.out[w][s]; buf != nil {
				buf = buf[:0]
				slabPool.Put(&buf)
				rt.out[w][s] = nil
			}
		}
	}
}
