// The socket transport's wire unit is a frame: an 8-byte little-endian
// length prefix followed by a self-contained ckptio stream — magic,
// kind, sender rank, sequence number, a kind-specific body, and the
// ckptio integrity trailer (FNV-1a over every body byte). Reusing the
// checkpoint encoding means the transport inherits its torn-input
// discipline for free: a truncated, bit-flipped, or replayed frame
// surfaces as a decode error or a digest mismatch, never as silently
// corrupt round traffic. FuzzFrame fuzzes decodeFrame directly.
package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
)

const (
	// frameMagic guards against cross-protocol connections; "CCFRAME1"
	// little-endian.
	frameMagic uint64 = 0x31454d4152464343

	// frameVersion is bumped on any wire-incompatible change and
	// checked in the hello handshake.
	frameVersion uint64 = 1

	// maxFrameLen bounds the length prefix a receiver accepts. A round
	// frame carries at most n * linkCap messages at 24 bytes each;
	// 1 GiB is far beyond any feasible round at O(log n)-bit budgets.
	maxFrameLen = 1 << 30

	// minFrameLen is magic + kind + rank + seq + trailer.
	minFrameLen = 5 * 8

	// frameReadChunk bounds the incremental allocation while reading a
	// frame payload, so a corrupt length prefix costs O(bytes present).
	frameReadChunk = 1 << 20
)

// Frame kinds.
const (
	frameHello uint64 = iota + 1
	frameRound
	frameGather
	frameAbort
)

// Exported frame-kind values for the TransportHooks fault-injection
// seam: hook callbacks receive the kind as a plain uint64, and fault
// plans (internal/faults) need to aim at a specific traffic class.
const (
	FrameKindHello  = frameHello
	FrameKindRound  = frameRound
	FrameKindGather = frameGather
	FrameKindAbort  = frameAbort
)

// frameHeader identifies one decoded frame.
type frameHeader struct {
	kind uint64
	rank uint64
	seq  uint64
}

// wireMsg is one round message in wire order.
type wireMsg struct {
	dst, src core.NodeID
	payload  uint64
}

// helloBody is the handshake payload both ends of a peer connection
// exchange before any round traffic: every field must agree with the
// receiver's own view of the clique or the mesh refuses to form.
type helloBody struct {
	version     uint64
	n           uint64
	ranks       uint64
	rank        uint64
	lo, hi      uint64
	bitsPerLink uint64
	msgBits     uint64
}

// encodeFrame serializes one frame: length prefix, header words, the
// kind-specific body written by body (may be nil), and the integrity
// trailer.
func encodeFrame(kind, rank, seq uint64, body func(*ckptio.Writer)) []byte {
	var buf bytes.Buffer
	buf.Write(make([]byte, 8)) // length prefix, patched below
	cw := ckptio.NewWriter(&buf)
	cw.U64(frameMagic)
	cw.U64(kind)
	cw.U64(rank)
	cw.U64(seq)
	if body != nil {
		body(cw)
	}
	cw.SumTrailer()
	b := buf.Bytes()
	binary.LittleEndian.PutUint64(b[:8], uint64(len(b)-8))
	return b
}

// encodeHello frames the handshake payload.
func encodeHello(h helloBody) []byte {
	return encodeFrame(frameHello, h.rank, 0, func(cw *ckptio.Writer) {
		cw.U64(h.version)
		cw.U64(h.n)
		cw.U64(h.ranks)
		cw.U64(h.rank)
		cw.U64(h.lo)
		cw.U64(h.hi)
		cw.U64(h.bitsPerLink)
		cw.U64(h.msgBits)
	})
}

// encodeRound frames one rank's complete round-r message stream in
// deterministic order: a count word then (dst, src, payload) triples.
func encodeRound(rank uint64, round core.Round, msgs []wireMsg) []byte {
	return encodeFrame(frameRound, rank, uint64(round), func(cw *ckptio.Writer) {
		cw.U64(uint64(len(msgs)))
		for _, m := range msgs {
			cw.I64(int64(m.dst))
			cw.I64(int64(m.src))
			cw.U64(m.payload)
		}
	})
}

// encodeGather frames one rank's rows [lo, hi) of a row-major
// all-gather slab.
func encodeGather(rank, seq uint64, rowLen, lo, hi int, rows []int64) []byte {
	return encodeFrame(frameGather, rank, seq, func(cw *ckptio.Writer) {
		cw.U64(uint64(rowLen))
		cw.U64(uint64(lo))
		cw.U64(uint64(hi))
		cw.I64s(rows)
	})
}

// encodeAbort frames a best-effort abort notification carrying the
// failing rank's error text.
func encodeAbort(rank uint64, reason error) []byte {
	msg := "unknown"
	if reason != nil {
		msg = reason.Error()
	}
	return encodeFrame(frameAbort, rank, 0, func(cw *ckptio.Writer) {
		cw.String(msg)
	})
}

// readFrame reads one length-prefixed frame payload off r, growing the
// buffer incrementally so a corrupt prefix cannot force a huge
// allocation, and returns the parsed header plus a ckptio reader
// positioned at the body. The caller decodes the body for the expected
// kind and finishes with finishFrame.
func readFrame(r io.Reader) (frameHeader, *ckptio.Reader, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frameHeader{}, nil, fmt.Errorf("engine: reading frame length: %w", err)
	}
	ln := binary.LittleEndian.Uint64(pre[:])
	if ln < minFrameLen || ln > maxFrameLen {
		return frameHeader{}, nil, fmt.Errorf("engine: implausible frame length %d", ln)
	}
	payload := make([]byte, 0, min(int(ln), frameReadChunk))
	for len(payload) < int(ln) {
		c := min(int(ln)-len(payload), frameReadChunk)
		start := len(payload)
		payload = append(payload, make([]byte, c)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return frameHeader{}, nil, fmt.Errorf("engine: truncated frame: %w", err)
		}
	}
	cr := ckptio.NewReader(bytes.NewReader(payload))
	if magic := cr.U64(); cr.Err() == nil && magic != frameMagic {
		return frameHeader{}, nil, fmt.Errorf("engine: bad frame magic %#x", magic)
	}
	h := frameHeader{kind: cr.U64(), rank: cr.U64(), seq: cr.U64()}
	if err := cr.Err(); err != nil {
		return frameHeader{}, nil, err
	}
	if h.kind < frameHello || h.kind > frameAbort {
		return frameHeader{}, nil, fmt.Errorf("engine: unknown frame kind %d", h.kind)
	}
	return h, cr, nil
}

// finishFrame verifies the frame's integrity trailer after the body has
// been decoded.
func finishFrame(cr *ckptio.Reader) error {
	cr.VerifySumTrailer()
	return cr.Err()
}

// decodeHelloBody decodes the handshake payload (trailer verified).
func decodeHelloBody(cr *ckptio.Reader) (helloBody, error) {
	h := helloBody{
		version: cr.U64(),
		n:       cr.U64(),
		ranks:   cr.U64(),
		rank:    cr.U64(),
		lo:      cr.U64(),
		hi:      cr.U64(),
	}
	h.bitsPerLink = cr.U64()
	h.msgBits = cr.U64()
	if err := finishFrame(cr); err != nil {
		return helloBody{}, err
	}
	return h, nil
}

// decodeRoundBody decodes a round frame's message stream (trailer
// verified) into buf, which is reused when it has capacity. n bounds
// destination and source validation; srcLo/srcHi is the sender's
// declared node range, so a frame cannot impersonate another rank's
// nodes.
func decodeRoundBody(cr *ckptio.Reader, buf []wireMsg, n, srcLo, srcHi int) ([]wireMsg, error) {
	count := cr.U64()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if count > maxFrameLen/24 {
		return nil, fmt.Errorf("engine: implausible round frame message count %d", count)
	}
	msgs := buf[:0]
	for i := uint64(0); i < count; i++ {
		m := wireMsg{
			dst:     core.NodeID(cr.I64()),
			src:     core.NodeID(cr.I64()),
			payload: cr.U64(),
		}
		if err := cr.Err(); err != nil {
			return nil, err
		}
		if m.dst < 0 || int(m.dst) >= n {
			return nil, fmt.Errorf("engine: round frame message %d has destination %d outside [0, %d)", i, m.dst, n)
		}
		if int(m.src) < srcLo || int(m.src) >= srcHi {
			return nil, fmt.Errorf("engine: round frame message %d has source %d outside sender's range [%d, %d)", i, m.src, srcLo, srcHi)
		}
		msgs = append(msgs, m)
	}
	if err := finishFrame(cr); err != nil {
		return nil, err
	}
	return msgs, nil
}

// decodeGatherBody decodes a gather frame (trailer verified) and
// validates its shape against the expected sender range and row width.
func decodeGatherBody(cr *ckptio.Reader, wantRowLen, wantLo, wantHi int) ([]int64, error) {
	rowLen := cr.U64()
	lo := cr.U64()
	hi := cr.U64()
	rows := cr.I64s()
	if err := finishFrame(cr); err != nil {
		return nil, err
	}
	if int(rowLen) != wantRowLen || int(lo) != wantLo || int(hi) != wantHi {
		return nil, fmt.Errorf("engine: gather frame shape (rowLen=%d rows [%d,%d)) does not match expected (rowLen=%d rows [%d,%d))",
			rowLen, lo, hi, wantRowLen, wantLo, wantHi)
	}
	if len(rows) != (wantHi-wantLo)*wantRowLen {
		return nil, fmt.Errorf("engine: gather frame carries %d words for %d rows of %d", len(rows), wantHi-wantLo, wantRowLen)
	}
	return rows, nil
}

// decodeAbortBody decodes an abort frame's reason (trailer verified).
func decodeAbortBody(cr *ckptio.Reader) (string, error) {
	msg := cr.String()
	if err := finishFrame(cr); err != nil {
		return "", err
	}
	return msg, nil
}
