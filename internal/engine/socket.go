// SocketTransport spans one logical clique across k OS processes
// (ranks), each executing a contiguous node shard, connected by a full
// mesh of TCP or Unix-domain stream sockets carrying length-prefixed
// ckptio frames (frame.go).
//
// Round protocol: every rank drains its local out-slabs into one round
// frame — the rank's complete message stream in the router's
// deterministic order — and broadcasts it to every peer, then rebuilds
// the complete inbox bank by replaying all k streams in rank order.
// Messages to a destination d therefore arrive source-ascending with
// per-source send order preserved (ranks own ascending node ranges),
// which is byte-for-byte the order MemTransport's scatter produces: the
// replay digest chain, engine snapshots, and quiescence detection all
// work unchanged on every rank. Execution is still sharded — each rank
// runs handlers only for its own nodes — so the CPU and handler state
// scale out even though round traffic is fully replicated; at the
// model's B = O(log n) bits/link/round budgets, round frames are small.
//
// Failure discipline: every read and write carries a deadline, every
// frame an integrity trailer, and every decoded message a source-range
// check, so a dropped, duplicated, reordered, truncated, or corrupted
// frame surfaces as a loud Exchange error — never as silently wrong
// traffic (see internal/faults for the injected proofs). When the
// local engine fails (handler error, context cancellation), it calls
// Abort, which best-effort notifies peers so their blocked Exchange
// calls fail instead of hanging until the deadline.
package engine

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
)

// defaultSocketTimeout bounds every socket operation (dial, handshake,
// frame read/write) when SocketConfig.Timeout is zero.
const defaultSocketTimeout = 30 * time.Second

// TransportHooks is the fault-injection seam of the socket transport,
// mirroring TestHooks: nil hooks cost one nil check per frame write.
// Install via SetTransportHooks before any engine run starts; the
// internal/faults package compiles its transport fault plans onto it.
type TransportHooks struct {
	// FrameOut intercepts every outgoing frame to a peer and returns
	// the frames actually written: return nil to drop the frame, the
	// original plus a copy to duplicate it, or a modified byte slice to
	// corrupt it.
	FrameOut func(srcRank, dstRank int, kind, seq uint64, frame []byte) [][]byte
	// KillConn, when it returns true, closes the connection to dstRank
	// before the frame is written — a mid-exchange connection kill.
	KillConn func(srcRank, dstRank int, kind, seq uint64) bool
}

var transportHooks *TransportHooks

// SetTransportHooks installs hooks (nil uninstalls). Like
// SetTestHooks, it must only be called while no engine is running.
func SetTransportHooks(h *TransportHooks) { transportHooks = h }

// SocketConfig configures one rank of a socket-transport clique.
type SocketConfig struct {
	// Network is "tcp" or "unix".
	Network string
	// Addrs lists every rank's listen address; Addrs[i] is rank i's.
	// All ranks must agree on this list — it defines the cluster.
	Addrs []string
	// Rank is this process's index into Addrs.
	Rank int
	// Timeout bounds each socket operation (dial, handshake, one frame
	// read or write). Zero selects 30s.
	Timeout time.Duration
}

// socketPeer is one established peer connection.
type socketPeer struct {
	rank   int
	lo, hi int // peer's node range, validated at handshake
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
}

// SocketTransport implements Transport over a full socket mesh. Build
// one per rank with NewSocketTransport (or LoopbackCluster for
// in-process tests), hand it to engine.Options.Transport or
// clique.WithTransport, and run the same deterministic kernel on every
// rank.
type SocketTransport struct {
	cfg    SocketConfig
	ln     net.Listener
	tmpDir string // LoopbackCluster's unix socket dir, removed on Close

	b      *Binding
	n      int
	lo, hi int
	peers  []*socketPeer

	outMsgs   []wireMsg   // local round stream scratch, reused
	inMsgs    [][]wireMsg // per-rank decoded streams, reused
	gatherSeq uint64
	broken    error
	closed    bool
}

// NewSocketTransport validates cfg and, for multi-rank cliques, starts
// listening on this rank's address. The peer mesh is established when
// the engine calls Bind.
func NewSocketTransport(cfg SocketConfig) (*SocketTransport, error) {
	if cfg.Network != "tcp" && cfg.Network != "unix" {
		return nil, fmt.Errorf("engine: socket transport network %q (want tcp or unix)", cfg.Network)
	}
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("engine: socket transport needs at least one rank address")
	}
	if cfg.Rank < 0 || cfg.Rank >= len(cfg.Addrs) {
		return nil, fmt.Errorf("engine: socket transport rank %d outside [0, %d)", cfg.Rank, len(cfg.Addrs))
	}
	t := &SocketTransport{cfg: cfg}
	if len(cfg.Addrs) > 1 {
		ln, err := net.Listen(cfg.Network, cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("engine: rank %d listening on %s %s: %w", cfg.Rank, cfg.Network, cfg.Addrs[cfg.Rank], err)
		}
		t.ln = ln
	}
	return t, nil
}

// Name identifies the transport by its network ("socket-tcp",
// "socket-unix").
func (t *SocketTransport) Name() string { return "socket-" + t.cfg.Network }

// Ranks returns the cluster width k.
func (t *SocketTransport) Ranks() int { return len(t.cfg.Addrs) }

// Partition returns this rank's node range — the ceil partition of
// [0, n) across the cluster's ranks.
func (t *SocketTransport) Partition(n int) (lo, hi int) {
	t.n = n
	t.lo, t.hi = RankBounds(n, t.cfg.Rank, len(t.cfg.Addrs))
	return t.lo, t.hi
}

func (t *SocketTransport) timeout() time.Duration {
	if t.cfg.Timeout > 0 {
		return t.cfg.Timeout
	}
	return defaultSocketTimeout
}

// Bind establishes the full peer mesh: this rank accepts one
// connection from every higher rank and dials every lower rank
// (retrying until the timeout, so cluster processes may start in any
// order), exchanging validated hello frames on each connection.
func (t *SocketTransport) Bind(b *Binding) error {
	t.b = b
	if b.N() != t.n {
		return fmt.Errorf("engine: transport partitioned for n=%d but bound to an engine of n=%d", t.n, b.N())
	}
	k := len(t.cfg.Addrs)
	t.peers = make([]*socketPeer, k)
	t.inMsgs = make([][]wireMsg, k)
	if k == 1 {
		return nil
	}
	bud := b.Budget()
	hello := helloBody{
		version:     frameVersion,
		n:           uint64(t.n),
		ranks:       uint64(k),
		rank:        uint64(t.cfg.Rank),
		lo:          uint64(t.lo),
		hi:          uint64(t.hi),
		bitsPerLink: uint64(bud.BitsPerLink),
		msgBits:     uint64(bud.MsgBits),
	}
	deadline := time.Now().Add(t.timeout())
	errc := make(chan error, 2)
	go func() { errc <- t.acceptPeers(deadline, hello) }()
	go func() { errc <- t.dialPeers(deadline, hello) }()
	var first error
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		t.Close()
		return first
	}
	return nil
}

// acceptPeers accepts and handshakes one connection from every rank
// above this one.
func (t *SocketTransport) acceptPeers(deadline time.Time, hello helloBody) error {
	k := len(t.cfg.Addrs)
	if dl, ok := t.ln.(interface{ SetDeadline(time.Time) error }); ok {
		dl.SetDeadline(deadline)
	}
	for need := k - 1 - t.cfg.Rank; need > 0; need-- {
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("engine: rank %d accepting peers: %w", t.cfg.Rank, err)
		}
		p, err := t.handshake(conn, hello, deadline, false)
		if err != nil {
			conn.Close()
			return err
		}
		if p.rank <= t.cfg.Rank {
			conn.Close()
			return fmt.Errorf("engine: rank %d accepted a connection claiming rank %d (dials go low-to-high)", t.cfg.Rank, p.rank)
		}
		if t.peers[p.rank] != nil {
			conn.Close()
			return fmt.Errorf("engine: rank %d accepted a duplicate connection from rank %d", t.cfg.Rank, p.rank)
		}
		t.peers[p.rank] = p
	}
	return nil
}

// dialPeers dials and handshakes every rank below this one, retrying
// dials until the deadline so ranks can start in any order.
func (t *SocketTransport) dialPeers(deadline time.Time, hello helloBody) error {
	for j := 0; j < t.cfg.Rank; j++ {
		conn, err := t.dialRetry(j, deadline)
		if err != nil {
			return err
		}
		p, err := t.handshake(conn, hello, deadline, true)
		if err != nil {
			conn.Close()
			return err
		}
		if p.rank != j {
			conn.Close()
			return fmt.Errorf("engine: rank %d dialed %s expecting rank %d, got rank %d", t.cfg.Rank, t.cfg.Addrs[j], j, p.rank)
		}
		t.peers[j] = p
	}
	return nil
}

func (t *SocketTransport) dialRetry(j int, deadline time.Time) (net.Conn, error) {
	d := net.Dialer{Deadline: deadline}
	for {
		conn, err := d.Dial(t.cfg.Network, t.cfg.Addrs[j])
		if err == nil {
			return conn, nil
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("engine: rank %d dialing rank %d at %s %s: %w", t.cfg.Rank, j, t.cfg.Network, t.cfg.Addrs[j], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// handshake exchanges hello frames on a fresh connection (the dialer
// speaks first) and validates the peer's view of the cluster.
func (t *SocketTransport) handshake(conn net.Conn, hello helloBody, deadline time.Time, dialer bool) (*socketPeer, error) {
	p := &socketPeer{
		rank: -1,
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	sendHello := func() error {
		conn.SetWriteDeadline(deadline)
		if _, err := p.bw.Write(encodeHello(hello)); err != nil {
			return fmt.Errorf("engine: rank %d sending hello: %w", t.cfg.Rank, err)
		}
		if err := p.bw.Flush(); err != nil {
			return fmt.Errorf("engine: rank %d sending hello: %w", t.cfg.Rank, err)
		}
		return nil
	}
	recvHello := func() error {
		conn.SetReadDeadline(deadline)
		h, cr, err := readFrame(p.br)
		if err != nil {
			return fmt.Errorf("engine: rank %d reading hello: %w", t.cfg.Rank, err)
		}
		if h.kind != frameHello {
			return fmt.Errorf("engine: rank %d expected a hello frame, got kind %d", t.cfg.Rank, h.kind)
		}
		body, err := decodeHelloBody(cr)
		if err != nil {
			return fmt.Errorf("engine: rank %d decoding hello: %w", t.cfg.Rank, err)
		}
		if err := t.validateHello(body); err != nil {
			return err
		}
		p.rank = int(body.rank)
		p.lo, p.hi = int(body.lo), int(body.hi)
		return nil
	}
	steps := []func() error{recvHello, sendHello}
	if dialer {
		steps = []func() error{sendHello, recvHello}
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// validateHello rejects a peer whose view of the cluster (size, rank
// count, node partition, bandwidth budget, wire version) disagrees
// with ours — misconfigured meshes fail at handshake, not mid-round.
func (t *SocketTransport) validateHello(h helloBody) error {
	k := len(t.cfg.Addrs)
	if h.version != frameVersion {
		return fmt.Errorf("engine: peer speaks frame version %d, this build speaks %d", h.version, frameVersion)
	}
	if h.n != uint64(t.n) || h.ranks != uint64(k) {
		return fmt.Errorf("engine: peer clique (n=%d, ranks=%d) does not match local (n=%d, ranks=%d)", h.n, h.ranks, t.n, k)
	}
	if h.rank >= uint64(k) || h.rank == uint64(t.cfg.Rank) {
		return fmt.Errorf("engine: peer claims invalid rank %d (local rank %d of %d)", h.rank, t.cfg.Rank, k)
	}
	lo, hi := RankBounds(t.n, int(h.rank), k)
	if h.lo != uint64(lo) || h.hi != uint64(hi) {
		return fmt.Errorf("engine: peer rank %d claims nodes [%d, %d), partition says [%d, %d)", h.rank, h.lo, h.hi, lo, hi)
	}
	bud := t.b.Budget()
	if h.bitsPerLink != uint64(bud.BitsPerLink) || h.msgBits != uint64(bud.MsgBits) {
		return fmt.Errorf("engine: peer budget (%d bits/link, %d bits/msg) does not match local (%d, %d)",
			h.bitsPerLink, h.msgBits, bud.BitsPerLink, bud.MsgBits)
	}
	return nil
}

// writeFrame writes one frame to a peer through the fault-injection
// hooks, with a write deadline.
func (t *SocketTransport) writeFrame(p *socketPeer, kind, seq uint64, frame []byte, deadline time.Time) error {
	frames := [][]byte{frame}
	if h := transportHooks; h != nil {
		if h.KillConn != nil && h.KillConn(t.cfg.Rank, p.rank, kind, seq) {
			p.conn.Close()
			return fmt.Errorf("engine: rank %d connection to rank %d killed mid-exchange (fault injection)", t.cfg.Rank, p.rank)
		}
		if h.FrameOut != nil {
			frames = h.FrameOut(t.cfg.Rank, p.rank, kind, seq, frame)
		}
	}
	p.conn.SetWriteDeadline(deadline)
	for _, f := range frames {
		if _, err := p.bw.Write(f); err != nil {
			return fmt.Errorf("engine: rank %d writing frame to rank %d: %w", t.cfg.Rank, p.rank, err)
		}
	}
	if err := p.bw.Flush(); err != nil {
		return fmt.Errorf("engine: rank %d writing frame to rank %d: %w", t.cfg.Rank, p.rank, err)
	}
	return nil
}

// readPeerFrame reads one frame from a peer and validates its
// provenance (kind, claimed rank, sequence number). An abort frame
// surfaces the peer's error; a stale or replayed frame (duplicated or
// reordered by a faulty fabric) fails the sequence check loudly.
func (t *SocketTransport) readPeerFrame(p *socketPeer, wantKind, wantSeq uint64, deadline time.Time) (*ckptio.Reader, error) {
	p.conn.SetReadDeadline(deadline)
	h, cr, err := readFrame(p.br)
	if err != nil {
		return nil, fmt.Errorf("engine: rank %d reading from rank %d: %w", t.cfg.Rank, p.rank, err)
	}
	if h.kind == frameAbort {
		msg, derr := decodeAbortBody(cr)
		if derr != nil {
			msg = fmt.Sprintf("(undecodable abort frame: %v)", derr)
		}
		return nil, fmt.Errorf("engine: peer rank %d aborted: %s", h.rank, msg)
	}
	if h.kind != wantKind || h.rank != uint64(p.rank) || h.seq != wantSeq {
		return nil, fmt.Errorf("engine: rank %d got frame (kind=%d rank=%d seq=%d) from rank %d, want (kind=%d rank=%d seq=%d) — duplicated or reordered frame",
			t.cfg.Rank, h.kind, h.rank, h.seq, p.rank, wantKind, p.rank, wantSeq)
	}
	return cr, nil
}

// fail records the first fatal transport error; all later operations
// return it.
func (t *SocketTransport) fail(err error) error {
	if t.broken == nil {
		t.broken = err
	}
	return t.broken
}

// Exchange completes round r: drain the local slabs into one round
// frame, broadcast it to every peer (writers and readers run
// concurrently per peer, so full buffers cannot deadlock the mesh),
// then rebuild the complete inbox bank by replaying all k streams in
// rank order and swap the banks. Returns the global message count.
func (t *SocketTransport) Exchange(r core.Round, localMsgs uint64) (uint64, error) {
	if t.broken != nil {
		return 0, t.broken
	}
	b := t.b
	t.outMsgs = t.outMsgs[:0]
	b.DrainOut(func(dst, src core.NodeID, payload uint64) {
		t.outMsgs = append(t.outMsgs, wireMsg{dst: dst, src: src, payload: payload})
	})
	if uint64(len(t.outMsgs)) != localMsgs {
		return 0, t.fail(fmt.Errorf("engine: rank %d drained %d messages in round %d but the engine counted %d", t.cfg.Rank, len(t.outMsgs), r, localMsgs))
	}
	k := len(t.cfg.Addrs)
	if k > 1 {
		frame := encodeRound(uint64(t.cfg.Rank), r, t.outMsgs)
		deadline := time.Now().Add(t.timeout())
		errs := make([]error, 2*k)
		var wg sync.WaitGroup
		for j, p := range t.peers {
			if p == nil {
				continue
			}
			wg.Add(2)
			go func(j int, p *socketPeer) {
				defer wg.Done()
				errs[2*j] = t.writeFrame(p, frameRound, uint64(r), frame, deadline)
			}(j, p)
			go func(j int, p *socketPeer) {
				defer wg.Done()
				cr, err := t.readPeerFrame(p, frameRound, uint64(r), deadline)
				if err != nil {
					errs[2*j+1] = err
					return
				}
				msgs, err := decodeRoundBody(cr, t.inMsgs[j], t.n, p.lo, p.hi)
				if err != nil {
					errs[2*j+1] = fmt.Errorf("engine: rank %d decoding round %d frame from rank %d: %w", t.cfg.Rank, r, j, err)
					return
				}
				t.inMsgs[j] = msgs
			}(j, p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, t.fail(err)
			}
		}
	}
	b.ClearSpare()
	var total uint64
	for j := 0; j < k; j++ {
		stream := t.outMsgs
		if j != t.cfg.Rank {
			stream = t.inMsgs[j]
		}
		total += uint64(len(stream))
		for _, m := range stream {
			b.Deliver(m.dst, m.src, m.payload)
		}
	}
	b.FinishRound()
	return total, nil
}

// AllGatherRows synchronizes a row-major n x rowLen slab: each rank
// broadcasts its own rows and copies every peer's rows into place.
// Gather frames carry their own monotonic sequence numbers, so a rank
// that skipped a harvest (a diverged kernel) fails the exchange
// loudly.
func (t *SocketTransport) AllGatherRows(flat []int64, rowLen int) error {
	if rowLen <= 0 {
		return fmt.Errorf("engine: AllGatherRows rowLen %d (want > 0)", rowLen)
	}
	if len(flat) != t.n*rowLen {
		return fmt.Errorf("engine: AllGatherRows slab holds %d words, want n*rowLen = %d*%d", len(flat), t.n, rowLen)
	}
	if len(t.cfg.Addrs) == 1 {
		return nil
	}
	if t.broken != nil {
		return t.broken
	}
	seq := t.gatherSeq
	t.gatherSeq++
	frame := encodeGather(uint64(t.cfg.Rank), seq, rowLen, t.lo, t.hi, flat[t.lo*rowLen:t.hi*rowLen])
	deadline := time.Now().Add(t.timeout())
	k := len(t.cfg.Addrs)
	errs := make([]error, 2*k)
	var wg sync.WaitGroup
	for j, p := range t.peers {
		if p == nil {
			continue
		}
		wg.Add(2)
		go func(j int, p *socketPeer) {
			defer wg.Done()
			errs[2*j] = t.writeFrame(p, frameGather, seq, frame, deadline)
		}(j, p)
		go func(j int, p *socketPeer) {
			defer wg.Done()
			cr, err := t.readPeerFrame(p, frameGather, seq, deadline)
			if err != nil {
				errs[2*j+1] = err
				return
			}
			rows, err := decodeGatherBody(cr, rowLen, p.lo, p.hi)
			if err != nil {
				errs[2*j+1] = fmt.Errorf("engine: rank %d decoding gather frame from rank %d: %w", t.cfg.Rank, j, err)
				return
			}
			copy(flat[p.lo*rowLen:p.hi*rowLen], rows)
		}(j, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return t.fail(err)
		}
	}
	return nil
}

// Abort marks the transport broken and best-effort notifies every peer
// with an abort frame carrying the reason, so their blocked Exchange
// reads fail with the real error instead of a timeout.
func (t *SocketTransport) Abort(reason error) {
	t.fail(fmt.Errorf("engine: rank %d socket transport aborted: %w", t.cfg.Rank, reason))
	if len(t.cfg.Addrs) == 1 {
		return
	}
	frame := encodeAbort(uint64(t.cfg.Rank), reason)
	deadline := time.Now().Add(2 * time.Second)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.conn.SetWriteDeadline(deadline)
		p.bw.Write(frame) //nolint:errcheck // best-effort notification
		p.bw.Flush()      //nolint:errcheck
	}
}

// Close tears down every peer connection and the listener; for
// loopback clusters it also removes the temporary unix socket
// directory. Idempotent.
func (t *SocketTransport) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.fail(errors.New("engine: socket transport closed"))
	var first error
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		if err := p.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.ln != nil {
		if err := t.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.tmpDir != "" {
		os.RemoveAll(t.tmpDir) //nolint:errcheck // best-effort temp cleanup
	}
	return first
}

// LoopbackCluster builds the k linked transports of one logical clique
// on loopback sockets — TCP on 127.0.0.1 ephemeral ports or
// unix-domain sockets in a fresh temp directory. Every returned
// transport must be bound to its own engine (typically one goroutine
// per rank in tests, or one process handed its rank's config). Closing
// the transports releases the listeners and, for unix, the socket
// files.
func LoopbackCluster(ranks int, network string, timeout time.Duration) ([]Transport, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("engine: loopback cluster needs >= 1 rank, got %d", ranks)
	}
	addrs := make([]string, ranks)
	lns := make([]net.Listener, ranks)
	tmpDir := ""
	fail := func(err error) ([]Transport, error) {
		for _, ln := range lns {
			if ln != nil {
				ln.Close()
			}
		}
		if tmpDir != "" {
			os.RemoveAll(tmpDir)
		}
		return nil, err
	}
	switch network {
	case "tcp":
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return fail(fmt.Errorf("engine: loopback cluster rank %d: %w", i, err))
			}
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
	case "unix":
		dir, err := os.MkdirTemp("", "ccsock")
		if err != nil {
			return fail(fmt.Errorf("engine: loopback cluster socket dir: %w", err))
		}
		tmpDir = dir
		for i := range lns {
			path := filepath.Join(dir, fmt.Sprintf("rank%d.sock", i))
			ln, err := net.Listen("unix", path)
			if err != nil {
				return fail(fmt.Errorf("engine: loopback cluster rank %d: %w", i, err))
			}
			lns[i] = ln
			addrs[i] = path
		}
	default:
		return nil, fmt.Errorf("engine: loopback cluster network %q (want tcp or unix)", network)
	}
	ts := make([]Transport, ranks)
	for i := range ts {
		ts[i] = &SocketTransport{
			cfg:    SocketConfig{Network: network, Addrs: addrs, Rank: i, Timeout: timeout},
			ln:     lns[i],
			tmpDir: tmpDir,
		}
	}
	return ts, nil
}
