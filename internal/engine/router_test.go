package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// propNode sends a pseudo-random batch of tagged messages each round
// for `rounds` rounds and records everything it sends and receives.
// Payloads encode (src, round, sequence) so the test can assert the
// exactly-once property per message instance.
type propNode struct {
	n      int
	rounds int
	rng    *rand.Rand

	mu       *sync.Mutex
	sentLog  map[uint64]int // payload -> times sent
	recvLog  map[uint64]int // payload -> times received
	recvedAt map[uint64]core.Round
}

func packTag(src core.NodeID, round core.Round, seq int) uint64 {
	return uint64(src)<<40 | uint64(round)<<20 | uint64(seq)
}

func (p *propNode) Round(ctx *Ctx, r core.Round, inbox []Message) error {
	p.mu.Lock()
	for _, m := range inbox {
		p.recvLog[m.Payload]++
		p.recvedAt[m.Payload] = r
	}
	p.mu.Unlock()
	if int(r) >= p.rounds {
		return nil
	}
	// Send to a random subset of distinct destinations, one message
	// each (the default budget allows exactly one per link).
	k := p.rng.Intn(8)
	seen := make(map[core.NodeID]bool, k)
	for seq := 0; seq < k; seq++ {
		dst := core.NodeID(p.rng.Intn(p.n))
		if dst == ctx.ID() || seen[dst] {
			continue
		}
		seen[dst] = true
		tag := packTag(ctx.ID(), r, seq)
		if err := ctx.Send(dst, tag); err != nil {
			return err
		}
		p.mu.Lock()
		p.sentLog[tag]++
		p.mu.Unlock()
	}
	return nil
}

// TestExactlyOnceDelivery is the router's core property test: every
// message sent in round r is delivered exactly once, in round r+1, even
// with all workers sending concurrently. Run under -race in CI.
func TestExactlyOnceDelivery(t *testing.T) {
	const n, rounds = 97, 20 // prime n => uneven shard boundaries
	var mu sync.Mutex
	sent := map[uint64]int{}
	recv := map[uint64]int{}
	recvAt := map[uint64]core.Round{}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &propNode{
			n: n, rounds: rounds,
			rng:     rand.New(rand.NewSource(int64(1000 + i))),
			mu:      &mu,
			sentLog: sent, recvLog: recv, recvedAt: recvAt,
		}
	}
	stats, err := RunOnce(nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) == 0 {
		t.Fatal("property test sent no messages")
	}
	for tag, ns := range sent {
		if ns != 1 {
			t.Fatalf("tag %x sent %d times, want 1", tag, ns)
		}
		if recv[tag] != 1 {
			t.Fatalf("tag %x delivered %d times, want exactly once", tag, recv[tag])
		}
		sentRound := core.Round(tag >> 20 & 0xfffff)
		if got := recvAt[tag]; got != sentRound+1 {
			t.Fatalf("tag %x sent in round %d but delivered in round %d", tag, sentRound, got)
		}
	}
	for tag := range recv {
		if sent[tag] != 1 {
			t.Fatalf("phantom delivery of tag %x that was never sent", tag)
		}
	}
	var total uint64
	for _, n := range sent {
		total += uint64(n)
	}
	if stats.TotalMsgs != total {
		t.Errorf("stats.TotalMsgs = %d, want %d", stats.TotalMsgs, total)
	}
}

type funcNode func(ctx *Ctx, r core.Round, inbox []Message) error

func (f funcNode) Round(ctx *Ctx, r core.Round, inbox []Message) error { return f(ctx, r, inbox) }

// TestBandwidthCapViolation checks that exceeding the per-link budget
// returns a *BandwidthError from Send (and propagates out of Run)
// rather than silently dropping the message.
func TestBandwidthCapViolation(t *testing.T) {
	nodes := make([]Node, 4)
	var sendErr error
	for i := range nodes {
		id := core.NodeID(i)
		nodes[i] = funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if id != 0 || r != 0 {
				return nil
			}
			if err := ctx.Send(1, 7); err != nil {
				return err
			}
			sendErr = ctx.Send(1, 8) // second message on the same link, same round
			return sendErr
		})
	}
	_, err := RunOnce(nodes, Options{})
	var bwe *BandwidthError
	if !errors.As(sendErr, &bwe) {
		t.Fatalf("second Send returned %v, want *BandwidthError", sendErr)
	}
	if bwe.Src != 0 || bwe.Dst != 1 || bwe.Cap != 1 {
		t.Errorf("BandwidthError = %+v, want src=0 dst=1 cap=1", bwe)
	}
	if !errors.As(err, &bwe) {
		t.Errorf("Run returned %v, want wrapped *BandwidthError", err)
	}
}

// TestWiderBudgetAllowsBurst checks MsgsPerLink > 1 budgets.
func TestWiderBudgetAllowsBurst(t *testing.T) {
	opts := Options{Budget: core.Budget{BitsPerLink: 4 * core.WordBits, MsgBits: core.WordBits}}
	var got []uint64
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r != 0 {
				return nil
			}
			for k := 0; k < 4; k++ {
				if err := ctx.Send(1, uint64(k)); err != nil {
					return err
				}
			}
			if err := ctx.Send(1, 99); err == nil {
				t.Error("fifth message on a 4-message link unexpectedly allowed")
			}
			return nil
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			for _, m := range inbox {
				got = append(got, m.Payload)
			}
			return nil
		}),
	}
	if _, err := RunOnce(nodes, opts); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4 (got %v)", len(got), got)
	}
}

// TestWideBudgetBeyond255 guards the counter width: a budget of 300
// messages per link must admit all 300, not clamp at a byte boundary.
func TestWideBudgetBeyond255(t *testing.T) {
	opts := Options{Budget: core.Budget{BitsPerLink: 300 * core.WordBits, MsgBits: core.WordBits}}
	var delivered int
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r != 0 {
				return nil
			}
			for k := 0; k < 300; k++ {
				if err := ctx.Send(1, uint64(k)); err != nil {
					return err
				}
			}
			if err := ctx.Send(1, 300); err == nil {
				t.Error("301st message on a 300-message link unexpectedly allowed")
			}
			return nil
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			delivered += len(inbox)
			return nil
		}),
	}
	if _, err := RunOnce(nodes, opts); err != nil {
		t.Fatal(err)
	}
	if delivered != 300 {
		t.Fatalf("delivered %d messages, want 300", delivered)
	}
}

// TestInvalidDestination checks self-sends and out-of-range IDs error.
func TestInvalidDestination(t *testing.T) {
	nodes := []Node{
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if err := ctx.Send(ctx.ID(), 1); err == nil {
				t.Error("self-send unexpectedly allowed")
			}
			if err := ctx.Send(core.NodeID(2), 1); err == nil {
				t.Error("out-of-range send unexpectedly allowed")
			}
			if err := ctx.Send(core.NodeID(-1), 1); err == nil {
				t.Error("negative destination unexpectedly allowed")
			}
			return nil
		}),
		funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error { return nil }),
	}
	if _, err := RunOnce(nodes, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestShardBoundsCoverage: every destination maps to exactly the shard
// whose bounds contain it, for awkward n/shard combinations.
func TestShardBoundsCoverage(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{1, 1}, {7, 3}, {97, 8}, {100, 7}, {64, 64}, {5, 16},
	} {
		rt := newRouter(tc.n, 1, tc.shards, core.DefaultBudget(tc.n))
		if got := int(rt.bounds[0]); got != 0 {
			t.Fatalf("n=%d shards=%d: bounds[0]=%d", tc.n, tc.shards, got)
		}
		if got := int(rt.bounds[rt.shards]); got != tc.n {
			t.Fatalf("n=%d shards=%d: bounds[last]=%d, want %d", tc.n, tc.shards, got, tc.n)
		}
		for d := 0; d < tc.n; d++ {
			s := rt.shardOf(core.NodeID(d))
			if d < int(rt.bounds[s]) || d >= int(rt.bounds[s+1]) {
				t.Fatalf("n=%d shards=%d: dst %d mapped to shard %d with bounds [%d,%d)",
					tc.n, tc.shards, d, s, rt.bounds[s], rt.bounds[s+1])
			}
		}
	}
}
