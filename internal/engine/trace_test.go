package engine

import (
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/trace"
)

// TestPhaseTimingsAlwaysOn checks that the per-phase RoundStats fields
// are populated even without a tracer (they are cheap wall-clock
// deltas), while BarrierWait stays 0 — it is sampled only under Trace.
func TestPhaseTimingsAlwaysOn(t *testing.T) {
	const n, hops = 8, 12
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{n: n, hops: hops}
	}
	stats, err := RunOnce(nodes, Options{MaxRounds: hops + 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range stats.PerRound {
		if rs.Compute <= 0 {
			t.Fatalf("round %d: Compute = %v, want > 0", rs.Round, rs.Compute)
		}
		if rs.Exchange <= 0 {
			t.Fatalf("round %d: Exchange = %v, want > 0", rs.Round, rs.Exchange)
		}
		// MemTransport completes the round with the parallel scatter.
		if rs.Scatter <= 0 || rs.Scatter > rs.Exchange {
			t.Fatalf("round %d: Scatter = %v, want in (0, Exchange=%v]", rs.Round, rs.Scatter, rs.Exchange)
		}
		if rs.Compute+rs.Exchange > rs.Wall {
			t.Fatalf("round %d: Compute %v + Exchange %v exceeds Wall %v", rs.Round, rs.Compute, rs.Exchange, rs.Wall)
		}
		if rs.BarrierWait != 0 {
			t.Fatalf("round %d: BarrierWait = %v without a tracer, want 0", rs.Round, rs.BarrierWait)
		}
	}
}

// TestTraceSpansPerRound runs a traced ring and checks the recorder
// holds the round envelope plus the phase breakdown for every round,
// with the arg-word encoding the exporter documents.
func TestTraceSpansPerRound(t *testing.T) {
	const n, hops = 8, 12
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &ringNode{n: n, hops: hops}
	}
	rec := trace.NewRecorder(1024)
	stats, err := RunOnce(nodes, Options{MaxRounds: hops + 8, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}

	byCat := map[string][]trace.Span{}
	for _, s := range rec.Spans() {
		byCat[s.Cat] = append(byCat[s.Cat], s)
	}
	if got := len(byCat[trace.CatRound]); got != stats.Rounds {
		t.Fatalf("%d round spans for %d rounds", got, stats.Rounds)
	}
	// MemTransport rounds break down into compute + exchange + scatter.
	if got := len(byCat[trace.CatPhase]); got != 3*stats.Rounds {
		t.Fatalf("%d phase spans for %d rounds, want %d", got, stats.Rounds, 3*stats.Rounds)
	}

	var totalMsgs uint64
	for i, s := range byCat[trace.CatRound] {
		if s.Round != int64(i) {
			t.Fatalf("round span %d carries Round %d", i, s.Round)
		}
		if s.Lane != trace.LaneRounds || s.Name != trace.NameRound {
			t.Fatalf("round span %d: lane %d name %q", i, s.Lane, s.Name)
		}
		if s.Dur <= 0 {
			t.Fatalf("round span %d: Dur %d, want > 0", i, s.Dur)
		}
		totalMsgs += s.Arg
	}
	if totalMsgs != stats.TotalMsgs {
		t.Fatalf("round spans carry %d msgs, stats say %d", totalMsgs, stats.TotalMsgs)
	}

	names := map[string]int{}
	for _, s := range byCat[trace.CatPhase] {
		names[s.Name]++
		if s.Lane != trace.LanePhases {
			t.Fatalf("phase span %q on lane %d", s.Name, s.Lane)
		}
	}
	for _, want := range []string{trace.NameCompute, trace.NameExchange, trace.NameScatter} {
		if names[want] != stats.Rounds {
			t.Fatalf("%d %q spans for %d rounds", names[want], want, stats.Rounds)
		}
	}

	// BarrierWait sampling is on under Trace: the compute spans' arg
	// words carry it, and the stats mirror them.
	sawWait := false
	for _, rs := range stats.PerRound {
		if rs.BarrierWait > 0 {
			sawWait = true
		}
		if rs.BarrierWait > rs.Compute {
			t.Fatalf("round %d: BarrierWait %v exceeds Compute %v", rs.Round, rs.BarrierWait, rs.Compute)
		}
	}
	if !sawWait {
		t.Fatal("no round sampled a positive BarrierWait under Trace")
	}
}

// TestTraceMultiRankLoopback checks the rank-merge path the binaries
// use: one recorder per rank of a loopback cluster, all feeding one
// timeline with distinct rank tags.
func TestTraceMultiRankLoopback(t *testing.T) {
	const n, ranks = 8, 2
	transports, err := LoopbackCluster(ranks, "unix", 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*trace.Recorder, ranks)
	for i := 0; i < ranks; i++ {
		recs[i] = trace.NewRecorder(256)
		recs[i].SetRank(i)
	}

	// Bind blocks until all peers connect, so every rank's New must run
	// concurrently — the same shape the ccnode binary has.
	errs := make(chan error, ranks)
	for i := 0; i < ranks; i++ {
		go func(i int) {
			eng, err := New(n, Options{Transport: transports[i], Trace: recs[i], MaxRounds: 64})
			if err != nil {
				errs <- err
				return
			}
			defer eng.Close()
			nodes := make([]Node, n)
			for j := range nodes {
				nodes[j] = &ringNode{n: n, hops: 10}
			}
			_, err = eng.Run(t.Context(), nodes)
			errs <- err
		}(i)
	}
	for i := 0; i < ranks; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i, rec := range recs {
		if rec.Len() == 0 {
			t.Fatalf("rank %d recorded no spans", i)
		}
		if rec.Rank() != i {
			t.Fatalf("rank %d recorder tagged %d", i, rec.Rank())
		}
	}
}

func BenchmarkTracedRound(b *testing.B) {
	const n = 64
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = funcNode(func(ctx *Ctx, r core.Round, inbox []Message) error {
			if r == 0 {
				return ctx.Send((ctx.ID()+1)%core.NodeID(n), 1)
			}
			return nil
		})
	}
	rec := trace.NewRecorder(0)
	e, err := New(n, Options{Trace: rec})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(b.Context(), nodes); err != nil {
			b.Fatal(err)
		}
	}
}
