// Test-only fault-injection seam. Production runs never install hooks,
// so the round loop pays exactly one nil check per hook site (a
// package-level pointer load); internal/faults installs a TestHooks to
// stall workers, fail handlers at chosen (node, round) coordinates, and
// observe round barriers without the engine carrying any test logic.
package engine

import "github.com/paper-repo-growth/doryp20/internal/core"

// TestHooks is the set of fault-injection points the engine exposes to
// tests (see internal/faults). Every field is optional; a nil hook
// costs nothing at its call site beyond the nil check.
type TestHooks struct {
	// BarrierEnter fires at the top of every round barrier, before the
	// cancellation check and the round's phases, with the round about to
	// execute. Fault plans use it to count rounds and to stall the run
	// loop at a precise barrier.
	BarrierEnter func(r core.Round)
	// NodeError fires before each node handler; returning a non-nil
	// error replaces the handler call and fails the run exactly as a
	// handler error would.
	NodeError func(id core.NodeID, r core.Round) error
	// WorkerPhase fires on each worker goroutine as it picks up a phase
	// command (phase 0 = node handlers, phase 1 = scatter) — a stall
	// point inside the parallel phases themselves.
	WorkerPhase func(worker, phase int)
}

// testHooks is the installed hook set; nil in production.
var testHooks *TestHooks

// SetTestHooks installs (or, with nil, removes) the fault-injection
// hooks. Test-only: it must not be called while any engine is running,
// and tests that install hooks must remove them before finishing.
func SetTestHooks(h *TestHooks) { testHooks = h }
