package engine

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// FuzzFrame feeds arbitrary bytes to the socket transport's frame
// decoder pipeline — readFrame plus every kind-specific body decoder —
// and requires corrupt, truncated, or adversarial input to surface as
// an error, never a panic, and never an allocation proportional to a
// corrupt length claim (readFrame grows its payload buffer only as
// bytes actually arrive). Valid frames in the seed corpus must still
// decode, so the fuzzer also guards the codec round trip.
func FuzzFrame(f *testing.F) {
	f.Add(encodeHello(helloBody{version: frameVersion, n: 64, ranks: 2, rank: 1, lo: 32, hi: 64, bitsPerLink: 64, msgBits: 64}))
	f.Add(encodeRound(0, 3, []wireMsg{{dst: 1, src: 0, payload: 42}, {dst: 2, src: 0, payload: 7}}))
	f.Add(encodeGather(1, 2, 2, 2, 4, []int64{1, -1, 2, -2}))
	f.Add(encodeAbort(1, errors.New("handler failed")))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // absurd length prefix
	f.Add(make([]byte, 16))                                       // short zero frame

	f.Fuzz(func(t *testing.T, data []byte) {
		h, cr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch h.kind {
		case frameHello:
			_, _ = decodeHelloBody(cr)
		case frameRound:
			_, _ = decodeRoundBody(cr, nil, 64, 0, 64)
		case frameGather:
			_, _ = decodeGatherBody(cr, 2, 2, 4)
		case frameAbort:
			_, _ = decodeAbortBody(cr)
		}
	})
}

// TestFrameRoundTrip pins the codec on well-formed frames: every kind
// encodes and decodes to identical values with a verified trailer.
func TestFrameRoundTrip(t *testing.T) {
	hello := helloBody{version: frameVersion, n: 17, ranks: 3, rank: 2, lo: 12, hi: 17, bitsPerLink: 256, msgBits: 64}
	h, cr, err := readFrame(bytes.NewReader(encodeHello(hello)[8:]))
	_ = h
	if err == nil {
		t.Fatalf("readFrame on prefix-stripped bytes must fail (it consumed body bytes as a length)")
	}
	h, cr, err = readFrame(bytes.NewReader(encodeHello(hello)))
	if err != nil || h.kind != frameHello || h.rank != 2 {
		t.Fatalf("hello header = %+v, err %v", h, err)
	}
	if got, err := decodeHelloBody(cr); err != nil || got != hello {
		t.Fatalf("hello body = %+v, err %v, want %+v", got, err, hello)
	}

	msgs := []wireMsg{{dst: 3, src: 1, payload: 99}, {dst: 0, src: 2, payload: 1}}
	h, cr, err = readFrame(bytes.NewReader(encodeRound(0, core.Round(7), msgs)))
	if err != nil || h.kind != frameRound || h.seq != 7 {
		t.Fatalf("round header = %+v, err %v", h, err)
	}
	got, err := decodeRoundBody(cr, nil, 4, 0, 4)
	if err != nil || len(got) != 2 || got[0] != msgs[0] || got[1] != msgs[1] {
		t.Fatalf("round body = %v, err %v, want %v", got, err, msgs)
	}

	rows := []int64{5, 6, 7, 8}
	h, cr, err = readFrame(bytes.NewReader(encodeGather(1, 4, 2, 1, 3, rows)))
	if err != nil || h.kind != frameGather || h.seq != 4 {
		t.Fatalf("gather header = %+v, err %v", h, err)
	}
	if gr, err := decodeGatherBody(cr, 2, 1, 3); err != nil || len(gr) != 4 || gr[0] != 5 || gr[3] != 8 {
		t.Fatalf("gather body = %v, err %v, want %v", gr, err, rows)
	}

	h, cr, err = readFrame(bytes.NewReader(encodeAbort(2, errors.New("boom"))))
	if err != nil || h.kind != frameAbort {
		t.Fatalf("abort header = %+v, err %v", h, err)
	}
	if msg, err := decodeAbortBody(cr); err != nil || msg != "boom" {
		t.Fatalf("abort body = %q, err %v, want \"boom\"", msg, err)
	}
}

// TestFrameRejectsCorruption pins the loud-failure paths a fuzzer can
// only probabilistically reach: bit flips must trip the integrity
// trailer, truncation must read as an error, impersonated sources and
// out-of-range destinations must be rejected.
func TestFrameRejectsCorruption(t *testing.T) {
	valid := encodeRound(0, 1, []wireMsg{{dst: 1, src: 0, payload: 42}})

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-9] ^= 0x01 // inside the body, before the trailer
	if _, cr, err := readFrame(bytes.NewReader(flipped)); err == nil {
		if _, err := decodeRoundBody(cr, nil, 4, 0, 4); err == nil {
			t.Error("bit-flipped round frame decoded cleanly")
		}
	}

	if _, _, err := readFrame(bytes.NewReader(valid[:len(valid)-3])); err == nil {
		t.Error("truncated frame read cleanly")
	}

	if _, _, err := readFrame(io.LimitReader(bytes.NewReader(valid), 8)); err == nil {
		t.Error("length-prefix-only frame read cleanly")
	}

	// src 0 impersonated from a rank owning [2, 4).
	if _, cr, err := readFrame(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid frame: %v", err)
	} else if _, err := decodeRoundBody(cr, nil, 4, 2, 4); err == nil {
		t.Error("round frame with an out-of-range source decoded cleanly")
	}

	// dst 1 with n=1 is out of range.
	if _, cr, err := readFrame(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid frame: %v", err)
	} else if _, err := decodeRoundBody(cr, nil, 1, 0, 1); err == nil {
		t.Error("round frame with an out-of-range destination decoded cleanly")
	}
}
