// Checkpoint serialization for the hopset construction kernel and its
// products. ConstructKernel implements clique.Checkpointable: its
// inter-pass state is the resolved Params, the sampled hub list, the
// rounded base adjacency, the current hub distance columns, and the
// remaining product count — all plain data once the in-flight pass has
// been harvested at a pass boundary. The finished *Hopset itself is
// never serialized by the kernel: the done state re-runs assemble on
// restore, which is deterministic given the serialized fields.
package hopset

import (
	"fmt"
	"io"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// kernelStateVersion stamps the ConstructKernel state blob.
const kernelStateVersion uint64 = 1

// WriteParams encodes p to the ckptio writer — shared with the
// approximate shortest-path kernels in internal/algo, whose state
// embeds hopset parameters.
func WriteParams(w *ckptio.Writer, p Params) {
	w.I64(int64(p.Beta))
	w.F64(p.Eps)
	w.F64(p.HubRate)
	w.I64(p.Seed)
}

// ReadParams decodes parameters written by WriteParams.
func ReadParams(r *ckptio.Reader) Params {
	return Params{
		Beta:    int(r.I64()),
		Eps:     r.F64(),
		HubRate: r.F64(),
		Seed:    r.I64(),
	}
}

// WriteHopset encodes hs (nil allowed) to the ckptio writer.
func WriteHopset(w *ckptio.Writer, hs *Hopset) {
	if hs == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(int64(hs.Beta))
	w.F64(hs.Eps)
	w.NodeIDs(hs.Hubs)
	matmul.WriteMatrix(w, hs.Shortcuts)
	matmul.WriteMatrix(w, hs.Base)
}

// ReadHopset decodes a hopset written by WriteHopset (nil when
// absent).
func ReadHopset(r *ckptio.Reader) (*Hopset, error) {
	if !r.Bool() {
		return nil, r.Err()
	}
	hs := &Hopset{}
	hs.Beta = int(r.I64())
	hs.Eps = r.F64()
	hs.Hubs = r.NodeIDs()
	var err error
	if hs.Shortcuts, err = matmul.ReadMatrix(r); err != nil {
		return nil, err
	}
	if hs.Base, err = matmul.ReadMatrix(r); err != nil {
		return nil, err
	}
	return hs, r.Err()
}

// SnapshotState serializes the construction's inter-pass state. Called
// at pass boundaries only (clique.Checkpointable); the in-flight
// product, if any, is harvested first.
func (k *ConstructKernel) SnapshotState(w io.Writer) error {
	if err := k.harvest(); err != nil {
		return err
	}
	cw := ckptio.NewWriter(w)
	cw.U64(kernelStateVersion)
	cw.I64(int64(k.stage))
	WriteParams(cw, k.params)
	cw.NodeIDs(k.hubs)
	matmul.WriteMatrix(cw, k.base)
	matmul.WriteDense(cw, k.cur)
	cw.I64(int64(k.remaining))
	cw.SumTrailer()
	return cw.Err()
}

// RestoreState loads state written by SnapshotState into a fresh
// kernel. A kernel that has already started returns
// clique.ErrKernelStarted; a done-state blob re-runs the deterministic
// assembly so Result is available immediately.
func (k *ConstructKernel) RestoreState(r io.Reader) error {
	if k.stage != 0 {
		return clique.ErrKernelStarted
	}
	cr := ckptio.NewReader(r)
	if v := cr.U64(); cr.Err() == nil && v != kernelStateVersion {
		return fmt.Errorf("hopset: kernel state version %d, this build reads version %d", v, kernelStateVersion)
	}
	stage := int(cr.I64())
	params := ReadParams(cr)
	hubs := cr.NodeIDs()
	base, err := matmul.ReadMatrix(cr)
	if err != nil {
		return err
	}
	cur, err := matmul.ReadDense(cr)
	if err != nil {
		return err
	}
	remaining := int(cr.I64())
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return err
	}
	if stage < 1 || stage > 2 {
		return fmt.Errorf("hopset: kernel state has implausible stage %d", stage)
	}
	k.stage, k.params, k.hubs, k.base, k.cur, k.remaining = stage, params, hubs, base, cur, remaining
	if stage == 2 {
		hs, err := assemble(params, hubs, base, cur)
		if err != nil {
			return err
		}
		k.hs = hs
	}
	return nil
}
