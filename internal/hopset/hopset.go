// Package hopset constructs (β, ε)-hopsets — the structure behind the
// Dory-Parter poly(log log n)-round shortest-path pipeline. A hopset H
// for a weighted graph G is a set of weighted shortcut edges such that
// β-hop-limited distances in G ∪ H already approximate true distances:
//
//	d_G(u,v) <= d^(β)_{G∪H}(u,v) <= (1+ε) · d_G(u,v)
//
// The construction here is the single-level sampling scheme computed
// with the repo's own machinery ("hopsets from sparse products"):
// round the edge weights up to a few significant bits (internal/core's
// RoundUpSig — this is where the ε enters, and it is what lets the
// paper pack values into o(log n)-bit fields), sample a hub set,
// compute β-hop-limited distances from every hub by β sparse-dense
// (min,+) products on the round engine, and emit a symmetric star of
// shortcut edges between every vertex and every hub it can reach
// within β hops. Each shortcut carries a genuine (rounded-) path
// weight, so augmented distances never undershoot; the upper bound
// holds deterministically whenever every vertex is a hub (HubRate 1;
// the default auto rate approaches this for small n) and
// β >= ceil((n-1)/β) — the default β = ceil(sqrt(n-1)) + 1 regime —
// and with high probability over the sampling seed otherwise.
//
// Construct runs the products distributedly as a clique session kernel
// (ConstructKernel, one engine pass per hop); ConstructRef is the
// sequential oracle. Augment merges the shortcuts into an adjacency
// matrix via the entrywise (min,+) sum, yielding the matrix the
// approximate shortest-path kernels in internal/algo relax over.
package hopset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// Params configures a hopset construction. The zero value selects the
// defaults for the target graph: β = DefaultBeta(n), exact weights
// (no rounding), the auto hub rate, and seed 0.
type Params struct {
	// Beta is the hop bound β: shortcut edges carry β-hop-limited
	// distances, and the (1+ε) guarantee speaks about β-hop distances
	// in the augmented graph. 0 selects DefaultBeta(n); negative values
	// are rejected.
	Beta int
	// Eps is the approximation slack ε >= 0: edge weights are rounded
	// up to core.SigBitsFor(Eps) significant bits before the
	// construction, inflating every path weight by at most (1+ε).
	// 0 keeps weights exact (an (β, 0)-hopset).
	Eps float64
	// HubRate is the independent per-vertex sampling probability of the
	// hub set, in [0, 1]. 0 selects the auto rate
	// min(1, 2·ln(n+1)/Beta), which reaches 1 — every vertex a hub,
	// and with it the deterministic guarantee — for small n.
	HubRate float64
	// Seed drives the hub sampling; the same (graph, Params) pair
	// always yields the identical hopset.
	Seed int64
}

// DefaultBeta returns the default hop bound for an n-vertex graph:
// ceil(sqrt(n-1)) + 1 (at least 1). This is the single-level hopset
// regime — it satisfies β >= ceil((n-1)/β) + 1, so β relaxation steps
// over the augmented graph cover every window decomposition of a
// shortest path with one hop to spare.
func DefaultBeta(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n-1)))) + 1
}

// withDefaults validates p and resolves the zero-value fields for an
// n-vertex graph.
func (p Params) withDefaults(n int) (Params, error) {
	if p.Beta < 0 {
		return p, fmt.Errorf("hopset: negative Beta %d", p.Beta)
	}
	if p.Eps < 0 || math.IsNaN(p.Eps) {
		return p, fmt.Errorf("hopset: Eps %v outside [0, inf)", p.Eps)
	}
	if p.HubRate < 0 || p.HubRate > 1 || math.IsNaN(p.HubRate) {
		return p, fmt.Errorf("hopset: HubRate %v outside [0, 1]", p.HubRate)
	}
	if p.Beta == 0 {
		p.Beta = DefaultBeta(n)
	}
	if p.HubRate == 0 {
		p.HubRate = math.Min(1, 2*math.Log(float64(n+1))/float64(p.Beta))
	}
	return p, nil
}

// Hopset is a constructed (β, ε)-hopset: the sampled hubs, the
// symmetric shortcut star, and the rounded base adjacency the
// shortcuts were computed on (the matrix Augment pairs them with).
type Hopset struct {
	// Beta is the resolved hop bound the construction used.
	Beta int
	// Eps is the approximation slack the weights were rounded for.
	Eps float64
	// Hubs lists the sampled hub vertices in increasing order.
	Hubs []core.NodeID
	// Shortcuts is the n x n symmetric (min,+) shortcut matrix: entry
	// (v, s) is the β-hop-limited rounded distance between v and hub s
	// (absent when unreachable within β hops; diagonal entries are
	// omitted).
	Shortcuts *matmul.Matrix
	// Base is the reflexive (min,+) adjacency matrix of the input
	// graph after ε-rounding — the matrix the shortcut weights are
	// path weights of.
	Base *matmul.Matrix
}

// Augment merges a hopset's shortcut edges into m via the entrywise
// (min,+) sum: parallel edges keep the cheaper weight. Passing
// hs.Base yields the augmented adjacency the approximate shortest-path
// kernels relax over; any other same-size (min,+) matrix (e.g. an
// already-augmented one) works too.
func Augment(m *matmul.Matrix, hs *Hopset) (*matmul.Matrix, error) {
	return matmul.Add(m, hs.Shortcuts)
}

// roundedBase validates g and builds its reflexive (min,+) adjacency
// with every arc weight rounded up to the significant-bit grid for
// eps. Unweighted graphs are treated as unit-weighted; negative
// weights are rejected.
func roundedBase(g *graph.CSR, eps float64) (*matmul.Matrix, error) {
	gw := g.WithUnitWeights()
	for _, w := range gw.Weights {
		if w < 0 {
			return nil, fmt.Errorf("hopset: negative weight %d", w)
		}
	}
	base, err := matmul.FromGraph(gw, core.MinPlus(), true)
	if err != nil {
		return nil, err
	}
	if sig := core.SigBitsFor(eps); sig > 0 {
		// FromGraph allocates Vals freshly, so in-place rounding is safe.
		for i, v := range base.Vals {
			base.Vals[i] = core.RoundUpSig(v, sig)
		}
	}
	return base, nil
}

// sampleHubs draws the hub set: each vertex independently with
// probability rate from a PRNG seeded with seed, in increasing vertex
// order (so the result is sorted and deterministic per seed).
func sampleHubs(n int, rate float64, seed int64) []core.NodeID {
	if rate >= 1 {
		hubs := make([]core.NodeID, n)
		for v := range hubs {
			hubs[v] = core.NodeID(v)
		}
		return hubs
	}
	rng := rand.New(rand.NewSource(seed))
	var hubs []core.NodeID
	for v := 0; v < n; v++ {
		if rng.Float64() < rate {
			hubs = append(hubs, core.NodeID(v))
		}
	}
	return hubs
}

// hubIndicator builds the n x K dense seed matrix of the limited-hop
// products: column j is hub j's indicator (0 at the hub, Inf
// elsewhere).
func hubIndicator(n int, hubs []core.NodeID) *matmul.Dense {
	b := matmul.NewDense(n, len(hubs), core.MinPlus())
	for j, s := range hubs {
		b.Row(s)[j] = 0
	}
	return b
}

// shortcutEntries converts the final hub-distance columns (d[v][j] =
// β-hop rounded distance between v and hub j) into the symmetric
// shortcut star: both arcs (v, hub_j) and (hub_j, v) for every finite
// off-diagonal entry.
func shortcutEntries(hubs []core.NodeID, d *matmul.Dense) []matmul.Entry {
	var es []matmul.Entry
	for v := 0; v < d.N; v++ {
		row := d.Row(core.NodeID(v))
		for j, w := range row {
			s := hubs[j]
			if w >= core.InfWeight || s == core.NodeID(v) {
				continue
			}
			es = append(es,
				matmul.Entry{Row: core.NodeID(v), Col: s, Val: w},
				matmul.Entry{Row: s, Col: core.NodeID(v), Val: w})
		}
	}
	return es
}

// assemble packs the pieces into a Hopset.
func assemble(p Params, hubs []core.NodeID, base *matmul.Matrix, d *matmul.Dense) (*Hopset, error) {
	sc, err := matmul.FromEntries(base.N, base.Sr, shortcutEntries(hubs, d))
	if err != nil {
		return nil, err
	}
	return &Hopset{Beta: p.Beta, Eps: p.Eps, Hubs: hubs, Shortcuts: sc, Base: base}, nil
}

// ConstructRef is the sequential oracle for the hopset construction:
// identical sampling and rounding, with the β limited-hop (min,+)
// products computed by the sequential matmul references instead of
// engine passes. Construct (the distributed kernel) must agree with it
// bit for bit.
func ConstructRef(g *graph.CSR, p Params) (*Hopset, error) {
	if g == nil {
		return nil, fmt.Errorf("hopset: ConstructRef requires a graph")
	}
	p, err := p.withDefaults(g.N)
	if err != nil {
		return nil, err
	}
	base, err := roundedBase(g, p.Eps)
	if err != nil {
		return nil, err
	}
	hubs := sampleHubs(g.N, p.HubRate, p.Seed)
	d := hubIndicator(g.N, hubs)
	if len(hubs) > 0 {
		for i := 0; i < p.Beta; i++ {
			if d, err = matmul.MulDenseRef(base, d); err != nil {
				return nil, err
			}
		}
	}
	return assemble(p, hubs, base, d)
}
