package hopset

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// ConstructKernel computes a (β, ε)-hopset distributedly as a clique
// session pipeline stage: after rounding the weights and sampling the
// hub set locally (both deterministic given Params), it runs β
// sparse-dense (min,+) products on the session engine — one engine
// pass per hop, each product advancing every hub's distance column by
// one hop — and harvests the shortcut star from the final columns.
// It is the stage the approximate shortest-path kernels in
// internal/algo embed as their stage 1; run standalone (registry name
// "hopset") its Result is the *Hopset.
type ConstructKernel struct {
	params Params

	stage     int // 0: unstarted, 1: products, 2: done
	base      *matmul.Matrix
	hubs      []core.NodeID
	cur       *matmul.Dense
	pass      *matmul.Pass
	remaining int
	hs        *Hopset
	gather    engine.Gatherer
}

// SetGatherer injects the session transport's all-gather so every
// product harvest assembles the full hub distance columns on every
// rank (clique TransportAware hook).
func (k *ConstructKernel) SetGatherer(g engine.Gatherer) { k.gather = g }

// NewConstructKernel returns a hopset construction kernel with the
// given parameters (zero-value fields select the defaults; see
// Params). Validation happens at the first Nodes call, surfacing
// through Session.Run.
func NewConstructKernel(p Params) *ConstructKernel {
	return &ConstructKernel{params: p}
}

// Name identifies the kernel.
func (k *ConstructKernel) Name() string { return "hopset" }

// Nodes starts the construction on the first call, then returns one
// limited-hop product pass per call until β products have run, and
// finally harvests the shortcut matrix.
func (k *ConstructKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.stage == 0 {
		if err := k.start(g); err != nil {
			return nil, err
		}
	}
	if k.stage == 1 {
		if err := k.harvest(); err != nil {
			return nil, err
		}
		if k.remaining > 0 {
			pass, err := matmul.NewDensePass(k.base, k.cur, false)
			if err != nil {
				return nil, err
			}
			pass.SetGatherer(k.gather)
			k.pass = pass
			return pass.Nodes(), nil
		}
		hs, err := assemble(k.params, k.hubs, k.base, k.cur)
		if err != nil {
			return nil, err
		}
		k.hs = hs
		k.stage = 2
	}
	return nil, nil
}

// harvest folds the completed in-flight product (if any) into the hub
// distance columns, gathering it across transport ranks first.
// Idempotent, so checkpointing can force it at a pass boundary.
func (k *ConstructKernel) harvest() error {
	if k.pass == nil {
		return nil
	}
	if err := k.pass.Gather(); err != nil {
		return err
	}
	k.cur = k.pass.Dense()
	k.pass = nil
	k.remaining--
	return nil
}

// start validates the inputs and prepares the product loop.
func (k *ConstructKernel) start(g *graph.CSR) error {
	if g == nil {
		return fmt.Errorf("hopset: %s kernel requires a graph-bound session (clique.New, not NewSize)", k.Name())
	}
	p, err := k.params.withDefaults(g.N)
	if err != nil {
		return err
	}
	k.params = p
	if k.base, err = roundedBase(g, p.Eps); err != nil {
		return err
	}
	k.hubs = sampleHubs(g.N, p.HubRate, p.Seed)
	k.cur = hubIndicator(g.N, k.hubs)
	k.remaining = p.Beta
	if len(k.hubs) == 0 {
		// No hubs, no products: the hopset is (validly) empty.
		k.remaining = 0
	}
	k.stage = 1
	return nil
}

// MaxRoundsHint forwards the in-flight product's round-bound hint —
// essential here, because a hub-distance column matrix with K hubs
// packs up to K words per row.
func (k *ConstructKernel) MaxRoundsHint() int {
	if k.pass == nil {
		return 0
	}
	return k.pass.MaxRoundsHint()
}

// Result returns the constructed hopset (*Hopset), nil before
// completion.
func (k *ConstructKernel) Result() any {
	if k.hs == nil {
		return nil
	}
	return k.hs
}

// Hopset returns the typed result, nil before completion.
func (k *ConstructKernel) Hopset() *Hopset { return k.hs }

// Construct computes a (β, ε)-hopset of g on the round engine by
// running a ConstructKernel on a single-use clique session; callers
// composing further stages (the point of hopsets) should run the
// kernel on their own session instead. The returned stats are the
// engine's accounting of the β limited-hop products.
func Construct(g *graph.CSR, p Params, opts engine.Options) (*Hopset, *engine.Stats, error) {
	s, err := clique.New(g, clique.WithEngineOptions(opts))
	if err != nil {
		return nil, nil, err
	}
	k := NewConstructKernel(p)
	stats, err := clique.OneShot(s, k)
	if err != nil {
		return nil, stats, err
	}
	return k.Hopset(), stats, nil
}

// init registers the construction kernel so ccbench -kernel, the
// degenerate-graph sweep, and the cancellation tests pick it up.
func init() {
	clique.Register("hopset", func(*graph.CSR) (clique.Kernel, error) {
		return NewConstructKernel(Params{}), nil
	})
}
