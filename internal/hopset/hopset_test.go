package hopset

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
)

// jacobiAug computes t-hop-limited distances from src over an
// augmented (min,+) matrix by t Jacobi passes — an independent oracle
// for the hopset property checks (it never touches the matmul product
// code the construction itself uses).
func jacobiAug(m *matmul.Matrix, src core.NodeID, t int) []int64 {
	dist := make([]int64, m.N)
	next := make([]int64, m.N)
	for i := range dist {
		dist[i] = core.InfWeight
	}
	dist[src] = 0
	for p := 0; p < t; p++ {
		copy(next, dist)
		for u := 0; u < m.N; u++ {
			if dist[u] >= core.InfWeight {
				continue
			}
			cols, vals := m.Row(core.NodeID(u))
			for i, v := range cols {
				if cand := dist[u] + vals[i]; cand < next[v] {
					next[v] = cand
				}
			}
		}
		dist, next = next, dist
	}
	return dist
}

// bellmanFordRef is the plain sequential shortest-path oracle on the
// raw input graph (duplicated from internal/algo, which this package
// cannot import without a cycle).
func bellmanFordRef(g *graph.CSR, src core.NodeID) []int64 {
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = core.InfWeight
	}
	dist[src] = 0
	for pass := 0; pass < g.N-1; pass++ {
		changed := false
		for v := 0; v < g.N; v++ {
			if dist[v] >= core.InfWeight {
				continue
			}
			cols, ws := g.Row(core.NodeID(v))
			for i, u := range cols {
				if cand := dist[v] + ws[i]; cand < dist[u] {
					dist[u] = cand
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// matEqual compares the structural fields of two sparse matrices
// (reflect.DeepEqual is unusable on whole matrices: the embedded
// Semiring carries func fields, which are never deeply equal).
func matEqual(a, b *matmul.Matrix) bool {
	return a.N == b.N && a.Sr.Name == b.Sr.Name &&
		reflect.DeepEqual(a.Rows, b.Rows) &&
		reflect.DeepEqual(a.Cols, b.Cols) &&
		reflect.DeepEqual(a.Vals, b.Vals)
}

// TestConstructMatchesRef: the distributed construction must agree bit
// for bit with the sequential oracle — same hubs, same shortcut
// matrix, same rounded base — across densities, epsilons, and hub
// rates (including sampled ones).
func TestConstructMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(20)
		p := []float64{0.1, 0.3, 0.7}[trial%3]
		seed := rng.Int63()
		g := graph.RandomGNPWeighted(n, p, 30, seed)
		params := Params{
			Eps:     []float64{0, 0.5, 0.1}[trial%3],
			HubRate: []float64{0, 0.4, 1}[trial%3],
			Seed:    seed + 7,
		}
		want, err := ConstructRef(g, params)
		if err != nil {
			t.Fatalf("trial %d: ConstructRef: %v", trial, err)
		}
		got, stats, err := Construct(g, params, engine.Options{})
		if err != nil {
			t.Fatalf("trial %d: Construct: %v", trial, err)
		}
		if got.Beta != want.Beta || got.Eps != want.Eps {
			t.Fatalf("trial %d: params diverged: got (%d,%v), want (%d,%v)",
				trial, got.Beta, got.Eps, want.Beta, want.Eps)
		}
		if !reflect.DeepEqual(got.Hubs, want.Hubs) {
			t.Fatalf("trial %d: hubs diverged: %v vs %v", trial, got.Hubs, want.Hubs)
		}
		if !matEqual(got.Shortcuts, want.Shortcuts) {
			t.Fatalf("trial %d: shortcut matrices diverged", trial)
		}
		if !matEqual(got.Base, want.Base) {
			t.Fatalf("trial %d: base matrices diverged", trial)
		}
		if err := got.Shortcuts.Validate(); err != nil {
			t.Fatalf("trial %d: invalid shortcut matrix: %v", trial, err)
		}
		if g.NumEdges() > 0 && len(want.Hubs) > 0 && stats.TotalMsgs == 0 {
			t.Fatalf("trial %d: distributed construction routed no messages", trial)
		}
	}
}

// TestHopsetProperty verifies the defining (β, ε) guarantee end to
// end: β-hop-limited distances over the augmented matrix bracket the
// true distances, d* <= d^(β)_{G∪H} <= (1+ε)·d*, on random weighted
// graphs. The hub rate is pinned to 1: with every vertex a hub the
// bracketing is a deterministic window-compression argument, which is
// what a hard assertion needs (the auto rate dips just below 1 at
// several of these sizes; sampled rates are exercised by
// TestConstructMatchesRef and the sampled-hub test in internal/algo).
func TestHopsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2020))
	for _, eps := range []float64{0, 0.5, 0.1} {
		for trial := 0; trial < 4; trial++ {
			n := 5 + rng.Intn(25)
			seed := rng.Int63()
			g := graph.RandomGNPWeighted(n, 0.2, 50, seed)
			hs, err := ConstructRef(g, Params{Eps: eps, HubRate: 1, Seed: seed})
			if err != nil {
				t.Fatalf("eps=%v trial %d: %v", eps, trial, err)
			}
			aug, err := Augment(hs.Base, hs)
			if err != nil {
				t.Fatalf("eps=%v trial %d: Augment: %v", eps, trial, err)
			}
			for src := 0; src < n; src++ {
				want := bellmanFordRef(g, core.NodeID(src))
				got := jacobiAug(aug, core.NodeID(src), hs.Beta)
				for v := 0; v < n; v++ {
					if (want[v] >= core.InfWeight) != (got[v] >= core.InfWeight) {
						t.Fatalf("eps=%v n=%d seed=%d: reachability of %d->%d diverged (true %d, hopset %d)",
							eps, n, seed, src, v, want[v], got[v])
					}
					if want[v] >= core.InfWeight {
						continue
					}
					if got[v] < want[v] {
						t.Fatalf("eps=%v n=%d seed=%d: d(%d,%d) undershot: %d < true %d",
							eps, n, seed, src, v, got[v], want[v])
					}
					if float64(got[v]) > (1+eps)*float64(want[v]) {
						t.Fatalf("eps=%v n=%d seed=%d: d(%d,%d) = %d exceeds (1+eps)*%d",
							eps, n, seed, src, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestAugmentMergesCheaperEdge: augmentation is the entrywise (min,+)
// sum — a shortcut cheaper than an existing edge replaces it, an
// expensive one is ignored, and everything else is unioned.
func TestAugmentMergesCheaperEdge(t *testing.T) {
	g := graph.Path(4).WithUniformRandomWeights(1, 1) // unit path 0-1-2-3
	hs, err := ConstructRef(g, Params{Beta: 2})
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Augment(hs.Base, hs)
	if err != nil {
		t.Fatal(err)
	}
	if err := aug.Validate(); err != nil {
		t.Fatal(err)
	}
	// With every vertex a hub and beta = 2, the 2-hop shortcut 0-2 must
	// appear with weight 2 while the original unit edges stay at 1.
	if w := aug.At(0, 2); w != 2 {
		t.Fatalf("aug[0][2] = %d, want 2-hop shortcut weight 2", w)
	}
	if w := aug.At(0, 1); w != 1 {
		t.Fatalf("aug[0][1] = %d, want original unit edge", w)
	}
	if w := aug.At(0, 3); w != core.InfWeight {
		t.Fatalf("aug[0][3] = %d, want absent (3 hops > beta)", w)
	}
}

// TestConstructDegenerateInputs: tiny and edgeless graphs must
// construct valid (possibly empty) hopsets without error.
func TestConstructDegenerateInputs(t *testing.T) {
	for name, g := range map[string]*graph.CSR{
		"n1":       graph.Path(1),
		"edgeless": graph.RandomGNP(5, 0, 1).WithUnitWeights(),
		"pair":     graph.Path(2).WithUniformRandomWeights(2, 9),
	} {
		hs, _, err := Construct(g, Params{}, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := hs.Shortcuts.Validate(); err != nil {
			t.Fatalf("%s: invalid shortcuts: %v", name, err)
		}
		if hs.Shortcuts.N != g.N || hs.Base.N != g.N {
			t.Fatalf("%s: dimension mismatch", name)
		}
	}
}

// TestNoHubsYieldsEmptyHopset: HubRate so low that sampling picks
// nothing must yield an empty (but valid) hopset without spending
// engine products.
func TestNoHubsYieldsEmptyHopset(t *testing.T) {
	g := graph.RandomGNPWeighted(12, 0.4, 9, 5)
	hs, stats, err := Construct(g, Params{HubRate: 1e-12, Seed: 1}, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs.Hubs) != 0 || hs.Shortcuts.NNZ() != 0 {
		t.Fatalf("hubs=%v nnz=%d, want empty", hs.Hubs, hs.Shortcuts.NNZ())
	}
	if stats.TotalMsgs != 0 {
		t.Fatalf("empty construction routed %d messages", stats.TotalMsgs)
	}
}

// TestParamsValidation: invalid parameter values must be rejected with
// descriptive errors.
func TestParamsValidation(t *testing.T) {
	g := graph.Path(4).WithUnitWeights()
	for name, p := range map[string]Params{
		"negative beta": {Beta: -1},
		"negative eps":  {Eps: -0.5},
		"rate above 1":  {HubRate: 1.5},
		"negative rate": {HubRate: -0.1},
	} {
		if _, err := ConstructRef(g, p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := ConstructRef(nil, Params{}); err == nil {
		t.Error("nil graph accepted")
	}
	neg := &graph.CSR{N: 2, Offsets: []int32{0, 1, 2}, Targets: []core.NodeID{1, 0}, Weights: []int64{-3, -3}}
	if _, err := ConstructRef(neg, Params{}); err == nil {
		t.Error("negative weights accepted")
	}
}

// TestDefaultBeta pins the default hop bound regime: β(β-1) covers
// n-1, so ceil((n-1)/β) <= β-1 and β relaxation steps always have one
// hop to spare.
func TestDefaultBeta(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 100, 1024} {
		b := DefaultBeta(n)
		if b < 1 {
			t.Fatalf("DefaultBeta(%d) = %d < 1", n, b)
		}
		if n > 2 {
			if windows := (n - 2 + b) / b; windows+1 > b {
				t.Fatalf("DefaultBeta(%d) = %d: ceil((n-1)/beta)+1 = %d exceeds beta", n, b, windows+1)
			}
		}
	}
}
