module github.com/paper-repo-growth/doryp20

go 1.22
