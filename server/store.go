package server

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"

	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/matmul"
	"github.com/paper-repo-growth/doryp20/pkg/api"
)

// graphEntry is one served graph: its immutable CSR, its identity
// (ID + pool version), and the approx-serving state that hangs off it.
type graphEntry struct {
	info api.GraphInfo
	g    *graph.CSR

	// hopsets caches, per ε key, the hopset-augmented adjacency and
	// the relaxation product count that make a RelaxKernel
	// bit-identical to the full approximate pipeline. Guarded by the
	// session pool's per-version serialization: it is only touched
	// while holding the graph's lease.
	hopsets map[string]*hopsetCache

	// closure caches the graph's full transitive closure after the
	// first reachability query — reachability has no ε, so one line per
	// graph suffices. Like hopsets, it is only touched while holding
	// the graph's session lease.
	closure [][]bool

	// coalsMu guards coals, the per-ε admission coalescers.
	coalsMu sync.Mutex
	coals   map[string]*coalescer
}

// hopsetCache is the steady-state fast path for one (graph, ε): the
// augmented (min,+) matrix and the product count of stage 2.
type hopsetCache struct {
	aug      *matmul.Matrix
	beta     int
	products int
}

// idPattern bounds graph IDs to path-safe names.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// errDuplicateID marks add failures on an ID that is already serving;
// the HTTP layer maps it to 409 Conflict.
var errDuplicateID = errors.New("graph id already loaded")

// store is the daemon's graph registry: name -> entry, with a
// monotonic version counter feeding the session pool's key space.
type store struct {
	mu          sync.RWMutex
	byID        map[string]*graphEntry
	nextVersion uint64
}

func newStore() *store {
	return &store{byID: map[string]*graphEntry{}}
}

// add registers g under id (empty selects "g<version>") and returns
// the new entry. Duplicate IDs are rejected — delete first, versions
// are not silently replaced.
func (st *store) add(id string, g *graph.CSR) (*graphEntry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.nextVersion++
	version := st.nextVersion
	if id == "" {
		id = fmt.Sprintf("g%d", version)
	}
	if !idPattern.MatchString(id) {
		return nil, fmt.Errorf("server: invalid graph id %q (want %s)", id, idPattern)
	}
	if _, dup := st.byID[id]; dup {
		return nil, fmt.Errorf("server: graph %q: %w (delete it first)", id, errDuplicateID)
	}
	e := &graphEntry{
		info: api.GraphInfo{
			ID: id, Version: version, N: g.N,
			Edges: g.NumEdges(), Weighted: g.Weighted(),
		},
		g:       g,
		hopsets: map[string]*hopsetCache{},
		coals:   map[string]*coalescer{},
	}
	st.byID[id] = e
	return e, nil
}

// get returns the entry for id, or nil.
func (st *store) get(id string) *graphEntry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.byID[id]
}

// remove unregisters id and returns its entry, or nil when absent.
// New queries fail immediately after remove; the caller then drops the
// pool version, which waits out the current leaseholder.
func (st *store) remove(id string) *graphEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.byID[id]
	delete(st.byID, id)
	return e
}

// list returns every entry sorted by ID.
func (st *store) list() []*graphEntry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	es := make([]*graphEntry, 0, len(st.byID))
	for _, e := range st.byID {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].info.ID < es[j].info.ID })
	return es
}

// coalescerFor returns the admission coalescer of (e, epsKey),
// creating it with the given construction on first use.
func (e *graphEntry) coalescerFor(epsKey string, make func() *coalescer) *coalescer {
	e.coalsMu.Lock()
	defer e.coalsMu.Unlock()
	c, ok := e.coals[epsKey]
	if !ok {
		c = make()
		e.coals[epsKey] = c
	}
	return c
}
