// Package server is ccserve's HTTP serving layer over the clique
// session API — the subsystem that turns the Dory-Parter batch
// pipeline into a long-running query daemon (ROADMAP item 2). It
// layers, podman-style, a thin handler surface over three serving
// components:
//
//   - a session pool keyed by graph version (pool.go): one warm
//     clique.Session per loaded graph, serialized by a per-version
//     lease because Sessions are not concurrency-safe, with engine
//     workers and router slabs amortized across queries;
//   - an admission coalescer per (graph, ε) (coalesce.go): concurrent
//     single-source approximate queries ride one batched
//     ApproxKSourceKernel run — k sources for the price of one
//     pipeline;
//   - a hopset-augmented adjacency cache per (graph, ε) (store.go):
//     after the first approximate query constructs the hopset, every
//     later query runs a RelaxKernel over the cached augmented matrix
//     and pays zero stage-1 rounds, bit-identical to the full
//     pipeline.
//
// Observability streams through clique.WithRoundHook into a
// Prometheus-text /metrics endpoint (metrics.go), and /stats exposes
// per-graph session accounting in the repository's stable
// clique.Stats encoding. The wire types live in pkg/api; pkg/client
// is the Go client.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
	"github.com/paper-repo-growth/doryp20/pkg/api"
)

// DefaultEps is the approximation slack used when an approx-sssp
// request leaves Eps zero.
const DefaultEps = 0.25

// Options configures a Server. The zero value serves with 16-query
// batches, a 2ms admission window, GOMAXPROCS session workers, and a
// 64 MiB upload cap.
type Options struct {
	// MaxBatch bounds how many coalesced single-source queries one
	// batched kernel run carries. <= 0 selects 16.
	MaxBatch int
	// CoalesceWait is the admission window a batch leader holds open
	// before launching: 0 favors single-query latency, a few
	// milliseconds favors batching under concurrent load. < 0 selects
	// the 2ms default; 0 is honored.
	CoalesceWait time.Duration
	// Workers is the per-session engine worker count; 0 selects the
	// GOMAXPROCS default.
	Workers int
	// MaxUploadBytes caps POST /graphs bodies. <= 0 selects 64 MiB.
	MaxUploadBytes int64
}

// Server is the ccserve daemon core: an http.Handler serving the
// graph-management and query endpoints over the session pool. Create
// with New, serve with net/http, and Close after the HTTP layer has
// drained to release the pooled engine workers.
type Server struct {
	opts    Options
	metrics *Metrics
	store   *store
	pool    *sessionPool
	mux     *http.ServeMux
}

// New builds a Server with its own metrics, store, and session pool.
func New(opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 16
	}
	if opts.CoalesceWait < 0 {
		opts.CoalesceWait = 2 * time.Millisecond
	}
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = 64 << 20
	}
	s := &Server{
		opts:    opts,
		metrics: &Metrics{},
		store:   newStore(),
	}
	s.pool = newSessionPool(s.metrics, opts.Workers)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /graphs", s.handleLoadGraph)
	s.mux.HandleFunc("GET /graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /graphs/{id}", s.handleGetGraph)
	s.mux.HandleFunc("DELETE /graphs/{id}", s.handleDeleteGraph)
	s.mux.HandleFunc("POST /graphs/{id}/sssp", s.handleSSSP)
	s.mux.HandleFunc("POST /graphs/{id}/ksource", s.handleKSource)
	s.mux.HandleFunc("POST /graphs/{id}/approx-sssp", s.handleApproxSSSP)
	s.mux.HandleFunc("POST /graphs/{id}/reachable", s.handleReachable)
	// Live profiling. Registered explicitly (the net/http/pprof side
	// effect targets only http.DefaultServeMux): CPU/heap/goroutine
	// profiles and execution traces of the serving daemon under
	// /debug/pprof/, the standard `go tool pprof` target.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP dispatches to the registered handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Metrics returns the server's metrics registry (shared with every
// pooled session's RoundHook).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close releases every pooled session. Call it only after the HTTP
// layer has drained in-flight requests (http.Server.Shutdown): a query
// that still holds a lease is waited out, but new queries fail.
func (s *Server) Close() {
	s.pool.closeAll()
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeErr writes an api.Error body.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.Error{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	resp := api.StatsResponse{
		Graphs: []api.GraphStats{},
		Queries: map[string]uint64{
			"sssp":        snap.SSSPQueries,
			"ksource":     snap.KSourceQueries,
			"approx-sssp": snap.ApproxQueries,
			"reachable":   snap.ReachableQueries,
		},
		KernelRuns: snap.KernelRuns,
	}
	for _, e := range s.store.list() {
		gs := api.GraphStats{GraphInfo: e.info}
		if st, ok := s.pool.stats(e.info.Version); ok {
			gs.Stats = st
		}
		resp.Graphs = append(resp.Graphs, gs)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLoadGraph(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	g, err := graph.LoadEdgeList(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if g.N == 0 {
		writeErr(w, http.StatusBadRequest, "server: refusing a zero-vertex graph")
		return
	}
	e, err := s.store.add(r.URL.Query().Get("name"), g)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errDuplicateID) {
			status = http.StatusConflict
		}
		writeErr(w, status, "%v", err)
		return
	}
	s.metrics.graphsLoaded.Add(1)
	writeJSON(w, http.StatusCreated, e.info)
}

func (s *Server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	resp := api.GraphList{Graphs: []api.GraphInfo{}}
	for _, e := range s.store.list() {
		resp.Graphs = append(resp.Graphs, e.info)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	e := s.store.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e.info)
}

func (s *Server) handleDeleteGraph(w http.ResponseWriter, r *http.Request) {
	e := s.store.remove(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	// Waits out the current leaseholder, then closes the warm session.
	s.pool.drop(e.info.Version)
	s.metrics.graphsLoaded.Add(-1)
	w.WriteHeader(http.StatusNoContent)
}

// decodeBody decodes a JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "server: decoding request: %v", err)
		return false
	}
	return true
}

// checkSources validates 0-based sources against the graph size.
func checkSources(e *graphEntry, sources []int64) error {
	if len(sources) == 0 {
		return errors.New("server: no sources given")
	}
	for _, src := range sources {
		if src < 0 || int(src) >= e.info.N {
			return fmt.Errorf("server: source %d out of range [0,%d)", src, e.info.N)
		}
	}
	return nil
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	e := s.store.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	var req api.SSSPRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSources(e, []int64{req.Source}); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.ssspQueries.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.observeQuery(kindSSSP, time.Since(start)) }()

	k := algo.NewBellmanFordKernel(core.NodeID(req.Source))
	tel, err := s.runExact(e, k)
	if err != nil {
		s.queryFailed(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SSSPResponse{
		Source: req.Source, Dist: k.Dist(),
		Rounds: tel.rounds, WallNanos: int64(tel.wall),
	})
}

func (s *Server) handleKSource(w http.ResponseWriter, r *http.Request) {
	e := s.store.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	var req api.KSourceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSources(e, req.Sources); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	h := req.H
	if h == 0 {
		h = hopset.DefaultBeta(e.info.N)
	}
	if h < 1 {
		writeErr(w, http.StatusBadRequest, "server: hop horizon %d must be >= 1", h)
		return
	}
	s.metrics.ksourceQueries.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.observeQuery(kindKSource, time.Since(start)) }()

	sources := make([]core.NodeID, len(req.Sources))
	for i, src := range req.Sources {
		sources[i] = core.NodeID(src)
	}
	k := algo.NewKSourceKernel(sources, h)
	tel, err := s.runExact(e, k)
	if err != nil {
		s.queryFailed(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.KSourceResponse{
		Sources: req.Sources, H: h, Dist: k.Dist(),
		Rounds: tel.rounds, WallNanos: int64(tel.wall),
	})
}

// runTelemetry is what one kernel run cost: the session stats deltas
// the query handlers surface in their responses and the kernel-wall
// histogram feeds on.
type runTelemetry struct {
	passes int
	rounds int
	wall   time.Duration
}

// runExact runs one exact kernel under the graph's session lease and
// reports its cost.
func (s *Server) runExact(e *graphEntry, k clique.Kernel) (runTelemetry, error) {
	l, err := s.pool.acquire(e.info.Version, e.g)
	if err != nil {
		return runTelemetry{}, err
	}
	defer l.release()
	s.metrics.kernelRuns.Add(1)
	sess := l.session()
	before := sess.Stats()
	// Queries run to completion even during shutdown: the HTTP layer's
	// drain is the cancellation boundary.
	err = sess.Run(context.Background(), k)
	after := sess.Stats()
	tel := runTelemetry{
		passes: after.Runs - before.Runs,
		rounds: after.Engine.Rounds - before.Engine.Rounds,
		wall:   after.Engine.Wall - before.Engine.Wall,
	}
	if err == nil {
		s.metrics.kernelWall.observe(tel.wall)
	}
	return tel, err
}

// queryFailed maps a query execution error onto a response.
func (s *Server) queryFailed(w http.ResponseWriter, err error) {
	s.metrics.queryErrors.Add(1)
	status := http.StatusInternalServerError
	if errors.Is(err, ErrGraphGone) {
		status = http.StatusGone
	}
	writeErr(w, status, "%v", err)
}

// epsKeyOf formats ε as the cache/coalescer key. Queries agreeing on
// the formatted value share a hopset and an admission queue.
func epsKeyOf(eps float64) string {
	return strconv.FormatFloat(eps, 'g', -1, 64)
}

func (s *Server) handleApproxSSSP(w http.ResponseWriter, r *http.Request) {
	e := s.store.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	var req api.ApproxSSSPRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSources(e, []int64{req.Source}); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	eps := req.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	if eps < 0 || eps != eps {
		writeErr(w, http.StatusBadRequest, "server: eps %v outside [0, inf)", eps)
		return
	}
	s.metrics.approxQueries.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.observeQuery(kindApprox, time.Since(start)) }()

	key := epsKeyOf(eps)
	c := e.coalescerFor(key, func() *coalescer {
		return newCoalescer(s.opts.MaxBatch, s.opts.CoalesceWait, func(sources []core.NodeID) (*batchResult, error) {
			return s.runApproxBatch(e, eps, key, sources)
		})
	})
	out := c.do(r.Context(), core.NodeID(req.Source))
	if out.err != nil {
		s.queryFailed(w, out.err)
		return
	}
	writeJSON(w, http.StatusOK, api.ApproxSSSPResponse{
		Source: req.Source, Eps: eps, Beta: out.beta, Dist: out.dist,
		BatchSize: out.batch, CacheHit: out.cacheHit,
		Passes: out.passes, Rounds: out.rounds, WallNanos: int64(out.wall),
	})
}

// handleReachable answers reachability queries from the graph's cached
// transitive closure, constructing it with one TransitiveClosureKernel
// run on first use. The closure is ε-free and source-independent, so a
// single cached [][]bool serves every later query on the graph with
// zero engine rounds.
func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	e := s.store.get(r.PathValue("id"))
	if e == nil {
		writeErr(w, http.StatusNotFound, "server: unknown graph %q", r.PathValue("id"))
		return
	}
	var req api.ReachableRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := checkSources(e, []int64{req.Source}); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.reachableQueries.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	start := time.Now()
	defer func() { s.metrics.observeQuery(kindReachable, time.Since(start)) }()

	// The closure cache, like the hopset cache, is guarded by the
	// graph's session lease — acquire it even on the hit path.
	l, err := s.pool.acquire(e.info.Version, e.g)
	if err != nil {
		s.queryFailed(w, err)
		return
	}
	var tel runTelemetry
	cacheHit := e.closure != nil
	if !cacheHit {
		k := algo.NewTransitiveClosureKernel()
		s.metrics.kernelRuns.Add(1)
		sess := l.session()
		before := sess.Stats()
		err := sess.Run(context.Background(), k)
		after := sess.Stats()
		if err != nil {
			l.release()
			s.queryFailed(w, err)
			return
		}
		tel = runTelemetry{
			passes: after.Runs - before.Runs,
			rounds: after.Engine.Rounds - before.Engine.Rounds,
			wall:   after.Engine.Wall - before.Engine.Wall,
		}
		s.metrics.kernelWall.observe(tel.wall)
		e.closure = k.Reach()
	}
	row := e.closure[req.Source]
	l.release()
	writeJSON(w, http.StatusOK, api.ReachableResponse{
		Source: req.Source, Reachable: row,
		Rounds: tel.rounds, WallNanos: int64(tel.wall), CacheHit: cacheHit,
	})
}

// runApproxBatch executes one coalesced batch: under the graph's
// session lease it either relaxes over the cached hopset-augmented
// adjacency (cache hit — zero stage-1 rounds) or runs the full
// two-stage ApproxKSourceKernel and caches the augmented matrix for
// the next batch. Results are bit-identical either way, and identical
// to per-source standalone Session runs, because the hopset is a
// deterministic function of (graph, Params) and stage 2's dense
// (min,+) products are column-independent.
func (s *Server) runApproxBatch(e *graphEntry, eps float64, key string, sources []core.NodeID) (*batchResult, error) {
	l, err := s.pool.acquire(e.info.Version, e.g)
	if err != nil {
		return nil, err
	}
	defer l.release()
	sess := l.session()
	before := sess.Stats()
	s.metrics.kernelRuns.Add(1)

	res := &batchResult{}
	if hc := e.hopsets[key]; hc != nil {
		k := algo.NewRelaxKernel(hc.aug, sources, hc.products)
		if err := sess.Run(context.Background(), k); err != nil {
			return nil, err
		}
		res.rows, res.beta, res.cacheHit = k.Dist(), hc.beta, true
	} else {
		k := algo.NewApproxKSourceKernel(sources, hopset.Params{Eps: eps})
		if err := sess.Run(context.Background(), k); err != nil {
			return nil, err
		}
		hs := k.Hopset()
		aug, err := hopset.Augment(hs.Base, hs)
		if err != nil {
			return nil, err
		}
		e.hopsets[key] = &hopsetCache{
			aug: aug, beta: hs.Beta,
			products: algo.RelaxProducts(hs.Beta, e.info.N),
		}
		res.rows, res.beta = k.Dist(), hs.Beta
	}
	after := sess.Stats()
	res.passes = after.Runs - before.Runs
	res.rounds = after.Engine.Rounds - before.Engine.Rounds
	res.wall = after.Engine.Wall - before.Engine.Wall
	s.metrics.kernelWall.observe(res.wall)
	s.metrics.observeBatch(len(sources), res.cacheHit)
	return res, nil
}
