package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseLabels parses `k="v",k2="v2"` with the exposition escaping rules
// (\\, \", \n inside label values).
func parseLabels(s string, line int) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("line %d: label missing '=' in %q", line, s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: bad label name %q", line, name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("line %d: label %s value not quoted", line, name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				i++
				if i >= len(s) {
					return nil, fmt.Errorf("line %d: dangling escape in label %s", line, name)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("line %d: invalid escape \\%c in label %s", line, s[i], name)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("line %d: unterminated label value for %s", line, name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate label %s", line, name)
		}
		labels[name] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return labels, nil
}

// reporter is the slice of testing.T the validator needs — an
// interface so the validator-of-the-validator test can count failures
// without fabricating a testing.T.
type reporter interface {
	Errorf(format string, args ...any)
}

// failCounter is a reporter that just counts.
type failCounter struct{ fails int }

func (f *failCounter) Errorf(string, ...any) { f.fails++ }

// validatePrometheus is a strict text-exposition checker: metric and
// label name syntax, label value escaping, HELP/TYPE pairing and
// placement (TYPE before the family's first sample, at most one each),
// histogram completeness (ascending le, cumulative monotone buckets,
// +Inf == _count, _sum present), and parseable sample values.
func validatePrometheus(t reporter, body string) []promSample {
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	sampled := map[string]bool{}
	var samples []promSample

	// baseFamily strips histogram/summary suffixes to the family a TYPE
	// declaration covers.
	baseFamily := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typeOf[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for i, line := range strings.Split(body, "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("line %d: malformed comment %q", n, line)
				continue
			}
			name := parts[2]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: bad metric name %q in %s", n, name, parts[1])
				continue
			}
			switch parts[1] {
			case "HELP":
				if helpSeen[name] {
					t.Errorf("line %d: second HELP for %s", n, name)
				}
				helpSeen[name] = true
			case "TYPE":
				if typeOf[name] != "" {
					t.Errorf("line %d: second TYPE for %s", n, name)
				}
				if sampled[name] {
					t.Errorf("line %d: TYPE for %s after its samples", n, name)
				}
				if len(parts) < 4 {
					t.Errorf("line %d: TYPE without a type", n)
					continue
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Errorf("line %d: unknown TYPE %q", n, parts[3])
				}
				typeOf[name] = parts[3]
			}
			continue
		}

		// Sample line: name[{labels}] value
		rest := line
		var name, labelStr string
		if br := strings.IndexByte(rest, '{'); br >= 0 {
			name = rest[:br]
			end := strings.LastIndexByte(rest, '}')
			if end < br {
				t.Errorf("line %d: unterminated label set: %q", n, line)
				continue
			}
			labelStr = rest[br+1 : end]
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Errorf("line %d: want 'name value', got %q", n, line)
				continue
			}
			name, rest = fields[0], fields[1]
		}
		if !metricNameRe.MatchString(name) {
			t.Errorf("line %d: bad metric name %q", n, name)
			continue
		}
		labels, err := parseLabels(labelStr, n)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Errorf("line %d: unparseable value in %q: %v", n, line, err)
			continue
		}
		fam := baseFamily(name)
		sampled[fam] = true
		if typeOf[fam] == "" {
			t.Errorf("line %d: sample %s precedes any TYPE for %s", n, name, fam)
		}
		if helpSeen[fam] != true {
			t.Errorf("line %d: sample %s has no HELP for %s", n, name, fam)
		}
		samples = append(samples, promSample{name: name, labels: labels, value: val, line: n})
	}

	// Histogram families: group _bucket series by their non-le labels,
	// check le ascends, counts are monotone, +Inf matches _count, and
	// _sum exists.
	for fam, typ := range typeOf {
		if typ != "histogram" {
			continue
		}
		type series struct {
			les  []float64
			cums []float64
		}
		group := map[string]*series{}
		sums := map[string]bool{}
		counts := map[string]float64{}
		keyOf := func(labels map[string]string) string {
			var parts []string
			for k, v := range labels {
				if k == "le" {
					continue
				}
				parts = append(parts, k+"="+v)
			}
			sort.Strings(parts)
			return strings.Join(parts, ",")
		}
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				le := s.labels["le"]
				if le == "" {
					t.Errorf("line %d: %s_bucket without le", s.line, fam)
					continue
				}
				var ub float64
				if le == "+Inf" {
					ub = math.Inf(1)
				} else if ub, _ = strconv.ParseFloat(le, 64); ub == 0 && le != "0" {
					t.Errorf("line %d: unparseable le %q", s.line, le)
					continue
				}
				g := group[keyOf(s.labels)]
				if g == nil {
					g = &series{}
					group[keyOf(s.labels)] = g
				}
				g.les = append(g.les, ub)
				g.cums = append(g.cums, s.value)
			case fam + "_sum":
				sums[keyOf(s.labels)] = true
			case fam + "_count":
				counts[keyOf(s.labels)] = s.value
			}
		}
		if len(group) == 0 {
			t.Errorf("histogram %s has no _bucket samples", fam)
		}
		for key, g := range group {
			for i := 1; i < len(g.les); i++ {
				if g.les[i] <= g.les[i-1] {
					t.Errorf("histogram %s{%s}: le not ascending at %v", fam, key, g.les[i])
				}
				if g.cums[i] < g.cums[i-1] {
					t.Errorf("histogram %s{%s}: bucket counts not monotone at le=%v (%v < %v)",
						fam, key, g.les[i], g.cums[i], g.cums[i-1])
				}
			}
			if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
				t.Errorf("histogram %s{%s}: missing +Inf bucket", fam, key)
				continue
			}
			if cnt, ok := counts[key]; !ok {
				t.Errorf("histogram %s{%s}: missing _count", fam, key)
			} else if cnt != g.cums[len(g.cums)-1] {
				t.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", fam, key, cnt, g.cums[len(g.cums)-1])
			}
			if !sums[key] {
				t.Errorf("histogram %s{%s}: missing _sum", fam, key)
			}
		}
	}
	return samples
}

// TestMetricsExpositionValid runs real traffic through the daemon and
// then strict-validates the entire /metrics document, asserting the new
// per-kind latency histograms carry the traffic.
func TestMetricsExpositionValid(t *testing.T) {
	_, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	id := upload(t, c, "prom", graph.Grid(4, 4))

	if _, err := c.SSSP(ctx, id, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KSource(ctx, id, []int64{0, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApproxSSSP(ctx, id, 0, 0); err != nil {
		t.Fatal(err)
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, body)

	count := func(name, kind string) float64 {
		for _, s := range samples {
			if s.name == name && (kind == "" || s.labels["kind"] == kind) {
				return s.value
			}
		}
		t.Errorf("no sample %s kind=%q", name, kind)
		return -1
	}
	for _, kind := range []string{"sssp", "ksource", "approx-sssp"} {
		if got := count("ccserve_query_duration_seconds_count", kind); got != 1 {
			t.Errorf("query duration count for %s = %v, want 1", kind, got)
		}
	}
	if got := count("ccserve_kernel_wall_seconds_count", ""); got < 3 {
		t.Errorf("kernel wall count = %v, want >= 3", got)
	}
	// Satellite: engine words are a real folded counter agreeing with
	// the message count (one budgeted word per message).
	if w, m := count("ccserve_engine_words_total", ""), count("ccserve_engine_messages_total", ""); w != m || w == 0 {
		t.Errorf("words %v vs msgs %v, want equal and nonzero", w, m)
	}
	if got := count("ccserve_engine_round_wall_seconds_total", ""); got <= 0 {
		t.Errorf("round wall total = %v, want > 0", got)
	}
}

// TestValidatorCatchesBadExposition pins the validator itself: a broken
// document must fail each check.
func TestValidatorCatchesBadExposition(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"no TYPE", "orphan_metric 3\n"},
		{"bad escape", "# HELP m h\n# TYPE m counter\nm{l=\"a\\q\"} 1\n"},
		{"bucket regression", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"count mismatch", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 9\n"},
		{"missing +Inf", "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		probe := &failCounter{}
		validatePrometheus(probe, tc.doc)
		if probe.fails == 0 {
			t.Errorf("%s: validator accepted a broken document", tc.name)
		}
	}
}

// TestPprofEndpoints: the daemon exposes the standard profiling
// surface under /debug/pprof/.
func TestPprofEndpoints(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/debug/pprof/goroutine", "/debug/pprof/cmdline"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestConcurrentMetricsObservers hammers ObserveRound, the query
// histograms, and the renderer from many goroutines — meaningful under
// -race (the ccserve-smoke CI job runs it) and as a monotonicity check:
// a render racing observes must still produce a valid document.
func TestConcurrentMetricsObservers(t *testing.T) {
	m := &Metrics{}
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				m.ObserveRound(engine.RoundStats{Msgs: 3, Bytes: 12, Wall: time.Duration(i)})
				m.observeQuery(i%numKinds, time.Duration(i)*time.Microsecond)
				m.kernelWall.observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := m.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			validatePrometheus(t, sb.String())
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := validatePrometheus(t, sb.String())
	var total float64
	for _, s := range samples {
		if s.name == "ccserve_query_duration_seconds_count" {
			total += s.value
		}
	}
	if total != 4*2000 {
		t.Errorf("query histogram total count %v, want %d", total, 4*2000)
	}
	snap := m.Snapshot()
	if snap.Words != snap.Msgs || snap.Words != 4*2000*3 {
		t.Errorf("words %d msgs %d, want both %d", snap.Words, snap.Msgs, 4*2000*3)
	}
}
