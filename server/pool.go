package server

import (
	"errors"
	"fmt"
	"sync"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// ErrGraphGone is returned by acquire when the graph version was
// dropped (graph deleted or daemon shutting down) while the caller
// waited for its turn on the session.
var ErrGraphGone = errors.New("server: graph version no longer served")

// sessionPool keeps one warm clique.Session per loaded graph version
// and serializes access to it. Sessions are not safe for concurrent
// use, so every query path goes acquire -> run kernels -> release; the
// per-version mutex is the admission gate, and the engine's workers,
// router slabs, and cumulative stats stay warm between queries — the
// amortization that turns the batch pipeline into a serving layer.
type sessionPool struct {
	metrics *Metrics
	workers int

	mu      sync.Mutex
	entries map[uint64]*poolEntry
}

// poolEntry is one graph version's warm session. mu serializes session
// use; statsMu guards the release-time stats snapshot that lets
// /stats read accounting without queueing behind a running kernel.
type poolEntry struct {
	mu     sync.Mutex
	sess   *clique.Session
	closed bool

	statsMu sync.Mutex
	stats   clique.Stats
}

func newSessionPool(metrics *Metrics, workers int) *sessionPool {
	return &sessionPool{metrics: metrics, workers: workers, entries: map[uint64]*poolEntry{}}
}

// acquire returns an exclusive lease on version's warm session,
// creating the session (engine workers and all) on first use. It
// blocks while another query holds the lease; if the version is
// dropped while waiting, it fails with ErrGraphGone.
func (p *sessionPool) acquire(version uint64, g *graph.CSR) (*lease, error) {
	p.mu.Lock()
	e, ok := p.entries[version]
	if !ok {
		sess, err := clique.New(g,
			clique.WithWorkers(p.workers),
			clique.WithRoundHook(p.metrics.ObserveRound))
		if err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("server: building session for graph version %d: %w", version, err)
		}
		e = &poolEntry{sess: sess}
		p.entries[version] = e
		p.metrics.sessionsActive.Add(1)
	}
	p.mu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrGraphGone
	}
	return &lease{e: e}, nil
}

// drop removes version from the pool and closes its session, after
// the current leaseholder (if any) releases. Safe to call for
// versions that never built a session.
func (p *sessionPool) drop(version uint64) {
	p.mu.Lock()
	e, ok := p.entries[version]
	delete(p.entries, version)
	p.mu.Unlock()
	if !ok {
		return
	}
	e.mu.Lock()
	e.closed = true
	e.sess.Close()
	e.mu.Unlock()
	p.metrics.sessionsActive.Add(-1)
}

// closeAll drops every pooled session; used at daemon shutdown after
// the HTTP layer has drained.
func (p *sessionPool) closeAll() {
	p.mu.Lock()
	versions := make([]uint64, 0, len(p.entries))
	for v := range p.entries {
		versions = append(versions, v)
	}
	p.mu.Unlock()
	for _, v := range versions {
		p.drop(v)
	}
}

// stats returns the last released-state accounting snapshot for
// version, and whether the version has a pooled session at all.
func (p *sessionPool) stats(version uint64) (clique.Stats, bool) {
	p.mu.Lock()
	e, ok := p.entries[version]
	p.mu.Unlock()
	if !ok {
		return clique.Stats{}, false
	}
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.stats, true
}

// lease is an exclusive grant on one warm session. Callers must
// release exactly once.
type lease struct {
	e *poolEntry
}

// session returns the leased warm session.
func (l *lease) session() *clique.Session { return l.e.sess }

// release snapshots the session's cumulative stats for lock-free
// /stats reads and returns the session to the pool.
func (l *lease) release() {
	st := l.e.sess.Stats()
	l.e.statsMu.Lock()
	l.e.stats = st
	l.e.statsMu.Unlock()
	l.e.mu.Unlock()
}
