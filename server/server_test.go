package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/pkg/client"
)

// newTestDaemon serves a fresh Server over httptest and returns the
// pkg/client handle — so every endpoint test also round-trips the
// client library.
func newTestDaemon(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

// upload serializes g as edge-list text and loads it under name.
func upload(t *testing.T, c *client.Client, name string, g *graph.CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	info, err := c.LoadGraph(context.Background(), name, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != g.N || info.Edges != g.NumEdges() || info.Weighted != g.Weighted() {
		t.Fatalf("uploaded info %+v does not match graph (n=%d m=%d w=%v)",
			info, g.N, g.NumEdges(), g.Weighted())
	}
	return info.ID
}

// TestGraphLifecycle round-trips load/list/get/delete through
// pkg/client, including duplicate and not-found errors.
func TestGraphLifecycle(t *testing.T) {
	_, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	g := graph.RandomGNPWeighted(16, 0.3, 9, 1)

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	id := upload(t, c, "lifecycle", g)
	if id != "lifecycle" {
		t.Fatalf("id = %q, want lifecycle", id)
	}

	// Duplicate name → 409.
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	_, err := c.LoadGraph(ctx, "lifecycle", &buf)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate load error = %v, want 409 APIError", err)
	}

	// Auto-named upload.
	autoID := upload(t, c, "", graph.Path(5))
	list, err := c.ListGraphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Graphs) != 2 {
		t.Fatalf("list has %d graphs, want 2", len(list.Graphs))
	}

	info, err := c.GetGraph(ctx, id)
	if err != nil || info.ID != id {
		t.Fatalf("get %q: %+v, %v", id, info, err)
	}
	if _, err := c.GetGraph(ctx, "nope"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("get unknown: %v, want 404", err)
	}

	if err := c.DeleteGraph(ctx, autoID); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteGraph(ctx, autoID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("double delete: %v, want 404", err)
	}
	list, _ = c.ListGraphs(ctx)
	if len(list.Graphs) != 1 {
		t.Fatalf("after delete, list has %d graphs, want 1", len(list.Graphs))
	}
}

// TestQueriesMatchReference checks every query kind against the
// sequential Bellman-Ford oracle through the full HTTP + client stack.
func TestQueriesMatchReference(t *testing.T) {
	_, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	g := graph.RandomGNPWeighted(24, 0.25, 9, 7)
	id := upload(t, c, "ref", g)

	want0 := algo.BellmanFordRef(g, 0)
	want5 := algo.BellmanFordRef(g, 5)

	sssp, err := c.SSSP(ctx, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sssp.Dist, want0) {
		t.Error("sssp dist does not match BellmanFordRef")
	}

	ks, err := c.KSource(ctx, id, []int64{0, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ks.H < 1 {
		t.Errorf("ksource default h = %d, want >= 1", ks.H)
	}
	if !reflect.DeepEqual(ks.Dist[0], want0) || !reflect.DeepEqual(ks.Dist[1], want5) {
		t.Error("ksource rows do not match BellmanFordRef")
	}

	// Approximate distances respect the (1+eps) bound against the oracle.
	const eps = 0.5
	ap, err := c.ApproxSSSP(ctx, id, 5, eps)
	if err != nil {
		t.Fatal(err)
	}
	if ap.CacheHit {
		t.Error("first approx query reported a hopset cache hit")
	}
	for v, d := range ap.Dist {
		exact := want5[v]
		if (exact < 0) != (d < 0) {
			t.Fatalf("vertex %d: approx %d vs exact %d disagree on reachability", v, d, exact)
		}
		if exact >= 0 && (d < exact || float64(d) > (1+eps)*float64(exact)+1e-9) {
			t.Errorf("vertex %d: approx %d outside [%d, (1+eps)*%d]", v, d, exact, exact)
		}
	}

	// Bad requests surface as 4xx.
	var apiErr *client.APIError
	if _, err := c.SSSP(ctx, id, 99); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("out-of-range source: %v, want 400", err)
	}
	if _, err := c.KSource(ctx, id, nil, 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("empty sources: %v, want 400", err)
	}
	if _, err := c.ApproxSSSP(ctx, id, 0, -1); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("negative eps: %v, want 400", err)
	}
}

// TestHopsetCacheSteadyState is the cache acceptance test: the second
// approx query at the same (graph, eps) is served from the cached
// hopset-augmented adjacency — zero stage-1 passes, strictly cheaper
// than the first query, bit-identical distances — and /metrics records
// the hit.
func TestHopsetCacheSteadyState(t *testing.T) {
	srv, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	g := graph.RandomGNPWeighted(32, 0.2, 9, 3)
	id := upload(t, c, "cached", g)
	const eps = 0.25

	first, err := c.ApproxSSSP(ctx, id, 4, eps)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query must construct the hopset (cache miss)")
	}
	second, err := c.ApproxSSSP(ctx, id, 4, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second query at same (graph, eps) must hit the hopset cache")
	}
	if !reflect.DeepEqual(second.Dist, first.Dist) {
		t.Error("cached fast path is not bit-identical to the full pipeline")
	}
	if second.Beta != first.Beta {
		t.Errorf("beta changed across cache: %d vs %d", second.Beta, first.Beta)
	}

	// Zero stage-1 work: the cached run spends exactly the stage-2
	// relaxation products and nothing else.
	wantPasses := algo.RelaxProducts(first.Beta, g.N)
	if second.Passes != wantPasses {
		t.Errorf("cached passes = %d, want exactly the %d stage-2 products", second.Passes, wantPasses)
	}
	if second.Passes >= first.Passes {
		t.Errorf("cached passes %d not cheaper than full pipeline %d", second.Passes, first.Passes)
	}
	if second.Rounds >= first.Rounds {
		t.Errorf("cached rounds %d not cheaper than full pipeline %d", second.Rounds, first.Rounds)
	}

	snap := srv.Metrics().Snapshot()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache counters (hits=%d, misses=%d), want (1, 1)", snap.CacheHits, snap.CacheMisses)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "ccserve_hopset_cache_hits_total 1\n") {
		t.Error("/metrics does not report the hopset cache hit")
	}

	// A different eps is its own cache line.
	other, err := c.ApproxSSSP(ctx, id, 4, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Error("different eps must not hit the eps=0.25 cache line")
	}
}

// TestReachableMatchesOracleAndCaches checks the reachability endpoint
// against BellmanFordRef-derived reachability, and that the second
// query — any source — answers from the cached closure with zero
// rounds, with the metrics surfaces recording both queries.
func TestReachableMatchesOracleAndCaches(t *testing.T) {
	srv, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	// Two disjoint paths: real unreachable pairs.
	g, err := graph.LoadEdgeList(strings.NewReader("p 9\n0 1\n1 2\n2 3\n4 5\n5 6\n6 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	id := upload(t, c, "reach", g)

	first, err := c.Reachable(ctx, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first reachable query reported a cache hit")
	}
	if first.Rounds == 0 {
		t.Error("first reachable query reports zero rounds")
	}
	dist := algo.BellmanFordRef(g.WithUnitWeights(), 2)
	for v, r := range first.Reachable {
		if want := dist[v] >= 0; r != want {
			t.Errorf("reachable[%d] = %v, oracle %v", v, r, want)
		}
	}

	second, err := c.Reachable(ctx, id, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Rounds != 0 {
		t.Errorf("second query: cacheHit=%v rounds=%d, want cached zero-round answer",
			second.CacheHit, second.Rounds)
	}
	dist6 := algo.BellmanFordRef(g.WithUnitWeights(), 6)
	for v, r := range second.Reachable {
		if want := dist6[v] >= 0; r != want {
			t.Errorf("cached reachable[%d] = %v, oracle %v", v, r, want)
		}
	}

	if snap := srv.Metrics().Snapshot(); snap.ReachableQueries != 2 {
		t.Errorf("reachable query counter = %d, want 2", snap.ReachableQueries)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "ccserve_queries_total{kind=\"reachable\"} 2\n") {
		t.Error("/metrics does not report the reachable queries")
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries["reachable"] != 2 {
		t.Errorf("stats reachable total = %d, want 2", st.Queries["reachable"])
	}

	var apiErr *client.APIError
	if _, err := c.Reachable(ctx, id, 99); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Errorf("out-of-range source: %v, want 400", err)
	}
	if _, err := c.Reachable(ctx, "nope", 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown graph: %v, want 404", err)
	}
}

// TestMetricsAndStatsSurfaces scrapes /metrics and /stats after a mix
// of queries and checks the accounting lines are present and sane.
func TestMetricsAndStatsSurfaces(t *testing.T) {
	_, c := newTestDaemon(t, Options{})
	ctx := context.Background()
	g := graph.Grid(4, 4)
	id := upload(t, c, "obs", g)

	if _, err := c.SSSP(ctx, id, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KSource(ctx, id, []int64{0, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApproxSSSP(ctx, id, 0, 0); err != nil {
		t.Fatal(err)
	}

	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP ccserve_engine_rounds_total",
		"# TYPE ccserve_engine_rounds_total counter",
		"ccserve_queries_total{kind=\"sssp\"} 1",
		"ccserve_queries_total{kind=\"ksource\"} 1",
		"ccserve_queries_total{kind=\"approx-sssp\"} 1",
		"ccserve_sessions_active 1",
		"ccserve_graphs_loaded 1",
		"ccserve_engine_words_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries["sssp"] != 1 || st.Queries["ksource"] != 1 || st.Queries["approx-sssp"] != 1 {
		t.Errorf("query totals = %v", st.Queries)
	}
	if st.KernelRuns < 3 {
		t.Errorf("kernel runs = %d, want >= 3", st.KernelRuns)
	}
	if len(st.Graphs) != 1 {
		t.Fatalf("stats has %d graphs, want 1", len(st.Graphs))
	}
	gs := st.Graphs[0]
	if gs.ID != id || gs.Stats.Kernels < 3 || gs.Stats.Engine.Rounds == 0 {
		t.Errorf("per-graph stats %+v lacks session accounting", gs)
	}
}

// TestLoadGraphRejectsMalformed checks the loader's diagnostics travel
// through the HTTP surface as 400s.
func TestLoadGraphRejectsMalformed(t *testing.T) {
	_, c := newTestDaemon(t, Options{})
	var apiErr *client.APIError
	_, err := c.LoadGraph(context.Background(), "bad", strings.NewReader("0 0 5\n"))
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("self-loop upload: %v, want 400", err)
	}
	if !strings.Contains(apiErr.Message, "self-loop") {
		t.Errorf("diagnostic %q does not name the self-loop", apiErr.Message)
	}
}

// TestDeleteWhileQuerying checks DELETE waits out the in-flight query
// and later queries fail cleanly.
func TestDeleteWhileQuerying(t *testing.T) {
	_, c := newTestDaemon(t, Options{CoalesceWait: 30 * time.Millisecond})
	ctx := context.Background()
	g := graph.RandomGNPWeighted(24, 0.3, 9, 11)
	id := upload(t, c, "doomed", g)

	done := make(chan error, 1)
	go func() {
		_, err := c.ApproxSSSP(ctx, id, 0, 0.25)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the query enter its window
	if err := c.DeleteGraph(ctx, id); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// The in-flight query either completed before the drop or lost the
	// race and reports the graph gone — never a hang, never a panic.
	err := <-done
	var apiErr *client.APIError
	if err != nil && !errors.As(err, &apiErr) {
		t.Fatalf("in-flight query after delete: %v", err)
	}
	if _, err := c.SSSP(ctx, id, 0); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("query after delete: %v, want 404", err)
	}
}
