package server

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Query kinds index the per-kind latency histograms and carry their
// Prometheus label values.
const (
	kindSSSP = iota
	kindKSource
	kindApprox
	kindReachable
	numKinds
)

// kindLabels are the {kind=...} label values, in kind index order.
var kindLabels = [numKinds]string{"sssp", "ksource", "approx-sssp", "reachable"}

// durationBuckets are the histogram upper bounds in seconds: a
// log-spaced 1-2.5-5 ladder from 500µs to 30s (plus the implicit +Inf
// bucket). Fixed at compile time so observation is an array index and
// the zero-value histogram is usable.
var durationBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a lock-free fixed-bucket duration histogram. counts[i]
// is the non-cumulative population of bucket i (counts[len] is +Inf);
// the renderer accumulates, which keeps the exposed cumulative series
// monotone even against concurrent observes.
type histogram struct {
	counts   [len(durationBuckets) + 1]atomic.Uint64
	sumNanos atomic.Uint64
}

// observe adds one duration sample.
func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	i := 0
	for i < len(durationBuckets) && secs > durationBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d))
}

// writePromSeries renders the histogram's series (_bucket/_sum/_count)
// for one family and label prefix ("" or `kind="sssp",`). The HELP and
// TYPE header is the caller's job — a labeled family writes it once
// before its first series. _count is derived from the same cumulative
// walk as the +Inf bucket, so the two always agree.
func (h *histogram) writePromSeries(w io.Writer, family, labels string) error {
	var cum uint64
	for i, ub := range durationBuckets {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
			family, labels, strconv.FormatFloat(ub, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(durationBuckets)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", family, labels, cum); err != nil {
		return err
	}
	sum := float64(h.sumNanos.Load()) / 1e9
	if labels != "" {
		labels = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, labels,
		strconv.FormatFloat(sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, cum)
	return err
}

// Metrics is the daemon's observability surface: a fixed set of
// counters and gauges updated lock-free on the serving paths and
// rendered in Prometheus text exposition format by WritePrometheus
// (the GET /metrics handler). Engine traffic streams in through
// ObserveRound, the clique.WithRoundHook tap every pooled session is
// created with, so rounds/messages/words accumulate live while a
// kernel runs — the observability half of ROADMAP item 5.
type Metrics struct {
	// Engine traffic, streamed per round from every pooled session.
	// words is a real folded counter (not an alias of msgs at render
	// time): the engine routes exactly one budgeted payload word per
	// message, and exporting the fold keeps /metrics honest if that
	// framing ever changes.
	rounds    atomic.Uint64
	msgs      atomic.Uint64
	words     atomic.Uint64
	bytes     atomic.Uint64
	wallNanos atomic.Uint64

	// Query admission, by kind.
	ssspQueries      atomic.Uint64
	ksourceQueries   atomic.Uint64
	approxQueries    atomic.Uint64
	reachableQueries atomic.Uint64
	queryErrors      atomic.Uint64

	// Kernel executions: every session run the daemon performs. Under
	// coalescing, kernelRuns grows slower than approxQueries.
	kernelRuns atomic.Uint64

	// Coalescer outcomes.
	batches        atomic.Uint64
	batchedQueries atomic.Uint64
	batchMax       atomic.Uint64

	// Hopset-augmented adjacency cache outcomes.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Gauges.
	sessionsActive atomic.Int64
	graphsLoaded   atomic.Int64
	inflight       atomic.Int64

	// Latency distributions: end-to-end service time per admitted
	// query, by kind, and per-kernel-run engine wall time (the
	// accumulated RoundStats.Wall of one run's passes).
	queryDur   [numKinds]histogram
	kernelWall histogram
}

// ObserveRound folds one engine round's stats into the traffic
// counters; it is installed as the RoundHook of every pooled session.
func (m *Metrics) ObserveRound(rs engine.RoundStats) {
	m.rounds.Add(1)
	m.msgs.Add(rs.Msgs)
	m.words.Add(rs.Msgs) // one budgeted word per routed message
	m.bytes.Add(rs.Bytes)
	m.wallNanos.Add(uint64(rs.Wall))
}

// observeQuery records one admitted query's end-to-end service time.
func (m *Metrics) observeQuery(kind int, d time.Duration) {
	m.queryDur[kind].observe(d)
}

// observeBatch records one coalesced kernel run of size k.
func (m *Metrics) observeBatch(k int, cacheHit bool) {
	m.batches.Add(1)
	m.batchedQueries.Add(uint64(k))
	for {
		cur := m.batchMax.Load()
		if uint64(k) <= cur || m.batchMax.CompareAndSwap(cur, uint64(k)) {
			break
		}
	}
	if cacheHit {
		m.cacheHits.Add(1)
	} else {
		m.cacheMisses.Add(1)
	}
}

// Snapshot is a point-in-time copy of every counter, for tests and
// the /stats handler.
type Snapshot struct {
	Rounds, Msgs, Words, Bytes, WallNanos      uint64
	SSSPQueries, KSourceQueries, ApproxQueries uint64
	ReachableQueries                           uint64
	QueryErrors, KernelRuns                    uint64
	Batches, BatchedQueries, BatchMax          uint64
	CacheHits, CacheMisses                     uint64
	SessionsActive, GraphsLoaded, Inflight     int64
}

// Snapshot returns a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a transaction).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Rounds: m.rounds.Load(), Msgs: m.msgs.Load(), Words: m.words.Load(),
		Bytes: m.bytes.Load(), WallNanos: m.wallNanos.Load(),
		SSSPQueries: m.ssspQueries.Load(), KSourceQueries: m.ksourceQueries.Load(),
		ApproxQueries: m.approxQueries.Load(), ReachableQueries: m.reachableQueries.Load(),
		QueryErrors: m.queryErrors.Load(),
		KernelRuns: m.kernelRuns.Load(),
		Batches:    m.batches.Load(), BatchedQueries: m.batchedQueries.Load(),
		BatchMax:  m.batchMax.Load(),
		CacheHits: m.cacheHits.Load(), CacheMisses: m.cacheMisses.Load(),
		SessionsActive: m.sessionsActive.Load(), GraphsLoaded: m.graphsLoaded.Load(),
		Inflight: m.inflight.Load(),
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, in a fixed order so scrapes are diffable.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	type metric struct {
		name, help, typ string
		value           any
	}
	for _, mt := range []metric{
		{"ccserve_engine_rounds_total", "Engine rounds executed across all pooled sessions.", "counter", s.Rounds},
		{"ccserve_engine_messages_total", "Messages routed across all pooled sessions.", "counter", s.Msgs},
		{"ccserve_engine_words_total", "Budgeted payload words routed (one per message).", "counter", s.Words},
		{"ccserve_engine_bytes_total", "Payload bytes routed across all pooled sessions.", "counter", s.Bytes},
		{"ccserve_engine_round_wall_seconds_total", "Accumulated per-round wall time across all pooled sessions.", "counter",
			strconv.FormatFloat(float64(s.WallNanos)/1e9, 'g', -1, 64)},
		{"ccserve_queries_total{kind=\"sssp\"}", "Admitted queries by kind.", "counter", s.SSSPQueries},
		{"ccserve_queries_total{kind=\"ksource\"}", "", "", s.KSourceQueries},
		{"ccserve_queries_total{kind=\"approx-sssp\"}", "", "", s.ApproxQueries},
		{"ccserve_queries_total{kind=\"reachable\"}", "", "", s.ReachableQueries},
		{"ccserve_query_errors_total", "Queries that failed after admission.", "counter", s.QueryErrors},
		{"ccserve_kernel_runs_total", "Kernel executions on pooled sessions (coalescing makes this trail approx-sssp queries).", "counter", s.KernelRuns},
		{"ccserve_coalesced_batches_total", "Batched approx-sssp kernel runs.", "counter", s.Batches},
		{"ccserve_coalesced_queries_total", "Approx-sssp queries served through batches.", "counter", s.BatchedQueries},
		{"ccserve_coalesced_batch_max", "Largest batch size observed.", "gauge", s.BatchMax},
		{"ccserve_hopset_cache_hits_total", "Approx batches served from the hopset-augmented adjacency cache (zero stage-1 rounds).", "counter", s.CacheHits},
		{"ccserve_hopset_cache_misses_total", "Approx batches that had to construct a hopset.", "counter", s.CacheMisses},
		{"ccserve_sessions_active", "Warm clique sessions in the pool.", "gauge", s.SessionsActive},
		{"ccserve_graphs_loaded", "Graphs currently loaded.", "gauge", s.GraphsLoaded},
		{"ccserve_queries_inflight", "Queries currently being served.", "gauge", s.Inflight},
	} {
		if mt.help != "" {
			name := mt.name
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, mt.help, name, mt.typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %v\n", mt.name, mt.value); err != nil {
			return err
		}
	}

	// Histogram families: the per-kind query latency distribution and
	// the per-kernel-run engine wall time. HELP/TYPE once per family,
	// then every label series in fixed order.
	if _, err := fmt.Fprintf(w, "# HELP ccserve_query_duration_seconds End-to-end service time of admitted queries, by kind.\n# TYPE ccserve_query_duration_seconds histogram\n"); err != nil {
		return err
	}
	for kind, label := range kindLabels {
		labels := fmt.Sprintf("kind=%q,", label)
		if err := m.queryDur[kind].writePromSeries(w, "ccserve_query_duration_seconds", labels); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP ccserve_kernel_wall_seconds Engine wall time of one kernel run (accumulated RoundStats.Wall of its passes).\n# TYPE ccserve_kernel_wall_seconds histogram\n"); err != nil {
		return err
	}
	return m.kernelWall.writePromSeries(w, "ccserve_kernel_wall_seconds", "")
}
