package server

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Metrics is the daemon's observability surface: a fixed set of
// counters and gauges updated lock-free on the serving paths and
// rendered in Prometheus text exposition format by WritePrometheus
// (the GET /metrics handler). Engine traffic streams in through
// ObserveRound, the clique.WithRoundHook tap every pooled session is
// created with, so rounds/messages/words accumulate live while a
// kernel runs — the observability half of ROADMAP item 5.
type Metrics struct {
	// Engine traffic, streamed per round from every pooled session.
	rounds atomic.Uint64
	msgs   atomic.Uint64
	bytes  atomic.Uint64

	// Query admission, by kind.
	ssspQueries    atomic.Uint64
	ksourceQueries atomic.Uint64
	approxQueries  atomic.Uint64
	queryErrors    atomic.Uint64

	// Kernel executions: every session run the daemon performs. Under
	// coalescing, kernelRuns grows slower than approxQueries.
	kernelRuns atomic.Uint64

	// Coalescer outcomes.
	batches        atomic.Uint64
	batchedQueries atomic.Uint64
	batchMax       atomic.Uint64

	// Hopset-augmented adjacency cache outcomes.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Gauges.
	sessionsActive atomic.Int64
	graphsLoaded   atomic.Int64
	inflight       atomic.Int64
}

// ObserveRound folds one engine round's stats into the traffic
// counters; it is installed as the RoundHook of every pooled session.
func (m *Metrics) ObserveRound(rs engine.RoundStats) {
	m.rounds.Add(1)
	m.msgs.Add(rs.Msgs)
	m.bytes.Add(rs.Bytes)
}

// observeBatch records one coalesced kernel run of size k.
func (m *Metrics) observeBatch(k int, cacheHit bool) {
	m.batches.Add(1)
	m.batchedQueries.Add(uint64(k))
	for {
		cur := m.batchMax.Load()
		if uint64(k) <= cur || m.batchMax.CompareAndSwap(cur, uint64(k)) {
			break
		}
	}
	if cacheHit {
		m.cacheHits.Add(1)
	} else {
		m.cacheMisses.Add(1)
	}
}

// Snapshot is a point-in-time copy of every counter, for tests and
// the /stats handler.
type Snapshot struct {
	Rounds, Msgs, Bytes                        uint64
	SSSPQueries, KSourceQueries, ApproxQueries uint64
	QueryErrors, KernelRuns                    uint64
	Batches, BatchedQueries, BatchMax          uint64
	CacheHits, CacheMisses                     uint64
	SessionsActive, GraphsLoaded, Inflight     int64
}

// Snapshot returns a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a transaction).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Rounds: m.rounds.Load(), Msgs: m.msgs.Load(), Bytes: m.bytes.Load(),
		SSSPQueries: m.ssspQueries.Load(), KSourceQueries: m.ksourceQueries.Load(),
		ApproxQueries: m.approxQueries.Load(), QueryErrors: m.queryErrors.Load(),
		KernelRuns: m.kernelRuns.Load(),
		Batches:    m.batches.Load(), BatchedQueries: m.batchedQueries.Load(),
		BatchMax:  m.batchMax.Load(),
		CacheHits: m.cacheHits.Load(), CacheMisses: m.cacheMisses.Load(),
		SessionsActive: m.sessionsActive.Load(), GraphsLoaded: m.graphsLoaded.Load(),
		Inflight: m.inflight.Load(),
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format, in a fixed order so scrapes are diffable.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	type metric struct {
		name, help, typ string
		value           any
	}
	words := s.Msgs // one budgeted word per routed message
	for _, mt := range []metric{
		{"ccserve_engine_rounds_total", "Engine rounds executed across all pooled sessions.", "counter", s.Rounds},
		{"ccserve_engine_messages_total", "Messages routed across all pooled sessions.", "counter", s.Msgs},
		{"ccserve_engine_words_total", "Budgeted payload words routed (one per message).", "counter", words},
		{"ccserve_engine_bytes_total", "Payload bytes routed across all pooled sessions.", "counter", s.Bytes},
		{"ccserve_queries_total{kind=\"sssp\"}", "Admitted queries by kind.", "counter", s.SSSPQueries},
		{"ccserve_queries_total{kind=\"ksource\"}", "", "", s.KSourceQueries},
		{"ccserve_queries_total{kind=\"approx-sssp\"}", "", "", s.ApproxQueries},
		{"ccserve_query_errors_total", "Queries that failed after admission.", "counter", s.QueryErrors},
		{"ccserve_kernel_runs_total", "Kernel executions on pooled sessions (coalescing makes this trail approx-sssp queries).", "counter", s.KernelRuns},
		{"ccserve_coalesced_batches_total", "Batched approx-sssp kernel runs.", "counter", s.Batches},
		{"ccserve_coalesced_queries_total", "Approx-sssp queries served through batches.", "counter", s.BatchedQueries},
		{"ccserve_coalesced_batch_max", "Largest batch size observed.", "gauge", s.BatchMax},
		{"ccserve_hopset_cache_hits_total", "Approx batches served from the hopset-augmented adjacency cache (zero stage-1 rounds).", "counter", s.CacheHits},
		{"ccserve_hopset_cache_misses_total", "Approx batches that had to construct a hopset.", "counter", s.CacheMisses},
		{"ccserve_sessions_active", "Warm clique sessions in the pool.", "gauge", s.SessionsActive},
		{"ccserve_graphs_loaded", "Graphs currently loaded.", "gauge", s.GraphsLoaded},
		{"ccserve_queries_inflight", "Queries currently being served.", "gauge", s.Inflight},
	} {
		if mt.help != "" {
			name := mt.name
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, mt.help, name, mt.typ); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", mt.name, mt.value); err != nil {
			return err
		}
	}
	return nil
}
