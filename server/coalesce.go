package server

import (
	"context"
	"sync"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// batchResult is what one coalesced kernel run returns: a distance row
// per batch source (rows[i] answers sources[i]) plus the run's serving
// telemetry, shared by every query in the batch.
type batchResult struct {
	rows     [][]int64
	beta     int
	cacheHit bool
	passes   int
	rounds   int
	wall     time.Duration
}

// batchFunc executes one batched kernel run for the coalescer — in the
// daemon it acquires the graph's session lease, consults the hopset
// cache, and runs either an ApproxKSourceKernel (cache miss) or a
// RelaxKernel over the cached augmented adjacency (cache hit).
type batchFunc func(sources []core.NodeID) (*batchResult, error)

// queryOutcome is one query's share of a batch outcome.
type queryOutcome struct {
	dist     []int64
	beta     int
	batch    int
	cacheHit bool
	passes   int
	rounds   int
	wall     time.Duration
	err      error
}

// coalescer is the admission-control layer that turns k concurrent
// single-source approximate queries into ceil(k/maxBatch) batched
// kernel runs — k sources for the price of one pipeline, the
// ApproxKSourceKernel's headline amortization. One coalescer exists
// per (graph version, ε).
//
// Protocol: every query appends itself to pending; the first query to
// find no active leader becomes one. The leader sleeps the admission
// window (wait), takes up to maxBatch pending queries, executes one
// batched run, delivers each query its row, and loops while queries
// keep arriving — queries admitted while a batch runs simply ride the
// next one. The window is the coalescing knob: 0 serves the first
// query alone at minimum latency, a few milliseconds trades that
// latency for batching under concurrent load.
type coalescer struct {
	maxBatch int
	wait     time.Duration
	run      batchFunc

	mu      sync.Mutex
	pending []waiter
	leading bool

	// runs and queries are the coalescer's own accounting, asserted by
	// the batching property tests: runs <= ceil(queries/maxBatch) when
	// all queries are admitted inside one window.
	runs    uint64
	queries uint64
}

// waiter is one parked query: its source and the buffered channel its
// outcome is delivered on.
type waiter struct {
	src core.NodeID
	ch  chan queryOutcome
}

func newCoalescer(maxBatch int, wait time.Duration, run batchFunc) *coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &coalescer{maxBatch: maxBatch, wait: wait, run: run}
}

// do admits one query and blocks until its batch completes or ctx is
// done. A context-abandoned query is still computed with its batch
// (retraction would complicate the protocol for no serving win); only
// the delivery is skipped.
func (c *coalescer) do(ctx context.Context, src core.NodeID) queryOutcome {
	w := waiter{src: src, ch: make(chan queryOutcome, 1)}
	c.mu.Lock()
	c.pending = append(c.pending, w)
	c.queries++
	if !c.leading {
		c.leading = true
		go c.lead()
	}
	c.mu.Unlock()

	select {
	case out := <-w.ch:
		return out
	case <-ctx.Done():
		return queryOutcome{err: ctx.Err()}
	}
}

// lead drains pending in batches of up to maxBatch until none remain,
// then retires. Exactly one leader exists at a time per coalescer.
func (c *coalescer) lead() {
	for {
		if c.wait > 0 {
			time.Sleep(c.wait)
		}
		c.mu.Lock()
		k := len(c.pending)
		if k == 0 {
			c.leading = false
			c.mu.Unlock()
			return
		}
		if k > c.maxBatch {
			k = c.maxBatch
		}
		batch := make([]waiter, k)
		copy(batch, c.pending[:k])
		c.pending = append(c.pending[:0], c.pending[k:]...)
		c.runs++
		c.mu.Unlock()

		sources := make([]core.NodeID, k)
		for i, w := range batch {
			sources[i] = w.src
		}
		res, err := c.run(sources)
		for i, w := range batch {
			if err != nil {
				w.ch <- queryOutcome{err: err}
				continue
			}
			w.ch <- queryOutcome{
				dist: res.rows[i], beta: res.beta, batch: k,
				cacheHit: res.cacheHit, passes: res.passes, rounds: res.rounds, wall: res.wall,
			}
		}
	}
}

// counts returns (kernel runs, admitted queries) — the coalescing
// ratio the property tests and /stats assert on.
func (c *coalescer) counts() (runs, queries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs, c.queries
}
