package server

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestPoolWarmReuse checks the pool hands back the same warm session
// across leases and that cumulative stats grow run over run.
func TestPoolWarmReuse(t *testing.T) {
	m := &Metrics{}
	p := newSessionPool(m, 0)
	defer p.closeAll()
	g := graph.Path(8)

	l1, err := p.acquire(1, g)
	if err != nil {
		t.Fatal(err)
	}
	s1 := l1.session()
	if err := s1.Run(context.Background(), algo.NewBellmanFordKernel(0)); err != nil {
		t.Fatal(err)
	}
	l1.release()

	l2, err := p.acquire(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if l2.session() != s1 {
		t.Error("second acquire built a new session; want warm reuse")
	}
	if err := l2.session().Run(context.Background(), algo.NewBellmanFordKernel(7)); err != nil {
		t.Fatal(err)
	}
	l2.release()

	st, ok := p.stats(1)
	if !ok {
		t.Fatal("stats: version 1 not pooled")
	}
	if st.Kernels != 2 {
		t.Errorf("cumulative kernels = %d, want 2 (warm session accumulates)", st.Kernels)
	}
	if m.Snapshot().Rounds == 0 {
		t.Error("round hook never fired: pool sessions must stream into Metrics")
	}
	if got := m.Snapshot().SessionsActive; got != 1 {
		t.Errorf("sessionsActive = %d, want 1", got)
	}
}

// TestPoolSerializes checks concurrent leaseholders exclude each
// other: with N goroutines hammering one version, every kernel run
// happens under the lease, so the session's not-concurrency-safe
// invariant holds and all runs land in the cumulative stats.
func TestPoolSerializes(t *testing.T) {
	m := &Metrics{}
	p := newSessionPool(m, 0)
	defer p.closeAll()
	g := graph.Path(6)

	const n = 8
	var wg sync.WaitGroup
	var inLease sync.Mutex // would deadlock-detect double entry via TryLock
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := p.acquire(1, g)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			defer l.release()
			if !inLease.TryLock() {
				t.Error("two goroutines held the lease at once")
				return
			}
			defer inLease.Unlock()
			if err := l.session().Run(context.Background(), algo.NewBellmanFordKernel(0)); err != nil {
				t.Errorf("run: %v", err)
			}
		}(i)
	}
	wg.Wait()

	st, _ := p.stats(1)
	if st.Kernels != n {
		t.Errorf("kernels = %d, want %d", st.Kernels, n)
	}
}

// TestPoolDrop checks drop closes the session and later acquires fail
// with ErrGraphGone for waiters caught mid-drop (fresh acquires of a
// dropped version would rebuild, which the store prevents by removing
// the entry first — here we assert the closed-entry path).
func TestPoolDrop(t *testing.T) {
	m := &Metrics{}
	p := newSessionPool(m, 0)
	g := graph.Path(4)

	l, err := p.acquire(3, g)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.drop(3) // blocks until the lease releases
		close(done)
	}()
	l.release()
	<-done

	if got := m.Snapshot().SessionsActive; got != 0 {
		t.Errorf("sessionsActive after drop = %d, want 0", got)
	}
	// Dropping an unknown version is a no-op.
	p.drop(99)
}

// TestPoolAcquireAfterClose checks a waiter that outlives the drop
// gets ErrGraphGone rather than a closed session.
func TestPoolAcquireAfterClose(t *testing.T) {
	p := newSessionPool(&Metrics{}, 0)
	defer p.closeAll()
	g := graph.Path(4)
	l, err := p.acquire(5, g)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		// Races drop for the entry mutex; either it loses and sees
		// closed, or wins and releases before drop proceeds.
		l2, err := p.acquire(5, g)
		if err == nil {
			l2.release()
		}
		got <- err
	}()
	go func() {
		l.release()
	}()
	p.drop(5)
	if err := <-got; err != nil && !errors.Is(err, ErrGraphGone) {
		t.Fatalf("late acquire error = %v, want ErrGraphGone or success", err)
	}
}
