package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
)

// fakeBatcher is a batchFunc test double: it answers source s with the
// row [s*10] and records every batch it was asked to run.
type fakeBatcher struct {
	mu      sync.Mutex
	batches [][]core.NodeID
	delay   time.Duration
	err     error
}

func (f *fakeBatcher) run(sources []core.NodeID) (*batchResult, error) {
	f.mu.Lock()
	cp := make([]core.NodeID, len(sources))
	copy(cp, sources)
	f.batches = append(f.batches, cp)
	f.mu.Unlock()
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.err != nil {
		return nil, f.err
	}
	rows := make([][]int64, len(sources))
	for i, s := range sources {
		rows[i] = []int64{int64(s) * 10}
	}
	return &batchResult{rows: rows, beta: 7, passes: 1, rounds: 3}, nil
}

// TestCoalescerBatchesWithinWindow is the batching property at the
// unit level: k concurrent queries admitted inside one generous window
// ride at most ceil(k/maxBatch) kernel runs, and every query receives
// exactly its own row.
func TestCoalescerBatchesWithinWindow(t *testing.T) {
	const k, maxBatch = 20, 4
	fb := &fakeBatcher{}
	c := newCoalescer(maxBatch, 100*time.Millisecond, fb.run)

	var wg sync.WaitGroup
	outs := make([]queryOutcome, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = c.do(context.Background(), core.NodeID(i))
		}(i)
	}
	wg.Wait()

	runs, queries := c.counts()
	if queries != k {
		t.Fatalf("queries = %d, want %d", queries, k)
	}
	wantMax := uint64((k + maxBatch - 1) / maxBatch)
	if runs > wantMax {
		t.Errorf("runs = %d, want <= ceil(%d/%d) = %d", runs, k, maxBatch, wantMax)
	}
	for i, out := range outs {
		if out.err != nil {
			t.Fatalf("query %d: %v", i, out.err)
		}
		if len(out.dist) != 1 || out.dist[0] != int64(i)*10 {
			t.Errorf("query %d: dist = %v, want [%d]", i, out.dist, i*10)
		}
		if out.batch < 1 || out.batch > maxBatch {
			t.Errorf("query %d: batch size %d outside [1,%d]", i, out.batch, maxBatch)
		}
		if out.beta != 7 || out.passes != 1 || out.rounds != 3 {
			t.Errorf("query %d: telemetry (%d,%d,%d), want (7,1,3)", i, out.beta, out.passes, out.rounds)
		}
	}
	fb.mu.Lock()
	defer fb.mu.Unlock()
	var total int
	for _, b := range fb.batches {
		if len(b) > maxBatch {
			t.Errorf("batch of %d exceeds maxBatch %d", len(b), maxBatch)
		}
		total += len(b)
	}
	if total != k {
		t.Errorf("batched sources total %d, want %d", total, k)
	}
}

// TestCoalescerSequentialQueries checks the zero-window single-query
// path: each query gets its own run and batch size 1.
func TestCoalescerSequentialQueries(t *testing.T) {
	fb := &fakeBatcher{}
	c := newCoalescer(8, 0, fb.run)
	for i := 0; i < 3; i++ {
		out := c.do(context.Background(), core.NodeID(i))
		if out.err != nil {
			t.Fatalf("query %d: %v", i, out.err)
		}
		if out.dist[0] != int64(i)*10 {
			t.Errorf("query %d: dist %v", i, out.dist)
		}
	}
	runs, queries := c.counts()
	if queries != 3 || runs != 3 {
		t.Errorf("(runs, queries) = (%d, %d), want (3, 3)", runs, queries)
	}
}

// TestCoalescerErrorFansOut checks a failed batch delivers its error
// to every rider.
func TestCoalescerErrorFansOut(t *testing.T) {
	fb := &fakeBatcher{err: context.DeadlineExceeded}
	c := newCoalescer(8, 20*time.Millisecond, fb.run)
	var wg sync.WaitGroup
	outs := make([]queryOutcome, 4)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = c.do(context.Background(), core.NodeID(i))
		}(i)
	}
	wg.Wait()
	for i, out := range outs {
		if out.err == nil {
			t.Errorf("query %d: err = nil, want batch error", i)
		}
	}
}

// TestCoalescerContextCancel checks an abandoned query returns its
// context error without wedging the leader.
func TestCoalescerContextCancel(t *testing.T) {
	fb := &fakeBatcher{delay: 50 * time.Millisecond}
	c := newCoalescer(8, 0, fb.run)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := c.do(ctx, 0)
	if out.err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", out.err)
	}
	// The leader still completes; a fresh query afterwards works.
	out = c.do(context.Background(), 2)
	if out.err != nil || out.dist[0] != 20 {
		t.Fatalf("post-cancel query: %+v", out)
	}
}
