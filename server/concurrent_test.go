package server

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
	"github.com/paper-repo-growth/doryp20/pkg/api"
)

// TestConcurrentClientsBitIdentical is the coalescing acceptance test:
// N concurrent clients fire approx-sssp queries at one (graph, eps);
// every answer must be bit-identical to a standalone clique.Session
// running the single-source ApproxKSourceKernel directly, and the
// admission layer must have coalesced — strictly fewer kernel runs
// than queries.
func TestConcurrentClientsBitIdentical(t *testing.T) {
	const (
		n       = 40
		queries = 12
		eps     = 0.5
	)
	g := graph.RandomGNPWeighted(n, 0.15, 9, 5)

	// Oracle rows: one standalone warm session per source, the way a
	// batch-mode user would run the kernel.
	want := make(map[int64][]int64)
	for q := 0; q < queries; q++ {
		src := int64((q * 7) % n)
		if _, ok := want[src]; ok {
			continue
		}
		sess, err := clique.New(g)
		if err != nil {
			t.Fatal(err)
		}
		k := algo.NewApproxKSourceKernel([]core.NodeID{core.NodeID(src)}, hopset.Params{Eps: eps})
		if err := sess.Run(context.Background(), k); err != nil {
			t.Fatal(err)
		}
		want[src] = k.Dist()[0]
		sess.Close()
	}

	// A generous admission window so all queries land in few batches.
	srv, c := newTestDaemon(t, Options{MaxBatch: 4, CoalesceWait: 250 * time.Millisecond})
	id := upload(t, c, "swarm", g)

	var wg sync.WaitGroup
	resps := make([]api.ApproxSSSPResponse, queries)
	errs := make([]error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := int64((q * 7) % n)
			resps[q], errs[q] = c.ApproxSSSP(context.Background(), id, src, eps)
		}(q)
	}
	wg.Wait()

	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Fatalf("query %d: %v", q, errs[q])
		}
		src := int64((q * 7) % n)
		if !reflect.DeepEqual(resps[q].Dist, want[src]) {
			t.Errorf("query %d (source %d): coalesced answer differs from standalone session run", q, src)
		}
	}

	snap := srv.Metrics().Snapshot()
	if snap.BatchedQueries != queries {
		t.Errorf("batched queries = %d, want %d", snap.BatchedQueries, queries)
	}
	if snap.Batches >= queries {
		t.Errorf("batches = %d, want strictly fewer than %d queries (coalescing)", snap.Batches, queries)
	}
	if snap.BatchMax < 2 {
		t.Errorf("largest batch = %d, want >= 2", snap.BatchMax)
	}
	if snap.KernelRuns >= queries {
		t.Errorf("kernel runs = %d, want fewer than %d queries", snap.KernelRuns, queries)
	}
	t.Logf("coalesced %d queries into %d batches (max batch %d, %d cache hits)",
		queries, snap.Batches, snap.BatchMax, snap.CacheHits)
}

// TestConcurrentMixedQueryKinds hammers one graph with all three query
// kinds at once: the session pool must serialize cleanly (the engine
// would corrupt state otherwise) and every answer must match the
// oracle.
func TestConcurrentMixedQueryKinds(t *testing.T) {
	g := graph.RandomGNPWeighted(24, 0.25, 9, 13)
	_, c := newTestDaemon(t, Options{CoalesceWait: 10 * time.Millisecond})
	id := upload(t, c, "mixed", g)

	refs := make([][]int64, g.N)
	for v := 0; v < g.N; v++ {
		refs[v] = algo.BellmanFordRef(g, core.NodeID(v))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(3)
		src := int64(i % g.N)
		go func(src int64) {
			defer wg.Done()
			resp, err := c.SSSP(context.Background(), id, src)
			if err == nil && !reflect.DeepEqual(resp.Dist, refs[src]) {
				err = fmt.Errorf("sssp(%d) mismatch", src)
			}
			errCh <- err
		}(src)
		go func(src int64) {
			defer wg.Done()
			resp, err := c.KSource(context.Background(), id, []int64{src, (src + 1) % int64(g.N)}, 0)
			if err == nil && !reflect.DeepEqual(resp.Dist[0], refs[src]) {
				err = fmt.Errorf("ksource(%d) mismatch", src)
			}
			errCh <- err
		}(src)
		go func(src int64) {
			defer wg.Done()
			resp, err := c.ApproxSSSP(context.Background(), id, src, 0.25)
			if err == nil {
				for v, d := range resp.Dist {
					exact := refs[src][v]
					if (exact < 0) != (d < 0) || (exact >= 0 && d < exact) {
						err = fmt.Errorf("approx(%d) vertex %d: %d vs exact %d", src, v, d, exact)
						break
					}
				}
			}
			errCh <- err
		}(src)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}
