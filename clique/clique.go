// Package clique is the public session API of the Dory-Parter
// Congested Clique reproduction: the one way to run anything on the
// simulator. clique.New(g, opts...) builds a reusable *Session whose
// engine workers, sharded router, and stats sink stay warm across runs;
// Session.Run(ctx, kernel) executes a Kernel — a possibly multi-pass
// distributed computation — with context cancellation and deadlines
// plumbed into the engine's round barrier.
//
// Kernels are composable: a pipeline kernel (for example
// algo.KSourceDistances — hop-limited matrix powering followed by
// per-source relaxation, the skeleton the hopset construction drops
// into) simply requests one engine pass after another from the same
// warm session, and the session's cumulative Stats bill every stage
// under one account. The package also hosts a registry (Register /
// Kernels / NewKernel) that cmd/ccbench and the test suite iterate
// uniformly; internal/algo and internal/matmul register their kernels
// at init.
//
// Old free-function entry points (algo.BFS, algo.APSP, matmul.Mul, ...)
// remain as thin wrappers over this API.
package clique

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/trace"
)

// settings is the accumulated result of applying functional options.
type settings struct {
	eng engine.Options
	// explicitMaxRounds records that the caller pinned MaxRounds, so
	// kernel MaxRoundsHints must not override it.
	explicitMaxRounds bool
	// ckptDir/ckptEvery configure pass-boundary checkpointing; see
	// WithCheckpoint in checkpoint.go.
	ckptDir   string
	ckptEvery int
}

// Option configures a Session at New; see WithWorkers, WithBudget,
// WithMaxRounds, WithRoundHook, and WithEngineOptions.
type Option func(*settings)

// WithWorkers sets the engine's scheduler worker (and router shard)
// count. Zero selects the GOMAXPROCS default; negative values are
// rejected by New.
func WithWorkers(w int) Option {
	return func(s *settings) { s.eng.Workers = w }
}

// WithBudget sets the per-link, per-round bandwidth allowance. The zero
// budget selects core.DefaultBudget(n); a non-zero budget unable to
// carry one whole message is rejected by New.
func WithBudget(b core.Budget) Option {
	return func(s *settings) { s.eng.Budget = b }
}

// WithMaxRounds pins the per-pass round bound. An explicit bound is
// authoritative: kernels cannot raise it via MaxRoundsHint, and a pass
// that fails to quiesce within it fails with engine.ErrMaxRounds. Zero
// restores the adaptive default (4n+64, raised per pass by kernel
// hints); negative values are rejected by New.
func WithMaxRounds(m int) Option {
	return func(s *settings) {
		s.eng.MaxRounds = m
		s.explicitMaxRounds = m != 0
	}
}

// WithRoundHook installs a streaming observability tap: h is invoked
// synchronously after every executed engine round, across all passes
// and kernels of the session, with that round's stats. It must not call
// back into the session.
func WithRoundHook(h func(engine.RoundStats)) Option {
	return func(s *settings) { s.eng.RoundHook = h }
}

// WithTrace feeds the session's timing spans into recorder r: the
// engine records the per-round envelope and compute/scatter/exchange
// phase breakdown, and the session adds one span per kernel pass
// (named after the kernel, carrying the pass index and its round
// count). Nil disables tracing — the default, costing one nil check
// per round. Export the recorder with trace.WriteChrome after the
// runs; a multi-rank run passes one recorder per rank (tagged via
// Recorder.SetRank) to merge into a single timeline.
func WithTrace(r *trace.Recorder) Option {
	return func(s *settings) { s.eng.Trace = r }
}

// WithTransport routes the engine's per-round scatter/exchange through
// tr — engine.NewMemTransport (the default when nil) for the
// in-process slab router, or a multi-process transport such as
// engine.SocketTransport for one rank of a clique sharded across
// processes. The session (via its engine) takes ownership of tr and
// closes it on Close. See engine.Options.Transport.
func WithTransport(tr engine.Transport) Option {
	return func(s *settings) { s.eng.Transport = tr }
}

// WithEngineOptions replaces the session's engine options wholesale —
// the bridge for legacy callers holding an engine.Options value.
// Field-level options applied after it still win.
func WithEngineOptions(o engine.Options) Option {
	return func(s *settings) {
		s.eng = o
		s.explicitMaxRounds = o.MaxRounds != 0
	}
}

// Stats is a session's cumulative accounting across every engine pass
// it has executed, for every kernel run on it.
type Stats struct {
	// Runs counts engine passes (a pipeline kernel contributes one per
	// stage product).
	Runs int
	// Kernels counts kernels run to completion.
	Kernels int
	// Engine accumulates rounds, routed words, bytes, and wall time
	// over all passes. PerRound is not aggregated — round numbers
	// restart at zero each pass, so concatenating them would mislead;
	// use LastRun or WithRoundHook for per-round detail.
	Engine engine.Stats
}

// Session is a reusable handle on one simulated clique: the engine's
// worker pool, router slabs, and bandwidth counters are built once and
// stay warm across every Run. Sessions are not safe for concurrent use
// and must be released with Close.
type Session struct {
	g                 *graph.CSR
	eng               *engine.Engine
	explicitMaxRounds bool
	stats             Stats
	last              *engine.Stats
	tracer            *trace.Recorder
	closed            bool

	// Checkpoint/replay state (see checkpoint.go). digests accumulates
	// the engine's per-round replay digests across all passes of the
	// current kernel run; kernelPasses counts its completed passes;
	// roundsSinceCkpt drives the WithCheckpoint cadence; stop is the
	// RequestStop flag, observed at pass boundaries.
	ckptDir         string
	ckptEvery       int
	roundsSinceCkpt int
	digests         []uint64
	recordDigests   bool
	kernelPasses    int
	stop            atomic.Bool
}

// New builds a session over graph g (the clique size is g.N). Invalid
// options — negative worker or round counts, a bandwidth budget below
// one message word — are rejected here with a descriptive error.
func New(g *graph.CSR, opts ...Option) (*Session, error) {
	if g == nil {
		return nil, errors.New("clique: New requires a graph (use NewSize for graph-free sessions)")
	}
	return newSession(g, g.N, opts)
}

// NewSize builds a graph-free session for a clique of n nodes — the
// home for kernels whose inputs are not graphs, such as the matmul
// product kernels that carry their operand matrices. Kernels that need
// the session graph fail their Run with a descriptive error.
func NewSize(n int, opts ...Option) (*Session, error) {
	return newSession(nil, n, opts)
}

func newSession(g *graph.CSR, n int, opts []Option) (*Session, error) {
	var s settings
	for _, opt := range opts {
		opt(&s)
	}
	sess := &Session{
		g:                 g,
		explicitMaxRounds: s.explicitMaxRounds,
		ckptDir:           s.ckptDir,
		ckptEvery:         s.ckptEvery,
		recordDigests:     s.eng.RecordDigests,
		tracer:            s.eng.Trace,
	}
	// The session interposes on the engine's RoundHook to accumulate
	// replay digests across passes and drive the checkpoint cadence; the
	// caller's hook (if any) still sees every round.
	userHook := s.eng.RoundHook
	s.eng.RoundHook = func(rs engine.RoundStats) {
		if sess.recordDigests {
			sess.digests = append(sess.digests, rs.Digest)
		}
		sess.roundsSinceCkpt++
		if userHook != nil {
			userHook(rs)
		}
	}
	e, err := engine.New(n, s.eng)
	if err != nil {
		return nil, err
	}
	sess.eng = e
	return sess, nil
}

// Graph returns the graph the session was built over, or nil for a
// NewSize session.
func (s *Session) Graph() *graph.CSR { return s.g }

// N returns the clique size.
func (s *Session) N() int { return s.eng.NumNodes() }

// Partition returns the node range [lo, hi) the session transport
// assigned this process — [0, N()) on the in-process transport, this
// rank's shard on a multi-process one.
func (s *Session) Partition() (lo, hi int) { return s.eng.Partition() }

// Stats returns the session's cumulative accounting. The returned copy
// keeps growing semantics simple: it reflects everything executed so
// far and is not invalidated by later runs.
func (s *Session) Stats() Stats { return s.stats }

// LastRun returns the full stats (including PerRound detail) of the
// most recent engine pass, or nil if none has executed yet.
func (s *Session) LastRun() *engine.Stats { return s.last }

// Close releases the engine's worker goroutines and router slabs. The
// session must not be used afterwards; Close is idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.Close()
}

// Run executes kernel k to completion on the warm session: it asks the
// kernel for one engine pass after another (Kernel.Nodes) until the
// kernel reports completion with a nil node set, threading ctx's
// cancellation and deadline into every round barrier. A non-nil empty
// node set is a vacuous pass, not completion — that distinction keeps
// the kernel protocol (build, run, harvest) intact on zero-node
// sessions. On cancellation Run returns ctx.Err() and the session
// remains usable for further kernels; partial passes are still billed
// to Stats.
//
// A kernel that panics — in a node's Round handler or in Nodes itself —
// does not take the session down: the panic is recovered and returned
// as a *KernelPanicError, and the warm engine remains usable for the
// next kernel. When the session is configured WithCheckpoint and k is
// Checkpointable, checkpoints are written at pass boundaries on the
// configured cadence (see checkpoint.go); RequestStop ends the run
// with ErrStopped at the next pass boundary after a final checkpoint.
func (s *Session) Run(ctx context.Context, k Kernel) error {
	if s.closed {
		return ErrClosed
	}
	if k == nil {
		return errors.New("clique: Run with a nil Kernel")
	}
	if ta, ok := k.(TransportAware); ok {
		ta.SetGatherer(s.eng.Transport())
	}
	// A fresh kernel run: restart the per-run digest chain, pass
	// counter, checkpoint cadence, and any stale stop request.
	s.digests = s.digests[:0]
	s.kernelPasses = 0
	s.roundsSinceCkpt = 0
	s.stop.Store(false)
	return s.runLoop(ctx, k)
}

// runLoop is the shared pass-driving loop of Run and Resume. It
// assumes the per-run session state (digests, kernelPasses, stop) has
// been initialized by its caller.
func (s *Session) runLoop(ctx context.Context, k Kernel) error {
	ck, checkpointing := k.(Checkpointable)
	checkpointing = checkpointing && s.ckptDir != ""
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		nodes, err := s.safeNodes(k)
		if err != nil {
			return err
		}
		if nodes == nil {
			s.stats.Kernels++
			return nil
		}
		bound := 0
		if !s.explicitMaxRounds {
			if h, ok := k.(MaxRoundsHinter); ok {
				bound = h.MaxRoundsHint()
			}
		}
		var passStart time.Time
		if s.tracer != nil {
			passStart = time.Now()
		}
		st, err := s.eng.RunBounded(ctx, nodes, bound)
		s.track(st)
		if s.tracer != nil && st != nil {
			// One pass span per engine pass, on the rank's pass lane —
			// named after the kernel so a pipeline's stages read off the
			// timeline. Recorded for failed passes too: a trace that
			// ends at the failing pass is the point of tracing.
			s.tracer.Record(trace.Span{
				Name: k.Name(), Cat: trace.CatPass, Lane: trace.LanePasses,
				Start: s.tracer.Since(passStart), Dur: int64(time.Since(passStart)),
				Round: int64(s.kernelPasses), Arg: uint64(st.Rounds),
			})
		}
		if err != nil {
			var hp *engine.HandlerPanicError
			if errors.As(err, &hp) {
				return &KernelPanicError{Kernel: k.Name(), Node: hp.Node, Round: hp.Round, Value: hp.Value}
			}
			return err
		}
		s.kernelPasses++
		stopping := s.stop.Load()
		if checkpointing && (s.roundsSinceCkpt >= s.ckptEvery || stopping) {
			if err := s.writeCheckpoint(ck); err != nil {
				return err
			}
			s.roundsSinceCkpt = 0
		}
		if stopping {
			s.stop.Store(false)
			return ErrStopped
		}
	}
}

// safeNodes calls k.Nodes with panic containment, wrapping errors with
// the kernel name and panics as *KernelPanicError.
func (s *Session) safeNodes(k Kernel) (nodes []engine.Node, err error) {
	defer func() {
		if p := recover(); p != nil {
			nodes = nil
			err = &KernelPanicError{Kernel: k.Name(), Node: -1, Value: p}
		}
	}()
	nodes, err = k.Nodes(s.g)
	if err != nil {
		return nil, fmt.Errorf("clique: kernel %q: %w", k.Name(), err)
	}
	return nodes, nil
}

// OneShot runs kernel k to completion on s with a background context,
// closes the session, and returns the session's cumulative engine
// stats — the shared spine of the historical free-function wrappers in
// internal/algo and internal/matmul. The stats are nil only when no
// engine pass executed before a failure (e.g. kernel input validation),
// matching those functions' historical contract; a successful zero-pass
// run returns non-nil zero stats.
func OneShot(s *Session, k Kernel) (*engine.Stats, error) {
	defer s.Close()
	err := s.Run(context.Background(), k)
	if err != nil && s.stats.Runs == 0 {
		return nil, err
	}
	st := s.stats.Engine
	return &st, err
}

// track folds one engine pass into the cumulative account.
func (s *Session) track(st *engine.Stats) {
	if st == nil {
		return
	}
	s.last = st
	s.stats.Runs++
	s.stats.Engine.Rounds += st.Rounds
	s.stats.Engine.TotalMsgs += st.TotalMsgs
	s.stats.Engine.TotalBytes += st.TotalBytes
	s.stats.Engine.Wall += st.Wall
}
