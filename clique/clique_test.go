package clique_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	_ "github.com/paper-repo-growth/doryp20/internal/matmul" // register matmul kernels
)

// chatterNode sends one word to its ring successor every round and so
// never quiesces — the adversarial kernel for cancellation tests.
type chatterNode struct{ n int }

func (c *chatterNode) Round(ctx *engine.Ctx, r core.Round, inbox []engine.Message) error {
	return ctx.Send(core.NodeID((int(ctx.ID())+1)%c.n), uint64(r))
}

// chatterKernel wraps chatterNodes as a never-completing Kernel.
type chatterKernel struct{ built bool }

func (k *chatterKernel) Name() string { return "test-chatter" }

func (k *chatterKernel) Nodes(g *graph.CSR) ([]engine.Node, error) {
	if k.built {
		return nil, nil
	}
	k.built = true
	nodes := make([]engine.Node, g.N)
	for i := range nodes {
		nodes[i] = &chatterNode{n: g.N}
	}
	return nodes, nil
}

func (k *chatterKernel) Result() any { return nil }

// waitForGoroutines polls until the goroutine count drops back to at
// most base (workers unwind asynchronously after Close).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestRunCancellationStopsMidRoundAndLeaksNothing: a kernel that never
// quiesces must be stopped by the context deadline at a round barrier,
// Session.Run must return ctx.Err(), and closing the session must
// release every worker goroutine.
func TestRunCancellationStopsMidRoundAndLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	g := graph.Clique(8)
	s, err := clique.New(g, clique.WithMaxRounds(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	err = s.Run(ctx, &chatterKernel{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want context.DeadlineExceeded", err)
	}
	// The deadline struck mid-run: rounds were executed, then stopped
	// long before the absurd MaxRounds bound.
	if st := s.Stats(); st.Runs != 1 || st.Engine.Rounds == 0 {
		t.Errorf("partial pass not billed: %+v", st)
	}
	if st := s.Stats(); st.Kernels != 0 {
		t.Errorf("cancelled kernel counted as completed: %+v", st)
	}

	// The session survives cancellation: the next kernel runs normally
	// on the same warm workers.
	dist, err2 := runBFS(s)
	if err2 != nil {
		t.Fatalf("kernel after cancellation: %v", err2)
	}
	if want := algo.BFSRef(g, 0); !reflect.DeepEqual(dist, want) {
		t.Errorf("post-cancellation BFS = %v, want %v", dist, want)
	}

	s.Close()
	s.Close() // idempotent
	waitForGoroutines(t, base)

	if err := s.Run(context.Background(), &chatterKernel{}); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Errorf("Run on closed session = %v, want closed error", err)
	}
}

func runBFS(s *clique.Session) ([]int64, error) {
	k := algo.NewBFSKernel(0)
	if err := s.Run(context.Background(), k); err != nil {
		return nil, err
	}
	return k.Dist(), nil
}

// TestInvalidOptionsRejectedAtNew: the session constructor must reject
// the option values engine.Options.Validate rejects.
func TestInvalidOptionsRejectedAtNew(t *testing.T) {
	g := graph.Path(4)
	cases := []struct {
		name string
		opt  clique.Option
	}{
		{"negative workers", clique.WithWorkers(-2)},
		{"negative max rounds", clique.WithMaxRounds(-7)},
		{"sub-word budget", clique.WithBudget(core.Budget{BitsPerLink: 8, MsgBits: 64})},
		{"legacy negative options", clique.WithEngineOptions(engine.Options{Workers: -1})},
	}
	for _, tc := range cases {
		if _, err := clique.New(g, tc.opt); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		}
	}
	if _, err := clique.New(nil); err == nil {
		t.Error("New accepted a nil graph")
	}
	if _, err := clique.NewSize(-1); err == nil {
		t.Error("NewSize accepted a negative size")
	}
}

// TestRoundHookStreamsAcrossKernels: WithRoundHook must observe every
// round of every pass of every kernel run on the session.
func TestRoundHookStreamsAcrossKernels(t *testing.T) {
	g := graph.RandomGNP(12, 0.3, 3).WithUniformRandomWeights(4, 5)
	var hookRounds int
	s, err := clique.New(g, clique.WithRoundHook(func(engine.RoundStats) { hookRounds++ }))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"bfs", "apsp"} {
		k, err := clique.NewKernel(name, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background(), k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if st := s.Stats(); hookRounds != st.Engine.Rounds {
		t.Errorf("hook saw %d rounds, cumulative stats say %d", hookRounds, st.Engine.Rounds)
	}
	if s.LastRun() == nil || s.LastRun().Rounds == 0 {
		t.Error("LastRun missing after kernels ran")
	}
}

// TestSessionRejectsNilKernel and mismatched sessions.
func TestSessionRunErrors(t *testing.T) {
	s, err := clique.NewSize(4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Run(context.Background(), nil); err == nil {
		t.Error("nil kernel accepted")
	}
	// A graph-needing kernel on a graph-free session must explain itself.
	err = s.Run(context.Background(), algo.NewBFSKernel(0))
	if err == nil || !strings.Contains(err.Error(), "graph") {
		t.Errorf("graph-free session error = %v, want mention of graph", err)
	}
}

// TestExplicitMaxRoundsBeatsKernelHint: WithMaxRounds pins the bound,
// so a kernel whose pass needs more rounds fails with ErrMaxRounds
// instead of silently raising it.
func TestExplicitMaxRoundsBeatsKernelHint(t *testing.T) {
	// A clique's Bellman-Ford floods for ~3 rounds; bound it to 1.
	g := graph.Clique(6).WithUniformRandomWeights(2, 9)
	s, err := clique.New(g, clique.WithMaxRounds(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), k); !errors.Is(err, engine.ErrMaxRounds) {
		t.Fatalf("Run = %v, want ErrMaxRounds under an explicit 1-round bound", err)
	}
}
