package clique_test

import (
	"context"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/trace"
)

// TestWithTracePassSpans: a traced session records one pass span per
// engine pass, named after the kernel, carrying the pass index and its
// round count, alongside the engine's round and phase spans.
func TestWithTracePassSpans(t *testing.T) {
	g := graph.RandomGNP(12, 0.3, 3).WithUniformRandomWeights(4, 5)
	rec := trace.NewRecorder(4096)
	s, err := clique.New(g, clique.WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"bfs", "apsp"} {
		k, err := clique.NewKernel(name, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background(), k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	st := s.Stats()
	var passes []trace.Span
	var rounds int
	for _, sp := range rec.Spans() {
		switch sp.Cat {
		case trace.CatPass:
			passes = append(passes, sp)
		case trace.CatRound:
			rounds++
		}
	}
	if len(passes) != st.Runs {
		t.Fatalf("%d pass spans for %d engine passes", len(passes), st.Runs)
	}
	if rounds != st.Engine.Rounds {
		t.Fatalf("%d round spans for %d cumulative rounds", rounds, st.Engine.Rounds)
	}
	names := map[string]bool{}
	var passRounds uint64
	for _, sp := range passes {
		names[sp.Name] = true
		if sp.Lane != trace.LanePasses {
			t.Fatalf("pass span %q on lane %d", sp.Name, sp.Lane)
		}
		if sp.Dur <= 0 || sp.Arg == 0 {
			t.Fatalf("pass span %q: Dur %d, Arg (rounds) %d", sp.Name, sp.Dur, sp.Arg)
		}
		passRounds += sp.Arg
	}
	if !names["bfs"] || !names["apsp"] {
		t.Fatalf("pass span names %v, want bfs and apsp", names)
	}
	if passRounds != uint64(st.Engine.Rounds) {
		t.Fatalf("pass spans bill %d rounds, stats say %d", passRounds, st.Engine.Rounds)
	}
}
