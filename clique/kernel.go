package clique

import (
	"fmt"

	"github.com/paper-repo-growth/doryp20/internal/engine"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// Kernel is one distributed computation runnable on a Session — the
// composable unit of the Dory-Parter pipeline. A kernel is a node-set
// factory plus result sink driven by Session.Run in passes:
//
//  1. Run calls Nodes(g) with the session graph. A non-nil node set is
//     executed as one engine pass (all nodes from round 0 to
//     quiescence; an empty non-nil set is a vacuous pass on a
//     zero-node session, not completion).
//  2. Run calls Nodes again; the kernel harvests its per-node state
//     from the completed pass and either returns the next pass's nodes
//     (pipeline stages, repeated matrix squarings, ...) or reports
//     completion by returning nil.
//  3. After completion, Result returns the kernel's output.
//
// Single-pass algorithms return nodes once and then harvest; pipeline
// kernels interleave as many passes as they need — all on the same
// warm engine, under one cumulative Stats account. Kernels are
// single-use: run a fresh value for a fresh computation. Implementations
// that prefer typed results should also expose a typed accessor (see
// ResultAs for the generic bridge).
type Kernel interface {
	// Name identifies the kernel in errors, the registry, and reports.
	Name() string
	// Nodes returns the node set for the next engine pass, or nil when
	// the kernel has completed (slices from make are non-nil even at
	// length zero, so built passes and completion never collide). g is
	// the session graph (nil for NewSize sessions; kernels that need
	// it must return a descriptive error).
	Nodes(g *graph.CSR) ([]engine.Node, error)
	// Result returns the kernel's output after completion, nil before.
	Result() any
}

// MaxRoundsHinter is optionally implemented by kernels whose next pass
// may legitimately need more rounds than the engine's 4n+64 default —
// for example streaming one very wide matrix row under a one-word link
// cap. Session.Run consults the hint after each Nodes call and raises
// that pass's bound to it, unless the caller pinned WithMaxRounds. A
// hint <= 0 means "no opinion".
type MaxRoundsHinter interface {
	MaxRoundsHint() int
}

// TransportAware is optionally implemented by kernels that harvest
// results outside the engine's per-round message flow — for example by
// reading accumulator matrices directly. On a multi-process transport
// each rank only executes its own node shard, so such harvests must
// all-gather the remote shards first; Session.Run and Session.Resume
// inject the session transport (which is the engine.Gatherer for the
// clique) before the first Nodes call. Kernels whose results flow
// entirely through messages need not implement it: the in-memory
// transport's gather is a no-op either way.
type TransportAware interface {
	SetGatherer(engine.Gatherer)
}

// ResultAs returns k's Result as a T, with a descriptive error when the
// kernel is incomplete or produced a different type — the typed-access
// bridge for registry-constructed kernels whose concrete type is not in
// hand.
func ResultAs[T any](k Kernel) (T, error) {
	var zero T
	r := k.Result()
	if r == nil {
		return zero, fmt.Errorf("clique: kernel %q has no result (did its Run complete?)", k.Name())
	}
	v, ok := r.(T)
	if !ok {
		return zero, fmt.Errorf("clique: kernel %q result is %T, not %T", k.Name(), r, zero)
	}
	return v, nil
}
