package clique

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// Factory builds a fresh Kernel instance for one run over g, choosing
// sensible demonstration parameters (source vertices, hop bounds) from
// the graph itself so that every registered kernel is runnable on any
// input. Registered factories power uniform iteration: cmd/ccbench's
// -list / -kernel flags and the degenerate-graph test sweep.
type Factory func(g *graph.CSR) (Kernel, error)

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: make(map[string]Factory)}

// Register adds a kernel factory under name, following the
// plugin-driver pattern: internal/algo and internal/matmul register
// their kernels from init, and any importer of those packages sees them
// in Kernels(). It panics on an empty name, a nil factory, or a
// duplicate registration — all programmer errors at init time.
func Register(name string, f Factory) {
	if strings.TrimSpace(name) == "" {
		panic("clique: Register with an empty kernel name")
	}
	if f == nil {
		panic(fmt.Sprintf("clique: Register(%q) with a nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("clique: kernel %q registered twice", name))
	}
	registry.m[name] = f
}

// Kernels returns the sorted names of all registered kernels.
func Kernels() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether a kernel factory is registered under
// name — the cheap existence check for CLI validation paths that want
// exit-code-2 diagnostics before committing cluster resources.
func Registered(name string) bool {
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.m[name]
	return ok
}

// NewKernel constructs a fresh instance of the registered kernel name
// for graph g. Unknown names yield an error listing what is available.
func NewKernel(name string, g *graph.CSR) (Kernel, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("clique: unknown kernel %q (registered: %s)",
			name, strings.Join(Kernels(), ", "))
	}
	return f(g)
}
