package clique_test

import (
	"context"
	"fmt"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// Example composes two kernels on one warm session: a BFS flood and the
// two-stage k-source pipeline (hop-limited matrix powering, then
// per-source relaxation) run back to back on the same engine workers,
// with every pass billed to the session's cumulative stats.
func Example() {
	g := graph.Path(5)
	s, err := clique.New(g)
	if err != nil {
		panic(err)
	}
	defer s.Close()

	bfs := algo.NewBFSKernel(0)
	if err := s.Run(context.Background(), bfs); err != nil {
		panic(err)
	}
	fmt.Println("bfs from 0:", bfs.Dist())

	ks := algo.NewKSourceKernel([]core.NodeID{4}, 2)
	if err := s.Run(context.Background(), ks); err != nil {
		panic(err)
	}
	fmt.Println("dist from 4:", ks.Dist()[0])

	st := s.Stats()
	fmt.Println("kernels run:", st.Kernels)
	fmt.Println("engine passes:", st.Runs)
	// Output:
	// bfs from 0: [0 1 2 3 4]
	// dist from 4: [4 3 2 1 0]
	// kernels run: 2
	// engine passes: 4
}
