package clique

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// goldenStats is the fixed value whose encoding is pinned by
// testdata/stats_golden.json — the one marshal path shared by ccbench
// reports, ccnode reports, and ccserve /stats responses.
var goldenStats = Stats{
	Runs:    7,
	Kernels: 2,
	Engine: engine.Stats{
		Rounds:     123,
		TotalMsgs:  456789,
		TotalBytes: 3654312,
		Wall:       1500000321 * time.Nanosecond,
		// PerRound must not leak into the wire shape.
		PerRound: []engine.RoundStats{{Round: 1, Msgs: 9}},
	},
}

func TestStatsJSONGolden(t *testing.T) {
	got, err := json.MarshalIndent(goldenStats, "", "  ")
	if err != nil {
		t.Fatalf("MarshalIndent: %v", err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "stats_golden.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stats JSON shape drifted from the golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	data, err := json.Marshal(goldenStats)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	want := goldenStats
	want.Engine.PerRound = nil // summaries only on the wire
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip: got %+v, want %+v", back, want)
	}
}
