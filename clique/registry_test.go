package clique_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/algo"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
)

// TestRegistryListsAllShippedKernels pins the registered surface: every
// shipped algorithm must be invocable through the registry.
func TestRegistryListsAllShippedKernels(t *testing.T) {
	got := clique.Kernels()
	want := []string{"approx-ksource", "approx-sssp", "apsp", "bellman-ford", "bfs",
		"closure", "diameter-est", "diameter-est-approx", "hop-limited", "hopset",
		"ksource", "matmul-square", "mst", "widest", "widest-ksource"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Kernels() = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Error("Kernels() not sorted")
	}
	if _, err := clique.NewKernel("no-such-kernel", graph.Path(2)); err == nil {
		t.Error("unknown kernel name accepted")
	}
}

// TestAllKernelsOnDegenerateGraphs sweeps every registered kernel over
// the degenerate inputs that historically slip through API redesigns:
// a single vertex and zero-edge graphs, weighted and not. Every kernel
// must complete without error through the session API.
func TestAllKernelsOnDegenerateGraphs(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"n1":            graph.Path(1),
		"n1_weighted":   graph.Path(1).WithUnitWeights(),
		"edgeless":      graph.RandomGNP(4, 0, 1),
		"edgeless_wtd":  graph.RandomGNP(4, 0, 1).WithUniformRandomWeights(2, 9),
		"two_connected": graph.Path(2).WithUniformRandomWeights(3, 4),
	}
	for gname, g := range graphs {
		for _, kname := range clique.Kernels() {
			t.Run(gname+"/"+kname, func(t *testing.T) {
				s, err := clique.New(g)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				k, err := clique.NewKernel(kname, g)
				if err != nil {
					t.Fatalf("NewKernel: %v", err)
				}
				if err := s.Run(context.Background(), k); err != nil {
					t.Fatalf("Run: %v", err)
				}
				if st := s.Stats(); st.Kernels != 1 {
					t.Fatalf("Kernels = %d, want 1", st.Kernels)
				}
				if k.Result() == nil {
					t.Fatal("Result() nil after successful Run")
				}
			})
		}
	}
}

// TestDegenerateDistancesAreCorrect spot-checks the values (not just
// absence of errors) that the registry kernels produce on the
// degenerate inputs.
func TestDegenerateDistancesAreCorrect(t *testing.T) {
	run := func(name string, g *graph.CSR) clique.Kernel {
		t.Helper()
		s, err := clique.New(g)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		k, err := clique.NewKernel(name, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(context.Background(), k); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return k
	}

	one := graph.Path(1)
	if dist, err := clique.ResultAs[[]int64](run("bfs", one)); err != nil || !reflect.DeepEqual(dist, []int64{0}) {
		t.Errorf("bfs on n=1 = %v (%v), want [0]", dist, err)
	}
	if dist, err := clique.ResultAs[[][]int64](run("apsp", one)); err != nil || !reflect.DeepEqual(dist, [][]int64{{0}}) {
		t.Errorf("apsp on n=1 = %v (%v), want [[0]]", dist, err)
	}

	edgeless := graph.RandomGNP(4, 0, 1)
	u := algo.Unreached
	if dist, err := clique.ResultAs[[]int64](run("bellman-ford", edgeless)); err != nil ||
		!reflect.DeepEqual(dist, []int64{0, u, u, u}) {
		t.Errorf("bellman-ford on edgeless = %v (%v)", dist, err)
	}
	wantAPSP := [][]int64{{0, u, u, u}, {u, 0, u, u}, {u, u, 0, u}, {u, u, u, 0}}
	if dist, err := clique.ResultAs[[][]int64](run("apsp", edgeless)); err != nil ||
		!reflect.DeepEqual(dist, wantAPSP) {
		t.Errorf("apsp on edgeless = %v (%v)", dist, err)
	}

	// The PR-10 kernels: widest widths, reachability, forests, diameter.
	iw := core.InfWidth
	wantWidest := [][]int64{{iw, 0, 0, 0}, {0, iw, 0, 0}, {0, 0, iw, 0}, {0, 0, 0, iw}}
	if width, err := clique.ResultAs[[][]int64](run("widest", edgeless)); err != nil ||
		!reflect.DeepEqual(width, wantWidest) {
		t.Errorf("widest on edgeless = %v (%v)", width, err)
	}
	two := graph.Path(2).WithUniformRandomWeights(3, 4)
	if width, err := clique.ResultAs[[][]int64](run("widest", two)); err != nil ||
		width[0][1] != two.Weights[0] || width[0][0] != iw {
		t.Errorf("widest on two_connected = %v (%v)", width, err)
	}
	wantReach := [][]bool{{true, false, false, false}, {false, true, false, false},
		{false, false, true, false}, {false, false, false, true}}
	if reach, err := clique.ResultAs[[][]bool](run("closure", edgeless)); err != nil ||
		!reflect.DeepEqual(reach, wantReach) {
		t.Errorf("closure on edgeless = %v (%v)", reach, err)
	}
	if res, err := clique.ResultAs[algo.MSTResult](run("mst", two)); err != nil ||
		res.Weight != two.Weights[0] || len(res.Edges) != 1 {
		t.Errorf("mst on two_connected = %+v (%v)", res, err)
	}
	if res, err := clique.ResultAs[algo.MSTResult](run("mst", edgeless)); err != nil ||
		res.Weight != 0 || len(res.Edges) != 0 {
		t.Errorf("mst on edgeless = %+v (%v)", res, err)
	}
	if est, err := clique.ResultAs[algo.DiameterEstimate](run("diameter-est", one)); err != nil ||
		est.Estimate != 0 {
		t.Errorf("diameter-est on n=1 = %+v (%v)", est, err)
	}
	if est, err := clique.ResultAs[algo.DiameterEstimate](run("diameter-est", edgeless)); err != nil ||
		est.Estimate != u {
		t.Errorf("diameter-est on edgeless = %+v (%v)", est, err)
	}
}
