package clique

import (
	"encoding/json"

	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// statsJSON is the stable wire shape of a session's cumulative Stats:
// the pass and kernel counters plus the engine summary in
// engine.Stats's own stable encoding. This is the repository's one
// marshal path for session accounting — ccbench -kernel-o reports,
// ccnode rank reports, and ccserve's /stats endpoint all embed it —
// so the shape is golden-file tested and must only grow
// backward-compatibly.
type statsJSON struct {
	Runs    int          `json:"runs"`
	Kernels int          `json:"kernels"`
	Engine  engine.Stats `json:"engine"`
}

// MarshalJSON encodes the stats in the stable shape
// {"runs","kernels","engine":{"rounds","msgs","bytes","wall_ns"}}.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{Runs: s.Runs, Kernels: s.Kernels, Engine: s.Engine})
}

// UnmarshalJSON decodes the stable shape written by MarshalJSON.
func (s *Stats) UnmarshalJSON(data []byte) error {
	var sj statsJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	*s = Stats{Runs: sj.Runs, Kernels: sj.Kernels, Engine: sj.Engine}
	return nil
}
