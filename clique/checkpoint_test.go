package clique_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/paper-repo-growth/doryp20/clique"
	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/graph"
	"github.com/paper-repo-growth/doryp20/internal/hopset"
)

// ckptGraph is a small weighted graph on which every kernel runs more
// than one pass.
func ckptGraph() *graph.CSR {
	return graph.RandomGNPWeighted(8, 0.4, 9, 3)
}

// runWithCheckpoints runs kernel name to completion on a session
// checkpointing at every pass boundary and returns the completed
// kernel, the session, and the checkpoint path.
func runWithCheckpoints(t *testing.T, g *graph.CSR, name, dir string) (clique.Kernel, *clique.Session, string) {
	t.Helper()
	s, err := clique.New(g, clique.WithCheckpoint(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	k, err := clique.NewKernel(name, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(context.Background(), k); err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	return k, s, clique.CheckpointPath(dir, name)
}

// TestResumeAfterClose pins the misuse contract: Resume on a closed
// session fails fast with ErrClosed, never deadlocking on the torn-down
// engine.
func TestResumeAfterClose(t *testing.T) {
	g := ckptGraph()
	_, s, path := runWithCheckpoints(t, g, "apsp", t.TempDir())
	s.Close()
	k, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(context.Background(), k.(clique.Checkpointable), path); !errors.Is(err, clique.ErrClosed) {
		t.Fatalf("Resume on closed session = %v, want ErrClosed", err)
	}
}

// TestResumeIntoStartedKernel pins the other misuse contract: restoring
// into a kernel that has already run fails with ErrKernelStarted — both
// for a kernel that completed a Run and for a double Resume of the same
// kernel value.
func TestResumeIntoStartedKernel(t *testing.T) {
	g := ckptGraph()
	ctx := context.Background()
	ran, s, path := runWithCheckpoints(t, g, "apsp", t.TempDir())

	// The kernel that just ran is no longer fresh.
	if err := s.Resume(ctx, ran.(clique.Checkpointable), path); !errors.Is(err, clique.ErrKernelStarted) {
		t.Fatalf("Resume into a completed kernel = %v, want ErrKernelStarted", err)
	}

	// A fresh kernel resumes fine once; the second Resume of the same
	// value must be rejected.
	k, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(ctx, k.(clique.Checkpointable), path); err != nil {
		t.Fatalf("first Resume: %v", err)
	}
	if err := s.Resume(ctx, k.(clique.Checkpointable), path); !errors.Is(err, clique.ErrKernelStarted) {
		t.Fatalf("second Resume of same kernel = %v, want ErrKernelStarted", err)
	}
}

// TestResumeRejectsMismatchedSessions pins checkpoint validation: a
// checkpoint resumes only into a session of the same clique size and
// bandwidth budget, and only into the kernel it was written for.
func TestResumeRejectsMismatchedSessions(t *testing.T) {
	g := ckptGraph()
	ctx := context.Background()
	_, _, path := runWithCheckpoints(t, g, "apsp", t.TempDir())

	wrongSize, err := clique.New(graph.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	defer wrongSize.Close()
	k, err := clique.NewKernel("apsp", graph.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongSize.Resume(ctx, k.(clique.Checkpointable), path); err == nil || !strings.Contains(err.Error(), "sized") {
		t.Errorf("Resume into wrong-sized session = %v, want size mismatch", err)
	}

	wrongBudget, err := clique.New(g, clique.WithBudget(core.Budget{BitsPerLink: 256, MsgBits: 128}))
	if err != nil {
		t.Fatal(err)
	}
	defer wrongBudget.Close()
	k2, err := clique.NewKernel("apsp", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongBudget.Resume(ctx, k2.(clique.Checkpointable), path); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("Resume into wrong-budget session = %v, want budget mismatch", err)
	}

	rightSession, err := clique.New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer rightSession.Close()
	wrongKernel, err := clique.NewKernel("hop-limited", g)
	if err != nil {
		t.Fatal(err)
	}
	if err := rightSession.Resume(ctx, wrongKernel.(clique.Checkpointable), path); err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Errorf("Resume with wrong kernel = %v, want kernel mismatch", err)
	}
}

// TestResumeRejectsCorruptFiles feeds Resume a truncated checkpoint, a
// bit-flipped one, and garbage, expecting a descriptive error each time
// with no state applied and no deadlock.
func TestResumeRejectsCorruptFiles(t *testing.T) {
	g := ckptGraph()
	ctx := context.Background()
	dir := t.TempDir()
	_, s, path := runWithCheckpoints(t, g, "apsp", dir)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated": good[:len(good)/2],
		"garbage":   []byte("not a checkpoint at all, sorry"),
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bitflip"] = flipped

	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(dir, name+".ckpt")
			if err := os.WriteFile(bad, data, 0o644); err != nil {
				t.Fatal(err)
			}
			k, err := clique.NewKernel("apsp", g)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Resume(ctx, k.(clique.Checkpointable), bad); err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			// The rejected resume must not have marked the kernel started:
			// a clean run on it still works.
			if err := s.Run(ctx, k); err != nil {
				t.Fatalf("run after rejected resume: %v", err)
			}
		})
	}
}

// TestCheckpointIgnoredForPlainKernels pins that WithCheckpoint leaves
// kernels that do not implement Checkpointable entirely alone: the run
// succeeds and no checkpoint file appears.
func TestCheckpointIgnoredForPlainKernels(t *testing.T) {
	g := ckptGraph()
	dir := t.TempDir()
	_, _, path := runWithCheckpoints(t, g, "bfs", dir)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint file for non-Checkpointable kernel (stat err %v)", err)
	}
}

// ckptResultsEqual compares kernel results; hopsets go through their
// canonical serialization because their matrices embed semiring
// function values, which reflect.DeepEqual refuses to compare.
func ckptResultsEqual(a, b any) bool {
	ha, aok := a.(*hopset.Hopset)
	hb, bok := b.(*hopset.Hopset)
	if aok || bok {
		enc := func(hs *hopset.Hopset) []byte {
			var buf bytes.Buffer
			w := ckptio.NewWriter(&buf)
			hopset.WriteHopset(w, hs)
			return buf.Bytes()
		}
		return aok && bok && bytes.Equal(enc(ha), enc(hb))
	}
	return reflect.DeepEqual(a, b)
}

// TestCheckpointableSweepOnDegenerateGraphs round-trips every
// Checkpointable kernel's state on the degenerate inputs (single
// vertex, zero edges): run to completion, snapshot the completed
// state, restore into a fresh kernel, and require the identical
// result. Where the run wrote a checkpoint file, Resume from it must
// reproduce the result too.
func TestCheckpointableSweepOnDegenerateGraphs(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"n1":           graph.Path(1),
		"edgeless":     graph.RandomGNP(4, 0, 1),
		"edgeless_wtd": graph.RandomGNP(4, 0, 1).WithUniformRandomWeights(2, 9),
	}
	ctx := context.Background()
	for gname, g := range graphs {
		for _, kname := range clique.Kernels() {
			probe, err := clique.NewKernel(kname, g)
			if err != nil {
				t.Fatalf("NewKernel(%q): %v", kname, err)
			}
			if _, ok := probe.(clique.Checkpointable); !ok {
				continue
			}
			t.Run(gname+"/"+kname, func(t *testing.T) {
				dir := t.TempDir()
				ran, s, path := runWithCheckpoints(t, g, kname, dir)

				// Direct state round trip of the completed kernel.
				var buf bytes.Buffer
				if err := ran.(clique.Checkpointable).SnapshotState(&buf); err != nil {
					t.Fatalf("SnapshotState: %v", err)
				}
				fresh, err := clique.NewKernel(kname, g)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.(clique.Checkpointable).RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
					t.Fatalf("RestoreState: %v", err)
				}
				if !ckptResultsEqual(fresh.Result(), ran.Result()) {
					t.Errorf("restored result differs:\n restored: %v\n original: %v", fresh.Result(), ran.Result())
				}

				// Zero-pass runs (everything resolved locally) write no
				// file; when one exists, Resume must reproduce the result.
				if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
					return
				}
				resumed, err := clique.NewKernel(kname, g)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Resume(ctx, resumed.(clique.Checkpointable), path); err != nil {
					t.Fatalf("Resume: %v", err)
				}
				if !ckptResultsEqual(resumed.Result(), ran.Result()) {
					t.Errorf("resumed result differs:\n resumed: %v\n original: %v", resumed.Result(), ran.Result())
				}
			})
		}
	}
}
