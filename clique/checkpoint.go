// Checkpoint/restore for kernel runs. A Session configured with
// WithCheckpoint persists a versioned checkpoint file at pass
// boundaries — the points where a multi-pass kernel's state is a
// serializable value (matrices plus a pass cursor) rather than live
// per-node handler state — and Session.Resume reconstructs the run
// from the latest file: a fresh kernel's state is restored, the
// session's cumulative stats and replay digests are rewound to the
// checkpoint, and the remaining passes execute exactly as the
// uninterrupted run would have (bit-identical results and digest
// chains; internal/faults holds the property tests).
//
// Files are written atomically (temp file, fsync, rename), carry a
// magic/version header, record the clique shape (n and bandwidth
// budget) so a mismatched resume is rejected, and end in a ckptio
// integrity trailer so a torn or corrupted file is detected before any
// state is applied.
package clique

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/paper-repo-growth/doryp20/internal/ckptio"
	"github.com/paper-repo-growth/doryp20/internal/core"
	"github.com/paper-repo-growth/doryp20/internal/engine"
)

// Checkpointable is a Kernel whose inter-pass state can be serialized
// and restored — the contract WithCheckpoint and Session.Resume
// operate on. SnapshotState is called only at pass boundaries (after a
// completed engine pass, never mid-round) and must write a
// self-delimiting encoding of everything the kernel needs to continue;
// RestoreState is its inverse and must be called on a fresh, unstarted
// kernel (a started kernel returns ErrKernelStarted).
type Checkpointable interface {
	Kernel
	// SnapshotState serializes the kernel's inter-pass state to w.
	SnapshotState(w io.Writer) error
	// RestoreState loads state written by SnapshotState into a fresh
	// kernel, returning ErrKernelStarted if the kernel has already
	// produced a pass.
	RestoreState(r io.Reader) error
}

// ErrClosed is returned by Session methods after Close.
var ErrClosed = errors.New("clique: session is closed")

// ErrStopped is returned by Run/Resume when RequestStop interrupted
// the kernel at a pass boundary. If checkpointing is configured the
// final checkpoint has been written; the session stays usable.
var ErrStopped = errors.New("clique: run stopped at a pass boundary by RequestStop")

// ErrKernelStarted is returned by RestoreState (and thus Resume) when
// the target kernel has already started running — restored state must
// land in a fresh kernel.
var ErrKernelStarted = errors.New("clique: cannot restore state into a kernel that has already run")

// KernelPanicError reports a kernel that panicked while the session
// was driving it — in a node Round handler (recovered by the engine on
// the worker) or in the kernel's own Nodes pass-factory. The session
// and its warm engine survive; only the panicking kernel's run fails.
type KernelPanicError struct {
	// Kernel is the panicking kernel's Name.
	Kernel string
	// Node is the clique node whose handler panicked, or -1 when the
	// panic came from the kernel's Nodes call.
	Node core.NodeID
	// Round is the round the handler panicked in (0 for Nodes panics).
	Round core.Round
	// Value is the recovered panic value.
	Value any
}

// Error formats the kernel, location, and panic value.
func (e *KernelPanicError) Error() string {
	if e.Node < 0 {
		return fmt.Sprintf("clique: kernel %q panicked in Nodes: %v", e.Kernel, e.Value)
	}
	return fmt.Sprintf("clique: kernel %q panicked at node %d in round %d: %v", e.Kernel, e.Node, e.Round, e.Value)
}

// WithCheckpoint configures the session to persist checkpoints of
// Checkpointable kernels under dir: whenever at least everyKRounds
// engine rounds have executed since the last checkpoint, the next pass
// boundary writes (atomically) dir/<kernel-name>.ckpt. Kernels that do
// not implement Checkpointable run unchanged. everyKRounds < 1 is
// treated as 1 — a checkpoint at every pass boundary.
func WithCheckpoint(dir string, everyKRounds int) Option {
	if everyKRounds < 1 {
		everyKRounds = 1
	}
	return func(s *settings) {
		s.ckptDir = dir
		s.ckptEvery = everyKRounds
	}
}

// WithDigests enables deterministic-replay verification for the
// session: the engine folds every round's delivered traffic into a
// chained FNV-1a digest (see engine.Options.RecordDigests) and the
// session accumulates the chain across passes, exposed via Digests and
// carried through checkpoints. Two runs of the same kernel are
// bit-identical exactly when their digest sequences match.
func WithDigests() Option {
	return func(s *settings) { s.eng.RecordDigests = true }
}

// CheckpointPath returns the file a session configured with
// WithCheckpoint(dir, k) writes for a kernel of the given name.
func CheckpointPath(dir, kernelName string) string {
	return filepath.Join(dir, kernelName+".ckpt")
}

// Digests returns a copy of the per-round replay digest chain of the
// current (or most recent) kernel run, across all of its passes; empty
// unless the session was built WithDigests. A resumed run's chain
// includes the restored prefix, so it is directly comparable with an
// uninterrupted run's.
func (s *Session) Digests() []uint64 { return append([]uint64(nil), s.digests...) }

// RequestStop asks the session to stop the in-flight kernel run at the
// next pass boundary: the current engine pass completes, a final
// checkpoint is written when checkpointing is configured, and
// Run/Resume return ErrStopped. Safe to call from another goroutine
// (e.g. a signal handler); a no-op when nothing is running.
func (s *Session) RequestStop() { s.stop.Store(true) }

// checkpointWriteHook, when non-nil, wraps the checkpoint file writer —
// the fault-injection seam internal/faults uses to exercise short
// writes and disk-full errors. Production never sets it.
var checkpointWriteHook func(io.Writer) io.Writer

// SetCheckpointWriteHook installs (or, with nil, removes) the
// checkpoint writer wrapper. Test-only: not safe to call concurrently
// with running sessions.
func SetCheckpointWriteHook(h func(io.Writer) io.Writer) { checkpointWriteHook = h }

// ckptMagic and ckptVersion stamp the session checkpoint file format.
const (
	ckptMagic   uint64 = 0x43434b50_30303146 // "CCKP001F"
	ckptVersion uint64 = 1
)

// writeCheckpoint atomically persists the session + kernel state for
// ck: encode to a temp file, fsync, rename over the final path. On any
// failure the temp file is removed and a previously written checkpoint
// stays intact.
func (s *Session) writeCheckpoint(ck Checkpointable) error {
	path := CheckpointPath(s.ckptDir, ck.Name())
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("clique: creating checkpoint: %w", err)
	}
	var w io.Writer = f
	if h := checkpointWriteHook; h != nil {
		w = h(f)
	}
	err = s.encodeCheckpoint(w, ck)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("clique: writing checkpoint %s: %w", path, err)
	}
	return nil
}

// encodeCheckpoint writes the versioned checkpoint stream: header
// (shape, kernel identity, pass cursor), session digests and stats,
// the engine's round-barrier snapshot, the kernel's state blob, and
// the integrity trailer.
func (s *Session) encodeCheckpoint(w io.Writer, ck Checkpointable) error {
	snap, err := s.eng.Snapshot()
	if err != nil {
		return err
	}
	var engBuf bytes.Buffer
	if _, err := snap.WriteTo(&engBuf); err != nil {
		return err
	}
	var kernBuf bytes.Buffer
	if err := ck.SnapshotState(&kernBuf); err != nil {
		return fmt.Errorf("kernel %q snapshot: %w", ck.Name(), err)
	}

	cw := ckptio.NewWriter(w)
	cw.U64(ckptMagic)
	cw.U64(ckptVersion)
	b := s.eng.Budget()
	cw.I64(int64(s.N()))
	cw.I64(int64(b.BitsPerLink))
	cw.I64(int64(b.MsgBits))
	cw.String(ck.Name())
	cw.I64(int64(s.kernelPasses))
	cw.U64s(s.digests)
	cw.I64(int64(s.stats.Runs))
	cw.I64(int64(s.stats.Kernels))
	cw.I64(int64(s.stats.Engine.Rounds))
	cw.U64(s.stats.Engine.TotalMsgs)
	cw.U64(s.stats.Engine.TotalBytes)
	cw.I64(int64(s.stats.Engine.Wall))
	cw.Blob(engBuf.Bytes())
	cw.Blob(kernBuf.Bytes())
	cw.SumTrailer()
	return cw.Err()
}

// decodedCheckpoint is a fully read and integrity-verified checkpoint,
// not yet applied to any session or kernel.
type decodedCheckpoint struct {
	n            int
	budget       core.Budget
	kernelName   string
	kernelPasses int
	digests      []uint64
	stats        Stats
	engSnap      *engine.Snapshot
	kernelState  []byte
}

// decodeCheckpoint reads and verifies a checkpoint stream completely —
// trailer included — before returning it, so a torn file can never
// half-apply.
func decodeCheckpoint(r io.Reader) (*decodedCheckpoint, error) {
	cr := ckptio.NewReader(r)
	if magic := cr.U64(); cr.Err() == nil && magic != ckptMagic {
		return nil, fmt.Errorf("clique: not a session checkpoint (magic %#x)", magic)
	}
	if v := cr.U64(); cr.Err() == nil && v != ckptVersion {
		return nil, fmt.Errorf("clique: checkpoint format version %d, this build reads version %d", v, ckptVersion)
	}
	d := &decodedCheckpoint{}
	d.n = int(cr.I64())
	d.budget.BitsPerLink = int(cr.I64())
	d.budget.MsgBits = int(cr.I64())
	d.kernelName = cr.String()
	d.kernelPasses = int(cr.I64())
	d.digests = cr.U64s()
	d.stats.Runs = int(cr.I64())
	d.stats.Kernels = int(cr.I64())
	d.stats.Engine.Rounds = int(cr.I64())
	d.stats.Engine.TotalMsgs = cr.U64()
	d.stats.Engine.TotalBytes = cr.U64()
	d.stats.Engine.Wall = time.Duration(cr.I64())
	engBlob := cr.Blob()
	d.kernelState = cr.Blob()
	cr.VerifySumTrailer()
	if err := cr.Err(); err != nil {
		return nil, fmt.Errorf("clique: reading checkpoint: %w", err)
	}
	snap, err := engine.ReadSnapshot(bytes.NewReader(engBlob))
	if err != nil {
		return nil, fmt.Errorf("clique: checkpoint engine snapshot: %w", err)
	}
	d.engSnap = snap
	return d, nil
}

// Resume continues a checkpointed kernel run: it loads the checkpoint
// at path, validates that it matches this session's shape (clique size
// and bandwidth budget) and the given kernel's name, restores the
// kernel's inter-pass state into k (which must be fresh —
// ErrKernelStarted otherwise), rewinds the session's cumulative Stats
// and replay digests to the checkpoint, and runs the remaining passes
// to completion exactly as Run would. The checkpoint file is read
// completely and integrity-verified before any state is touched.
func (s *Session) Resume(ctx context.Context, k Checkpointable, path string) error {
	if s.closed {
		return ErrClosed
	}
	if k == nil {
		return errors.New("clique: Resume with a nil Kernel")
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("clique: opening checkpoint: %w", err)
	}
	d, err := decodeCheckpoint(f)
	f.Close()
	if err != nil {
		return err
	}
	if d.n != s.N() {
		return fmt.Errorf("clique: checkpoint is for a clique sized %d, session is sized %d", d.n, s.N())
	}
	if b := s.eng.Budget(); d.budget != b {
		return fmt.Errorf("clique: checkpoint budget %+v does not match session budget %+v", d.budget, b)
	}
	if d.kernelName != k.Name() {
		return fmt.Errorf("clique: checkpoint is for kernel %q, not %q", d.kernelName, k.Name())
	}
	if ta, ok := Kernel(k).(TransportAware); ok {
		ta.SetGatherer(s.eng.Transport())
	}
	if err := k.RestoreState(bytes.NewReader(d.kernelState)); err != nil {
		return fmt.Errorf("clique: restoring kernel %q: %w", k.Name(), err)
	}
	s.stats = d.stats
	s.digests = append(s.digests[:0], d.digests...)
	s.kernelPasses = d.kernelPasses
	s.roundsSinceCkpt = 0
	s.stop.Store(false)
	return s.runLoop(ctx, k)
}
